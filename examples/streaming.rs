//! Independent misses: an art-style streaming dot product — the WIB's
//! best case. The 32-entry issue queue would fill with the dependent
//! multiply/accumulate chain; the WIB parks that chain and lets hundreds
//! of loads miss in parallel.
//!
//! Also shows what limiting the bit-vector budget (Figure 5) does to the
//! exposed memory-level parallelism.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use wib::core::{MachineConfig, Processor, RunLimit};
use wib::workloads::suite::fp;

fn main() {
    let workload = fp::art(16_384, 4, 4);
    let limit = RunLimit::instructions(100_000);

    let base = Processor::new(MachineConfig::base_8way()).run_program_warmed(
        workload.program(),
        100_000,
        limit,
    );
    println!("art-like streaming kernel:");
    println!(
        "  base: IPC {:.3} (L1D miss ratio {:.1}%)",
        base.ipc(),
        100.0 * base.stats.mem.l1d_miss_ratio()
    );

    println!("\nWIB with limited bit-vectors (outstanding tracked misses):");
    for vectors in [4u32, 16, 64, 1024] {
        let cfg = MachineConfig::wib_2k().with_bit_vectors(vectors);
        let r = Processor::new(cfg).run_program_warmed(workload.program(), 100_000, limit);
        println!(
            "  {vectors:>4} bit-vectors: IPC {:.3} ({:.2}x), {} chains diverted, {} misses \
             found no free vector",
            r.ipc(),
            r.ipc() / base.ipc(),
            r.stats.wib_insertions,
            r.stats.wib_column_exhausted,
        );
    }
    println!(
        "\neach bit-vector tracks one outstanding load miss; with too few, chains \
         stay in the issue queue and the machine degenerates toward the base."
    );
}
