//! Dependent misses: an Olden-style pointer chase, where each load's
//! address comes from the previous load. A bigger window cannot overlap a
//! serial chain — compare with `streaming`, where it can.
//!
//! Also sweeps the conventional window size (the paper's Figure 1 view of
//! this workload class).
//!
//! ```sh
//! cargo run --release --example pointer_chase
//! ```

use wib::core::{MachineConfig, Processor, RunLimit};
use wib::workloads::suite::olden;

fn main() {
    let workload = olden::treeadd(14, 4);
    let limit = RunLimit::instructions(100_000);

    println!("treeadd (2^14-1 nodes, DFS layout, pointer chasing):\n");
    println!("conventional window-size sweep (the limit-study view):");
    for iq in [32u32, 128, 512, 2048] {
        let r = Processor::new(MachineConfig::conventional(iq)).run_program_warmed(
            workload.program(),
            100_000,
            limit,
        );
        println!("  {iq:>5}-entry issue queue: IPC {:.3}", r.ipc());
    }

    let base = Processor::new(MachineConfig::base_8way()).run_program_warmed(
        workload.program(),
        100_000,
        limit,
    );
    let wib = Processor::new(MachineConfig::wib_2k()).run_program_warmed(
        workload.program(),
        100_000,
        limit,
    );
    println!(
        "\nbase: IPC {:.3}   WIB: IPC {:.3}   speedup {:.2}x",
        base.ipc(),
        wib.ipc(),
        wib.ipc() / base.ipc()
    );
    println!(
        "\ndependent chains limit everyone: the right subtree pointers miss, and \
         no window can start the next hop before the previous one returns — the \
         WIB's gain comes from overlapping *independent* subtree traversals."
    );
}
