//! Quickstart: assemble a small program, run it on the paper's base
//! machine and on the WIB machine, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wib::core::{MachineConfig, Processor, RunLimit};
use wib::isa::asm::ProgramBuilder;
use wib::isa::reg::*;

fn main() {
    // A loop that chases independent cache misses: each iteration loads
    // from a fresh page, then does dependent arithmetic on the value.
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x20_0000); // array base
    b.li(R4, 2_000); // iterations
    b.li(R5, 0);
    b.label("loop");
    b.lw(R2, R1, 0); // miss to DRAM
    b.add(R3, R2, R2); // dependent
    b.add(R5, R5, R3); // dependent
    b.addi(R1, R1, 4096); // next page: independent misses
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    let program = b.finish().expect("assembles");

    let limit = RunLimit::instructions(50_000);
    let base = Processor::new(MachineConfig::base_8way()).run_program(&program, limit);
    let wib = Processor::new(MachineConfig::wib_2k()).run_program(&program, limit);

    println!("base machine (32-entry issue queue, 128-entry window):");
    println!(
        "  IPC = {:.3} over {} cycles",
        base.ipc(),
        base.stats.cycles
    );
    println!("WIB machine (same issue queue + 2K-entry waiting instruction buffer):");
    println!("  IPC = {:.3} over {} cycles", wib.ipc(), wib.stats.cycles);
    println!(
        "  {} instructions took {} trips through the WIB",
        wib.stats.wib_touched_insts, wib.stats.wib_insertions
    );
    println!("speedup: {:.2}x", wib.ipc() / base.ipc());
}
