//! A look inside the WIB: recycling, organizations and selection
//! policies on the stencil kernel (`mgrid`) whose instructions wait on
//! more than one outstanding miss — the case the paper's section 4.4
//! dissects.
//!
//! ```sh
//! cargo run --release --example wib_anatomy
//! ```

use wib::core::{MachineConfig, Processor, RunLimit, SelectionPolicy, WibOrganization};
use wib::workloads::suite::fp;

fn main() {
    let workload = fp::mgrid(32, 8);
    let limit = RunLimit::instructions(150_000);
    let run = |cfg: MachineConfig| {
        Processor::new(cfg).run_program_warmed(workload.program(), 100_000, limit)
    };

    let base = run(MachineConfig::base_8way());
    println!("mgrid stencil, base machine: IPC {:.3}\n", base.ipc());

    println!(
        "{:<28} {:>7} {:>9} {:>11} {:>9}",
        "WIB variant", "IPC", "speedup", "avg trips", "max trips"
    );
    let variants: Vec<(&str, MachineConfig)> = vec![
        ("banked (16 banks)", MachineConfig::wib_2k()),
        (
            "non-banked, 4-cycle",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::NonBanked { latency: 4 }),
        ),
        (
            "ideal, program order",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::ProgramOrder),
        ),
        (
            "ideal, round-robin loads",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::RoundRobinLoads),
        ),
        (
            "ideal, oldest load first",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::OldestLoadFirst),
        ),
    ];
    for (name, cfg) in variants {
        let r = run(cfg);
        println!(
            "{:<28} {:>7.3} {:>8.2}x {:>11.2} {:>9}",
            name,
            r.ipc(),
            r.ipc() / base.ipc(),
            r.stats.wib_avg_insertions(),
            r.stats.wib_max_insertions_per_inst
        );
    }
    println!(
        "\n'trips' = times a single instruction entered the WIB. A stencil output \
         waits on several loads, so it can park, reinsert when the first miss \
         returns, and immediately park again on the next — the recycling the \
         paper measures on mgrid (average ~4, max 280 with the banked scheme)."
    );
}
