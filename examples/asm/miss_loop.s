# A page-striding load loop: every load misses to DRAM, the dependent
# adds chase it. Run on the base and WIB machines to see the window
# effect:
#
#   wib-sim exec examples/asm/miss_loop.s --config base  --stats
#   wib-sim exec examples/asm/miss_loop.s --config wib2k --stats

.org 0x1000
        li   r1, 0x200000      # array base
        li   r4, 5000          # iterations
loop:
        lw   r2, (r1)          # DRAM miss
        add  r3, r2, r2        # dependent
        add  r5, r5, r3        # dependent
        addi r1, r1, 4096      # next page (independent misses)
        addi r4, r4, -1
        bne  r4, r0, loop
        halt
