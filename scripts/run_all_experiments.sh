#!/usr/bin/env bash
# Regenerate every paper table/figure into results/ (see EXPERIMENTS.md).
# Protocol knobs: WIB_WARMUP, WIB_INSTS (defaults 200k/200k), WIB_QUICK=1.
#
# Alongside each harness's text table, a machine-readable
# results/<experiment>.json is emitted (WIB_RESULTS_DIR routes the JSON
# output), and bench_json writes the top-level results/BENCH_wib.json
# summary (per-workload IPC + simulator throughput).
#
# WIB_VIA_DAEMON=1 additionally runs the headline per-workload sweep
# through a local wib-serve daemon (see docs/serve.md): results land in
# results/serve/ as content-addressed JSON, and repeated invocations are
# served from the persistent cache under results/cache/ instead of
# re-simulating.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
export WIB_RESULTS_DIR="${WIB_RESULTS_DIR:-results}"
bins=(table1 table2 fig1 fig4 fig5 fig6 fig7 policies sensitivity \
      ablation regfile_study extension validate)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run --release -p wib-bench --bin "$b" > "results/$b.txt"
    tail -n 6 "results/$b.txt"
done
echo "== bench_json =="
cargo run --release -p wib-bench --bin bench_json

if [[ "${WIB_VIA_DAEMON:-0}" == "1" ]]; then
    echo "== daemon sweep (wib-serve) =="
    port_file=$(mktemp)
    cargo run -q --release -p wib-cli --bin wib-sim -- serve \
        --addr 127.0.0.1:0 --port-file "$port_file" --quiet &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        sleep 0.1
    done
    addr=$(cat "$port_file")
    jobs=()
    for w in gcc gzip vpr bzip2 art swim em3d mst treeadd; do
        jobs+=("$w:base" "$w:wib2k" "$w:conv:iq=64")
    done
    cargo run -q --release -p wib-cli --bin wib-sim -- submit "${jobs[@]}" \
        --addr "$addr" --out results/serve
    cargo run -q --release -p wib-cli --bin wib-sim -- stats --addr "$addr"
    cargo run -q --release -p wib-cli --bin wib-sim -- shutdown --addr "$addr" > /dev/null
    wait "$serve_pid"
    rm -f "$port_file"
fi
echo "done; outputs in results/ (text tables + *.json)"
