#!/usr/bin/env bash
# Regenerate every paper table/figure into results/ (see EXPERIMENTS.md).
# Protocol knobs: WIB_WARMUP, WIB_INSTS (defaults 200k/200k), WIB_QUICK=1.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
bins=(table1 table2 fig1 fig4 fig5 fig6 fig7 policies sensitivity \
      ablation regfile_study extension validate)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run --release -p wib-bench --bin "$b" > "results/$b.txt"
    tail -n 6 "results/$b.txt"
done
echo "done; outputs in results/"
