#!/usr/bin/env bash
# Regenerate every paper table/figure into results/ (see EXPERIMENTS.md).
# Protocol knobs: WIB_WARMUP, WIB_INSTS (defaults 200k/200k), WIB_QUICK=1.
#
# Alongside each harness's text table, a machine-readable
# results/<experiment>.json is emitted (WIB_RESULTS_DIR routes the JSON
# output), and bench_json writes the top-level results/BENCH_wib.json
# summary (per-workload IPC + simulator throughput).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
export WIB_RESULTS_DIR="${WIB_RESULTS_DIR:-results}"
bins=(table1 table2 fig1 fig4 fig5 fig6 fig7 policies sensitivity \
      ablation regfile_study extension validate)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run --release -p wib-bench --bin "$b" > "results/$b.txt"
    tail -n 6 "results/$b.txt"
done
echo "== bench_json =="
cargo run --release -p wib-bench --bin bench_json
echo "done; outputs in results/ (text tables + *.json)"
