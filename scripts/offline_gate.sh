#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access and
# no tools beyond the baked-in Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."
echo "== build (release, all crates) =="
cargo build --release --workspace --offline
echo "== tests =="
cargo test -q --workspace --offline
echo "== formatting =="
cargo fmt --all --check
echo "== machine-check tests (release, checked feature) =="
# The per-cycle invariant checkers and ownership census run on every test
# in the suite. Release mode keeps the checked run's wall clock sane (the
# checkers cost ~an order of magnitude in debug).
cargo test -q --release --workspace --offline --features checked
echo "== fuzz smoke (fixed seeds, differential oracles) =="
# A fixed-seed slice of the differential fuzzer: random programs x random
# configs under co-sim + machine checks + fast-forward and cross-config
# differentials. Failures are shrunk and land in tests/repros/ (commit
# them with the fix). ~30 s.
cargo run -q --release --offline -p wib-bench --bin fuzz -- --cases 120 --seed 1
echo "== serve smoke (loopback daemon, byte-identity vs local run) =="
# Start a daemon on an ephemeral loopback port, push a 3-point mini-sweep
# through it, and require the streamed results to be byte-identical to
# the same jobs run in-process (--local). Also checks the second
# submission is served entirely from the content-addressed cache and
# that a drain shutdown exits cleanly (no leaked threads would mean no
# exit at all).
serve_dir=$(mktemp -d)
port_file="$serve_dir/port"
WIB_RESULTS_DIR="$serve_dir/cachedir" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$port_file" --tiny --workers 2 --quiet &
serve_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
done
[[ -s "$port_file" ]] || { echo "  FAIL: daemon never wrote its port file"; exit 1; }
addr=$(cat "$port_file")
sweep=(gzip:base em3d:wib:w=256 mst:conv:iq=64)
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --addr "$addr" --insts 20000 --warmup 2000 --out "$serve_dir/remote"
resubmit=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- \
    submit "${sweep[@]}" --addr "$addr" --insts 20000 --warmup 2000)
hits=$(grep -c '(cached)' <<<"$resubmit" || true)
if [[ "$hits" -ne 3 ]]; then
    echo "  FAIL: resubmitted sweep expected 3 cache hits, saw $hits"
    echo "$resubmit"
    exit 1
fi
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --addr "$addr" > /dev/null
wait "$serve_pid"
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --local --tiny --insts 20000 --warmup 2000 --out "$serve_dir/local"
diff -r "$serve_dir/remote" "$serve_dir/local"
echo "  ok (3-point sweep byte-identical, cache served the resubmit, clean drain)"
rm -rf "$serve_dir"

echo "== backend matrix smoke (all four backend= machines through one daemon) =="
# One sweep requesting every latency-tolerance backend (docs/backends.md)
# on two miss-heavy workloads, pushed through a daemon and required to be
# byte-identical to the same jobs run in-process: the backend axis must
# survive the spec round trip through the serve protocol, the result
# cache, and the JSON stream.
matrix_dir=$(mktemp -d)
matrix_port="$matrix_dir/port"
WIB_RESULTS_DIR="$matrix_dir/cachedir" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$matrix_port" --tiny --workers 2 --quiet &
matrix_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$matrix_port" ]] && break
    sleep 0.1
done
[[ -s "$matrix_port" ]] || { echo "  FAIL: backend-matrix daemon never wrote its port file"; exit 1; }
matrix_addr=$(cat "$matrix_port")
matrix=()
for bench in em3d mst; do
    for spec in base "wib:w=256" "base,backend=runahead" "wib:w=256,backend=delay_track"; do
        matrix+=("$bench:$spec")
    done
done
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${matrix[@]}" \
    --addr "$matrix_addr" --insts 20000 --warmup 2000 --out "$matrix_dir/remote"
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --addr "$matrix_addr" > /dev/null
wait "$matrix_pid"
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${matrix[@]}" \
    --local --tiny --insts 20000 --warmup 2000 --out "$matrix_dir/local"
diff -r "$matrix_dir/remote" "$matrix_dir/local"
echo "  ok (4 backends x 2 workloads, daemon bytes identical to --local)"
rm -rf "$matrix_dir"

echo "== metrics smoke (scrape exposition, assert families and sane values) =="
# Telemetry end to end: a daemon, a 2-point sweep submitted twice (so the
# cache sees hits), then a `metrics` scrape. The Prometheus exposition
# must carry the core families with values that match what just
# happened, and the live `top --plain` view must render from the same
# scrape without a terminal.
met_val() { grep -E "^$1 " <<<"$2" | head -1 | awk '{print $2}'; }
metrics_dir=$(mktemp -d)
metrics_port="$metrics_dir/port"
WIB_RESULTS_DIR="$metrics_dir/results" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$metrics_port" --tiny --workers 2 --quiet &
metrics_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$metrics_port" ]] && break
    sleep 0.1
done
[[ -s "$metrics_port" ]] || { echo "  FAIL: metrics daemon never wrote its port file"; exit 1; }
maddr=$(cat "$metrics_port")
pair=(gzip:base mst:base)
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${pair[@]}" \
    --addr "$maddr" --insts 20000 --warmup 2000 > /dev/null
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${pair[@]}" \
    --addr "$maddr" --insts 20000 --warmup 2000 > /dev/null
scrape=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- metrics --addr "$maddr")
for family in wib_serve_queue_depth wib_serve_jobs_completed_total \
    wib_serve_cache_hits_total wib_serve_job_panics_total \
    wib_serve_queue_wait_us wib_serve_run_us wib_engine_stage_ns_total; do
    if ! grep -q "^# TYPE $family " <<<"$scrape"; then
        echo "  FAIL: exposition is missing family $family"
        echo "$scrape"
        exit 1
    fi
done
for want in wib_serve_jobs_submitted_total:4 wib_serve_jobs_completed_total:4 \
    wib_serve_cache_hits_total:2 wib_serve_cache_misses_total:2 \
    wib_serve_job_panics_total:0 wib_serve_queue_wait_us_count:4 \
    wib_serve_run_us_count:2 wib_serve_queue_depth:0; do
    name=${want%:*} expect=${want#*:}
    got=$(met_val "$name" "$scrape")
    if [[ "$got" != "$expect" ]]; then
        echo "  FAIL: metric $name = '$got', expected $expect"
        echo "$scrape"
        exit 1
    fi
done
topview=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- top \
    --addr "$maddr" --plain --iters 1)
grep -q "cache   50.0% hit (2/4)" <<<"$topview" || {
    echo "  FAIL: top view did not show the 50% cache hit rate"
    echo "$topview"
    exit 1
}
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --addr "$maddr" > /dev/null
wait "$metrics_pid"
echo "  ok (7 families present, counters exact, top rendered the scrape)"
rm -rf "$metrics_dir"

echo "== chaos smoke (injected worker panic, forced shed, torn cache write) =="
# Same 3-point sweep, but against a daemon with a fixed fault plan armed:
# the first enqueue is force-shed (client must retry after the backoff
# hint), the first simulation panics (that one job must come back as a
# structured error, pool intact), and the first cache persist tears
# mid-temp-file (job still succeeds; the torn temp must be scavenged on
# restart). After a clean retry pass the results must still be
# byte-identical to --local.
chaos_stat() { grep -oE "\"$1\": [0-9]+" <<<"$2" | head -1 | tr -dc '0-9'; }
chaos_dir=$(mktemp -d)
chaos_port="$chaos_dir/port"
WIB_FAULTS="seed=7,panic=1,tear=1,shed=1" WIB_RESULTS_DIR="$chaos_dir/results" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$chaos_port" --tiny --workers 2 --quiet &
chaos_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$chaos_port" ]] && break
    sleep 0.1
done
[[ -s "$chaos_port" ]] || { echo "  FAIL: chaos daemon never wrote its port file"; exit 1; }
caddr=$(cat "$chaos_port")
# Pass 1 absorbs the faults: exactly one job errors out with the
# injected panic (nonzero exit is expected), the shed is retried
# transparently, the tear is invisible to the client.
first=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- \
    submit "${sweep[@]}" --addr "$caddr" --insts 20000 --warmup 2000 || true)
if [[ "$(grep -c 'ERROR: .*panic' <<<"$first" || true)" -ne 1 ]]; then
    echo "  FAIL: expected exactly one panicked job in pass 1"
    echo "$first"
    exit 1
fi
stats=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- stats --addr "$caddr")
for want in panicked:1 shed:1 persist_failures:1 worker_restarts:0; do
    key=${want%:*} expect=${want#*:}
    got=$(chaos_stat "$key" "$stats")
    if [[ "$got" != "$expect" ]]; then
        echo "  FAIL: stats $key = $got, expected $expect"
        echo "$stats"
        exit 1
    fi
done
# Pass 2 runs fault-free (the plan is exhausted): every job completes,
# and the stream must be byte-identical to the same sweep in-process.
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --addr "$caddr" --insts 20000 --warmup 2000 --out "$chaos_dir/remote"
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --addr "$caddr" > /dev/null
wait "$chaos_pid"
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --local --tiny --insts 20000 --warmup 2000 --out "$chaos_dir/local"
diff -r "$chaos_dir/remote" "$chaos_dir/local"
# Restart on the same results dir: the torn temp from pass 1 must be
# scavenged, no temp files may remain, and the two entries that were
# committed cleanly must be served from disk.
: > "$chaos_port"
WIB_RESULTS_DIR="$chaos_dir/results" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$chaos_port" --tiny --workers 2 --quiet &
chaos_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$chaos_port" ]] && break
    sleep 0.1
done
[[ -s "$chaos_port" ]] || { echo "  FAIL: restarted daemon never wrote its port file"; exit 1; }
caddr=$(cat "$chaos_port")
stats=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- stats --addr "$caddr")
if [[ "$(chaos_stat scavenged "$stats")" != "1" ]]; then
    echo "  FAIL: restart expected to scavenge exactly the one torn temp"
    echo "$stats"
    exit 1
fi
if compgen -G "$chaos_dir/results/cache/*.tmp" > /dev/null; then
    echo "  FAIL: temp files survived the restart scavenge"
    exit 1
fi
third=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- \
    submit "${sweep[@]}" --addr "$caddr" --insts 20000 --warmup 2000)
if [[ "$(grep -c '(cached)' <<<"$third" || true)" -ne 2 ]]; then
    echo "  FAIL: expected the 2 cleanly-committed entries to hit from disk"
    echo "$third"
    exit 1
fi
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --addr "$caddr" > /dev/null
wait "$chaos_pid"
echo "  ok (panic isolated, shed retried, torn write scavenged, bytes identical)"
rm -rf "$chaos_dir"

echo "== cluster smoke (coordinator, 2 backends, node death mid-sweep) =="
# The distributed path end to end: two backend daemons behind a
# coordinator, a 3-point sweep routed by consistent hash, then one
# backend is killed outright and the same sweep must still complete —
# the coordinator marks the node dead, shrinks the ring, and re-routes
# its jobs to the survivor. Both passes must be byte-identical to
# --local, and cluster_stats must record exactly one node death.
cluster_dir=$(mktemp -d)
b1_port="$cluster_dir/b1.port"; b2_port="$cluster_dir/b2.port"
coord_port="$cluster_dir/coord.port"
WIB_RESULTS_DIR="$cluster_dir/r1" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$b1_port" --tiny --workers 2 --quiet &
b1_pid=$!
WIB_RESULTS_DIR="$cluster_dir/r2" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$b2_port" --tiny --workers 2 --quiet &
b2_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$b1_port" && -s "$b2_port" ]] && break
    sleep 0.1
done
[[ -s "$b1_port" && -s "$b2_port" ]] || { echo "  FAIL: backends never wrote port files"; exit 1; }
b1=$(cat "$b1_port"); b2=$(cat "$b2_port")
cargo run -q --release --offline -p wib-cli --bin wib-sim -- coord \
    --backends "$b1,$b2" --tiny --addr 127.0.0.1:0 --port-file "$coord_port" --quiet &
coord_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$coord_port" ]] && break
    sleep 0.1
done
[[ -s "$coord_port" ]] || { echo "  FAIL: coordinator never wrote its port file"; exit 1; }
coord=$(cat "$coord_port")
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --coord "$coord" --insts 20000 --warmup 2000 --out "$cluster_dir/remote1"
# Kill whichever backend actually computed something (its cache is
# non-empty), so the re-routed pass genuinely changes owners.
if compgen -G "$cluster_dir/r2/cache/*.json" > /dev/null; then
    victim_pid=$b2_pid
else
    victim_pid=$b1_pid
fi
kill -9 "$victim_pid"
wait "$victim_pid" || true
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --coord "$coord" --insts 20000 --warmup 2000 --out "$cluster_dir/remote2"
cstats=$(cargo run -q --release --offline -p wib-cli --bin wib-sim -- stats --coord "$coord")
if [[ "$(chaos_stat node_deaths "$cstats")" != "1" ]]; then
    echo "  FAIL: cluster_stats expected exactly one node death"
    echo "$cstats"
    exit 1
fi
alive=$(grep -c '"alive": true' <<<"$cstats" || true)
if [[ "$alive" -ne 1 ]]; then
    echo "  FAIL: expected exactly one live backend after the kill, saw $alive"
    echo "$cstats"
    exit 1
fi
# Draining the coordinator drains the surviving backend too.
cargo run -q --release --offline -p wib-cli --bin wib-sim -- shutdown --coord "$coord" > /dev/null
wait "$coord_pid"
if [[ "$victim_pid" == "$b1_pid" ]]; then wait "$b2_pid"; else wait "$b1_pid"; fi
cargo run -q --release --offline -p wib-cli --bin wib-sim -- submit "${sweep[@]}" \
    --local --tiny --insts 20000 --warmup 2000 --out "$cluster_dir/local"
diff -r "$cluster_dir/remote1" "$cluster_dir/local"
diff -r "$cluster_dir/remote2" "$cluster_dir/local"
echo "  ok (routed sweep byte-identical, node death re-routed, clean cluster drain)"
rm -rf "$cluster_dir"

echo "== die-fault smoke (WIB_FAULTS=die kills the daemon process) =="
# The whole-node death fault used by the cluster tests: a daemon armed
# with die=1 must abort on its first simulation execution, failing the
# client and exiting with a crash status.
die_dir=$(mktemp -d)
die_port="$die_dir/port"
WIB_FAULTS="die=1" WIB_RESULTS_DIR="$die_dir/results" \
    cargo run -q --release --offline -p wib-cli --bin wib-sim -- serve \
    --addr 127.0.0.1:0 --port-file "$die_port" --tiny --workers 2 --quiet &
die_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$die_port" ]] && break
    sleep 0.1
done
[[ -s "$die_port" ]] || { echo "  FAIL: die-fault daemon never wrote its port file"; exit 1; }
daddr=$(cat "$die_port")
if cargo run -q --release --offline -p wib-cli --bin wib-sim -- \
    submit gzip:base --addr "$daddr" --insts 20000 --warmup 2000 > /dev/null 2>&1; then
    echo "  FAIL: submit against a dying daemon should not succeed"
    exit 1
fi
if wait "$die_pid"; then
    echo "  FAIL: die=1 daemon exited cleanly instead of aborting"
    exit 1
fi
echo "  ok (daemon aborted on the armed execution, client saw the failure)"
rm -rf "$die_dir"

echo "== bench smoke (quick workload, vs committed baseline) =="
# Reduced-workload throughput check: rerun bench_json in WIB_QUICK mode
# and fail if aggregate simulator throughput fell below 0.6x the
# committed results/BENCH_wib.json baseline. The loose factor is
# deliberate: single-CPU CI boxes show +/-50% wall-clock noise run to
# run, so this catches real (2x+) regressions, not drift. Noisy machines
# can be waived entirely with WIB_SKIP_BENCH_SMOKE=1; re-bless the
# baseline by copying the fresh file over the committed one after an
# intentional change (use the *minimum* of a few runs).
if [[ "${WIB_SKIP_BENCH_SMOKE:-0}" == "1" ]]; then
    echo "  skipped (WIB_SKIP_BENCH_SMOKE=1)"
else
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    WIB_QUICK=1 WIB_THREADS=1 WIB_RESULTS_DIR="$smoke_dir" \
        cargo run -q --release --offline -p wib-bench --bin bench_json
    baseline=$(grep -m1 '"sim_minsts_per_s"' results/BENCH_wib.json | tr -dc '0-9.')
    fresh=$(grep -m1 '"sim_minsts_per_s"' "$smoke_dir/BENCH_wib.json" | tr -dc '0-9.')
    echo "  baseline ${baseline} Minsts/s, fresh ${fresh} Minsts/s"
    awk -v b="$baseline" -v f="$fresh" 'BEGIN {
        if (f < 0.6 * b) {
            printf "  FAIL: throughput regressed (%.3f < 0.6 * %.3f)\n", f, b
            exit 1
        }
        printf "  ok (%.1f%% of baseline)\n", 100 * f / b
    }'
fi
echo "offline gate passed"
