#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access and
# no tools beyond the baked-in Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."
echo "== build (release, all crates) =="
cargo build --release --workspace --offline
echo "== tests =="
cargo test -q --workspace --offline
echo "== formatting =="
cargo fmt --all --check
echo "offline gate passed"
