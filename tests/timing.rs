//! Directed timing tests: crafted scenarios whose cycle counts are
//! predictable from Table 1's latencies, asserted within tolerances.
//! These pin the timing model against accidental regressions.

use wib::core::{MachineConfig, Processor, RunLimit, RunResult};
use wib::isa::asm::ProgramBuilder;
use wib::isa::program::Program;
use wib::isa::reg::*;

fn run(cfg: MachineConfig, p: &Program) -> RunResult {
    let mut proc_ = Processor::new(cfg);
    proc_.enable_cosim();
    proc_.run_program(p, RunLimit::instructions(1_000_000))
}

/// A serial pointer chase pays the full memory latency per hop.
#[test]
fn dependent_misses_serialize_at_dram_latency() {
    let hops = 64u32;
    let mut b = ProgramBuilder::new(0x1000);
    // Each node on its own page: every hop is a TLB miss + DRAM miss.
    let base = 0x40_0000u32;
    for i in 0..hops {
        let next = if i + 1 < hops {
            base + (i + 1) * 4096
        } else {
            0
        };
        b.data_u32(base + i * 4096, &[next]);
    }
    b.li(R1, base);
    b.label("walk");
    b.lw(R1, R1, 0);
    b.bne(R1, R0, "walk");
    b.halt();
    let p = b.finish().unwrap();
    let r = run(MachineConfig::base_8way(), &p);
    // 64 serial hops x (250 DRAM + 30 TLB) = 17,920 cycles minimum.
    let floor = hops as u64 * 280;
    assert!(
        r.stats.cycles >= floor && r.stats.cycles < floor + 2_000,
        "serial chain should cost ~{floor} cycles, took {}",
        r.stats.cycles
    );
    // A 2K window cannot help a serial chain.
    let big = run(MachineConfig::conventional(2048), &p);
    assert!(
        big.stats.cycles as f64 > 0.9 * r.stats.cycles as f64,
        "no window can parallelize a serial chain: {} vs {}",
        big.stats.cycles,
        r.stats.cycles
    );
}

/// Loads to the same cache line merge into one fill (MSHR behaviour):
/// 8 loads on one line cost one memory round trip, not eight.
#[test]
fn same_line_misses_merge() {
    let mut one_line = ProgramBuilder::new(0x1000);
    one_line.li(R1, 0x40_0000);
    for k in 0..8i32 {
        one_line.lw(R2, R1, 4 * k);
    }
    one_line.halt();
    let merged = run(MachineConfig::base_8way(), &one_line.finish().unwrap());

    let mut eight_lines = ProgramBuilder::new(0x1000);
    eight_lines.li(R1, 0x40_0000);
    for k in 0..8i32 {
        eight_lines.lw(R2, R1, 64 * k); // one per line, same page
    }
    eight_lines.halt();
    let spread = run(MachineConfig::base_8way(), &eight_lines.finish().unwrap());

    // Both fit one window, so both cost roughly one cold instruction
    // fetch (~280) plus one overlapped data round trip (~280).
    assert!(
        merged.stats.cycles < 700,
        "merged line fills should cost one trip: {}",
        merged.stats.cycles
    );
    assert!(
        spread.stats.cycles < merged.stats.cycles + 120,
        "independent misses should overlap: {} vs {}",
        spread.stats.cycles,
        merged.stats.cycles
    );
    // One data line fetched: only the first of the 8 loads misses.
    assert_eq!(merged.stats.mem.l1d_misses, 1, "one line fetched");
}

/// The TLB's 30-cycle penalty shows up on first touch of each page.
#[test]
fn tlb_penalty_on_first_touch() {
    // Two passes over 64 pages: the second pass misses the L1/L2 less but
    // the page count exceeds nothing — both TLB-resident afterwards.
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x40_0000);
    b.li(R4, 64);
    b.label("touch");
    b.lw(R2, R1, 0);
    b.addi(R1, R1, 4096);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "touch");
    b.halt();
    let r = run(MachineConfig::base_8way(), &b.finish().unwrap());
    // Misses overlap (independent), but each fill carries its +30 TLB
    // penalty; the run must cost clearly more than the no-TLB bound.
    assert!(r.stats.cycles > 280, "{}", r.stats.cycles);
}

/// Non-pipelined dividers: 8 independent divides on 2 units at 12 cycles
/// each need >= 4 x 12 cycles; 8 pipelined multiplies on 2 units do not.
#[test]
fn nonpipelined_dividers_throttle() {
    let mut divs = ProgramBuilder::new(0x1000);
    divs.data_f64(0x8000, &[3.0, 1.5]);
    divs.li(R1, 0x8000);
    divs.fld(F1, R1, 0);
    divs.fld(F2, R1, 8);
    for k in 0..8 {
        let d = ArchReg::fp(3 + k);
        divs.fdiv(d, F1, F2);
    }
    divs.halt();
    let r = run(MachineConfig::base_8way(), &divs.finish().unwrap());
    // Startup (cold I-cache fetch ~280) + ceil(8/2) * 12 serial occupancy.
    let data_ready = 280 + 300; // two cold data loads, merged line
    assert!(
        r.stats.cycles >= 48,
        "eight divides on two non-pipelined units need 4 rounds: {}",
        r.stats.cycles
    );
    assert!(
        r.stats.cycles < data_ready as u64 + 150,
        "{}",
        r.stats.cycles
    );
}

/// A branch whose direction is data-random mispredicts often and each
/// misprediction costs a refill; IPC collapses versus a predictable loop.
#[test]
fn mispredictions_cost_refills() {
    let body = |predictable: bool| {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R15, 987_654);
        b.li(R14, 12_345);
        b.li(R1, 4_000);
        b.label("loop");
        if predictable {
            b.andi(R4, R0, 1); // always zero: branch never taken
        } else {
            b.mul(R15, R15, R14);
            b.addi(R15, R15, 777);
            b.srli(R4, R15, 13);
            b.andi(R4, R4, 1); // pseudo-random bit
        }
        b.beq(R4, R0, "skip");
        b.addi(R3, R3, 1);
        b.label("skip");
        b.addi(R1, R1, -1);
        b.bne(R1, R0, "loop");
        b.halt();
        b.finish().unwrap()
    };
    let good = run(MachineConfig::base_8way(), &body(true));
    let bad = run(MachineConfig::base_8way(), &body(false));
    assert!(good.stats.branch_dir_rate() > 0.99);
    assert!(bad.stats.branch_dir_rate() < 0.90);
    // Note: the random version also executes more instructions per
    // iteration; compare cycle cost per iteration instead of IPC.
    let good_cpi = good.stats.cycles as f64 / 4_000.0;
    let bad_cpi = bad.stats.cycles as f64 / 4_000.0;
    assert!(
        bad_cpi > good_cpi + 2.0,
        "mispredictions should add cycles per iteration: {good_cpi:.2} vs {bad_cpi:.2}"
    );
}

/// L2 hits cost ~10 cycles: a working set between L1 and L2 lands between
/// the L1-resident and DRAM-bound versions of the same loop.
#[test]
fn l2_latency_sits_between_l1_and_dram() {
    let loop_over = |stride: u32, span: u32| {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 0x40_0000);
        b.li(R4, 20_000);
        b.li(R6, 0x40_0000);
        b.li(R7, span);
        b.label("loop");
        b.lw(R2, R1, 0);
        b.add(R3, R3, R2);
        b.addi(R1, R1, stride as i32);
        // wrap: if R1 - base >= span, reset
        b.sub(R8, R1, R6);
        b.blt(R8, R7, "ok");
        b.mv(R1, R6);
        b.label("ok");
        b.addi(R4, R4, -1);
        b.bne(R4, R0, "loop");
        b.halt();
        b.finish().unwrap()
    };
    // 16KB: L1-resident. 128KB: L2-resident. Loads hit every iteration.
    let l1 = run(MachineConfig::base_8way(), &loop_over(64, 16 * 1024));
    let l2 = run(MachineConfig::base_8way(), &loop_over(64, 128 * 1024));
    assert!(
        l2.stats.cycles > l1.stats.cycles,
        "L2-resident loop must be slower: {} vs {}",
        l1.stats.cycles,
        l2.stats.cycles
    );
    assert!(
        l2.stats.mem.l2_local_miss_ratio() < 0.25,
        "128KB set should live in L2"
    );
}
