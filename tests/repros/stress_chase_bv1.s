# fuzz reproducer: curated stress fixture (column exhaustion)
# config: wib:w=256,bv=1
# config: wib:w=256,org=pool2x8
# config: base
# failure: none — pins dependent-miss chains under a one-column bit-vector
# budget (constant refusal/reuse) and a tiny pool (dispatch stalls on
# block exhaustion).
    li r15, 24
    li r13, 0x40000
loop:
    lw r13, 0(r13)
    lw r1, 4(r13)
    add r2, r1, r13
    lw r3, 0(r13)
    xor r4, r3, r2
    slt r5, r4, r2
    addi r15, r15, -1
    bne r15, r0, loop
    halt
    .data 0x40000
    .u32 0x41040
    .u32 17
    .data 0x41040
    .u32 0x42080
    .u32 29
    .data 0x42080
    .u32 0x430c0
    .u32 43
    .data 0x430c0
    .u32 0x40000
    .u32 57
