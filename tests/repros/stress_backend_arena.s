# fuzz reproducer: curated stress fixture (latency-tolerance backends)
# config: base
# config: base,backend=runahead,rathresh=8
# config: wib:w=256,backend=delay_track,dtthresh=4
# failure: none — pins the backend arena under every oracle: streaming
# DRAM misses trigger runahead episodes (the store of a possibly-poisoned
# value exercises the runahead store cache and the poisoned-store set;
# the reload behind it exercises overlay forwarding), while the same
# dependence chains park and reinsert through the delay queue. The
# cross-config differential holds all three to the same commit stream.
    li r15, 32
    li r13, 0x40000
    li r12, 0x80000
    li r14, 0
loop:
    lw r1, 0(r13)
    add r2, r1, r1
    add r14, r14, r2
    sw r2, 0(r12)
    lw r3, 0(r12)
    add r14, r14, r3
    addi r13, r13, 4096
    addi r12, r12, 8
    addi r15, r15, -1
    bne r15, r0, loop
    halt
