# fuzz reproducer: curated stress fixture (subword forwarding)
# config: base
# config: wib:w=2048
# failure: none — pins mixed-width overlapping store-to-load traffic:
# byte stores punching holes in word coverage, doubleword loads spanning
# a word store plus byte stores, and partial-coverage conflicts.
    li r15, 12
    li r14, 0x20000
loop:
    sw r15, 0(r14)
    sb r15, 1(r14)
    sb r15, 6(r14)
    lw r1, 0(r14)
    lw r2, 4(r14)
    fsd f1, 8(r14)
    lbu r3, 9(r14)
    lw r4, 8(r14)
    fld f2, 0(r14)
    add r5, r1, r2
    add r6, r3, r4
    fadd f3, f1, f2
    addi r14, r14, 64
    addi r15, r15, -1
    bne r15, r0, loop
    halt
    .data 0x20000
    .u32 0x12345678
    .u32 0x9abcdef0
