# fuzz reproducer: curated stress fixture (epoch-boundary fast-forward)
# config: wib:w=2048,epoch=64,memlat=100
# config: wib:w=512,org=nonbanked4,epoch=64
# config: conv:iq=64
# failure: none — pins quiescent fast-forwards that cross tiny interval
# epochs under long memory latency; the replay's ff-on/off differential
# compares the whole interval series, not just end-of-run totals.
    li r15, 16
    li r14, 0x20000
loop:
    lw r1, 0(r14)
    add r2, r1, r2
    lw r3, 4(r14)
    mul r4, r3, r2
    sw r4, 8(r14)
    addi r14, r14, 4096
    addi r15, r15, -1
    bne r15, r0, loop
    halt
    .data 0x20000
    .u32 7
    .u32 11
