//! Architectural co-simulation: the detailed pipeline must commit exactly
//! the interpreter's instruction stream — same PCs, same destination
//! values — on every kernel and machine configuration, including randomly
//! generated programs (fuzzing the rename/forward/squash machinery).

use wib::core::{MachineConfig, Processor, RunLimit, SelectionPolicy, WibOrganization};
use wib::isa::asm::ProgramBuilder;
use wib::isa::program::Program;
use wib::isa::reg::*;
use wib::workloads::test_suite;
use wib_rng::StdRng;

fn cosim(cfg: MachineConfig, program: &Program, insts: u64) -> wib::core::RunResult {
    let mut p = Processor::new(cfg);
    p.enable_cosim();
    p.run_program(program, RunLimit::instructions(insts))
}

#[test]
fn all_kernels_on_base_machine() {
    for w in test_suite() {
        let r = cosim(MachineConfig::base_8way(), w.program(), 25_000);
        assert!(r.stats.committed > 0, "{} committed nothing", w.name());
    }
}

#[test]
fn all_kernels_on_wib_machine() {
    for w in test_suite() {
        let r = cosim(MachineConfig::wib_2k(), w.program(), 25_000);
        assert!(r.stats.committed > 0, "{} committed nothing", w.name());
    }
}

#[test]
fn all_kernels_on_scaled_conventional_machine() {
    for w in test_suite() {
        cosim(MachineConfig::conventional(1024), w.program(), 15_000);
    }
}

#[test]
fn all_kernels_on_small_wib_machine() {
    for w in test_suite() {
        cosim(
            MachineConfig::wib_sized(128).with_bit_vectors(4),
            w.program(),
            15_000,
        );
    }
}

#[test]
fn all_kernels_with_long_fp_op_diversion() {
    for w in test_suite() {
        cosim(
            MachineConfig::wib_2k().with_long_fp_divert(),
            w.program(),
            15_000,
        );
    }
}

#[test]
fn all_kernels_on_pool_of_blocks_wib() {
    for w in test_suite() {
        cosim(MachineConfig::wib_pool(8, 256), w.program(), 15_000);
    }
}

#[test]
fn all_kernels_on_starved_pool_wib() {
    // A pool small enough to be refused constantly still commits the
    // right architectural stream.
    for w in test_suite() {
        cosim(MachineConfig::wib_pool(2, 4), w.program(), 10_000);
    }
}

#[test]
fn all_kernels_on_nonbanked_wib() {
    let cfg =
        MachineConfig::wib_2k().with_wib_organization(WibOrganization::NonBanked { latency: 6 });
    for w in test_suite() {
        cosim(cfg.clone(), w.program(), 15_000);
    }
}

#[test]
fn all_kernels_on_ideal_wib_policies() {
    for policy in [
        SelectionPolicy::ProgramOrder,
        SelectionPolicy::RoundRobinLoads,
        SelectionPolicy::OldestLoadFirst,
    ] {
        let cfg = MachineConfig::wib_2k()
            .with_wib_organization(WibOrganization::Ideal)
            .with_wib_policy(policy);
        for w in test_suite() {
            cosim(cfg.clone(), w.program(), 10_000);
        }
    }
}

// ---------------------------------------------------------------------
// Random-program fuzzing
// ---------------------------------------------------------------------

const SCRATCH: u32 = 0x9000;

/// Generate a random but always-terminating program: an 8-iteration
/// counted loop around a block of random ALU/FP/memory instructions and
/// short forward branches, plus a leaf call.
fn random_program(seed: u64) -> Program {
    let mut r = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(0x1000);
    let int_regs = [R1, R2, R3, R4, R5, R6, R7, R8];
    let fp_regs = [F1, F2, F3, F4, F5, F6];
    let pick = |r: &mut StdRng, pool: &[ArchReg]| pool[r.random_range(0..pool.len())];

    b.li(R16, SCRATCH);
    b.li(R15, 8); // loop counter
                  // Seed some registers.
    for (i, reg) in int_regs.iter().enumerate() {
        b.li(*reg, (seed as u32).wrapping_mul(i as u32 + 3) & 0xffff);
    }
    b.data_f64(SCRATCH as u32, &[1.5, -2.25, 3.0, 0.5]);
    for (i, reg) in fp_regs.iter().enumerate() {
        b.fld(*reg, R16, (8 * (i % 4)) as i32);
    }
    b.label("loop");
    let block_len = r.random_range(20..60);
    let mut skip = 0u32;
    for i in 0..block_len {
        if skip > 0 {
            skip -= 1;
        }
        match r.random_range(0..10) {
            0 => {
                let (d, a, c) = (
                    pick(&mut r, &int_regs),
                    pick(&mut r, &int_regs),
                    pick(&mut r, &int_regs),
                );
                match r.random_range(0..5) {
                    0 => b.add(d, a, c),
                    1 => b.sub(d, a, c),
                    2 => b.xor(d, a, c),
                    3 => b.mul(d, a, c),
                    _ => b.slt(d, a, c),
                };
            }
            1 => {
                let (d, a) = (pick(&mut r, &int_regs), pick(&mut r, &int_regs));
                b.addi(d, a, r.random_range(-100..100));
            }
            2 => {
                // Load from scratch.
                let d = pick(&mut r, &int_regs);
                b.lw(d, R16, r.random_range(0..1020) & !3);
            }
            3 => {
                // Store to scratch.
                let s = pick(&mut r, &int_regs);
                b.sw(s, R16, r.random_range(0..1020) & !3);
            }
            4 => {
                let (d, a, c) = (
                    pick(&mut r, &fp_regs),
                    pick(&mut r, &fp_regs),
                    pick(&mut r, &fp_regs),
                );
                match r.random_range(0..4) {
                    0 => b.fadd(d, a, c),
                    1 => b.fsub(d, a, c),
                    2 => b.fmul(d, a, c),
                    _ => b.fdiv(d, a, c),
                };
            }
            5 => {
                let d = pick(&mut r, &fp_regs);
                b.fld(d, R16, (r.random_range(0..127) * 8) % 1024);
            }
            6 => {
                let s = pick(&mut r, &fp_regs);
                b.fsd(s, R16, (r.random_range(0..127) * 8) % 1024);
            }
            7 if skip == 0 && i + 4 < block_len => {
                // Short forward branch (sometimes mispredicted).
                let (a, c) = (pick(&mut r, &int_regs), pick(&mut r, &int_regs));
                let label = format!("skip_{seed}_{i}");
                match r.random_range(0..3) {
                    0 => b.beq(a, c, &label),
                    1 => b.bne(a, c, &label),
                    _ => b.blt(a, c, &label),
                };
                skip = r.random_range(1..4);
                // Emit the skipped instructions then the label.
                for _ in 0..skip {
                    let (d, a2) = (pick(&mut r, &int_regs), pick(&mut r, &int_regs));
                    b.addi(d, a2, 1);
                }
                b.label(&label);
                skip = 0;
            }
            8 => {
                let (d, a) = (pick(&mut r, &int_regs), pick(&mut r, &fp_regs));
                b.cvtfi(d, a);
            }
            _ => {
                let (d, a) = (pick(&mut r, &fp_regs), pick(&mut r, &int_regs));
                b.cvtif(d, a);
            }
        }
    }
    // Leaf call to stress the RAS.
    b.li(SP, 0xf0000);
    b.jal("leaf");
    b.addi(R15, R15, -1);
    b.bne(R15, R0, "loop");
    b.halt();
    b.label("leaf");
    b.addi(R9, R9, 7);
    b.ret();
    b.finish().expect("random program assembles")
}

#[test]
fn random_programs_cosimulate_on_all_machines() {
    for seed in 0..16u64 {
        let program = random_program(seed);
        let base = cosim(MachineConfig::base_8way(), &program, 50_000);
        let wib = cosim(MachineConfig::wib_2k(), &program, 50_000);
        let conv = cosim(MachineConfig::conventional(256), &program, 50_000);
        assert!(
            base.halted && wib.halted && conv.halted,
            "seed {seed} did not halt"
        );
        assert_eq!(
            base.stats.committed, wib.stats.committed,
            "seed {seed}: commit counts diverge"
        );
        assert_eq!(base.stats.committed, conv.stats.committed);
    }
}

#[test]
fn random_programs_with_tiny_caches_and_windows() {
    // A hostile configuration: tiny window, tiny WIB, few bit-vectors.
    let mut cfg = MachineConfig::wib_sized(128).with_bit_vectors(2);
    cfg.iq_int_size = 8;
    cfg.iq_fp_size = 8;
    for seed in 16..24u64 {
        let program = random_program(seed);
        let r = cosim(cfg.clone(), &program, 50_000);
        assert!(r.halted, "seed {seed} did not halt");
    }
}
