//! Smoke tests for the experiment harness configurations: every machine
//! the figures use runs correctly, and the headline qualitative results
//! hold even on miniature inputs.

use wib::core::{MachineConfig, Processor, RunLimit, WibOrganization};
use wib::workloads::suite::{fp, olden};

fn ipc(cfg: MachineConfig, program: &wib::isa::program::Program, insts: u64) -> f64 {
    Processor::new(cfg)
        .run_program(program, RunLimit::instructions(insts))
        .ipc()
}

/// A memory-parallel kernel big enough to overwhelm the caches even in
/// miniature (the independent-miss stream the WIB is built for).
fn mlp_kernel() -> wib::isa::program::Program {
    use wib::isa::asm::ProgramBuilder;
    use wib::isa::reg::*;
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x20_0000);
    b.li(R4, 4_000);
    b.label("loop");
    b.lw(R2, R1, 0);
    b.add(R5, R5, R2);
    b.addi(R1, R1, 4096);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    b.finish().expect("assembles")
}

#[test]
fn figure1_larger_windows_help_mlp() {
    let p = mlp_kernel();
    let small = ipc(MachineConfig::conventional(32), &p, 15_000);
    let large = ipc(MachineConfig::conventional(2048), &p, 15_000);
    assert!(
        large > 2.0 * small,
        "2K window should crush the 32-entry one on independent misses: {small} vs {large}"
    );
}

#[test]
fn figure4_wib_captures_most_of_the_large_window() {
    let p = mlp_kernel();
    let base = ipc(MachineConfig::base_8way(), &p, 15_000);
    let big_iq = ipc(MachineConfig::conventional(2048), &p, 15_000);
    let wib = ipc(MachineConfig::wib_2k(), &p, 15_000);
    assert!(
        wib > base * 1.5,
        "WIB should clearly beat base: {base} vs {wib}"
    );
    assert!(
        wib > 0.5 * big_iq,
        "WIB should capture a significant fraction of 2K-IQ: {wib} vs {big_iq}"
    );
}

#[test]
fn figure5_bit_vectors_scale_monotonically_ish() {
    let p = mlp_kernel();
    let few = ipc(MachineConfig::wib_2k().with_bit_vectors(2), &p, 15_000);
    let many = ipc(MachineConfig::wib_2k(), &p, 15_000);
    assert!(
        many >= few * 0.95,
        "unlimited bit-vectors should not lose to 2: {few} vs {many}"
    );
}

#[test]
fn figure6_capacity_scales() {
    let p = mlp_kernel();
    let small = ipc(MachineConfig::wib_sized(128), &p, 15_000);
    let large = ipc(MachineConfig::wib_sized(2048), &p, 15_000);
    assert!(
        large >= small * 0.95,
        "2K WIB should not lose to 128: {small} vs {large}"
    );
}

#[test]
fn figure7_nonbanked_is_close_to_banked() {
    let w = olden::em3d(256, 4, 3);
    let banked = ipc(MachineConfig::wib_2k(), w.program(), 20_000);
    for latency in [4u64, 6] {
        let cfg =
            MachineConfig::wib_2k().with_wib_organization(WibOrganization::NonBanked { latency });
        let non = ipc(cfg, w.program(), 20_000);
        // The paper: "only slight reductions in performance".
        assert!(
            non > 0.7 * banked,
            "{latency}-cycle non-banked too far below banked: {non} vs {banked}"
        );
    }
}

#[test]
fn recycling_statistics_are_collected() {
    // The stencil waits on multiple misses per instruction: at least some
    // instructions should take more than one WIB trip.
    let w = fp::mgrid(16, 4);
    let r = Processor::new(MachineConfig::wib_2k())
        .run_program(w.program(), RunLimit::instructions(30_000));
    assert!(r.stats.wib_insertions > 0, "mgrid never used the WIB");
    assert!(
        r.stats.wib_insertions_committed >= r.stats.wib_touched_insts,
        "trip accounting is inconsistent"
    );
}

#[test]
fn sensitivity_shorter_memory_latency_shrinks_the_gain() {
    let p = mlp_kernel();
    let speedup_at = |lat: u64| {
        let base = ipc(
            MachineConfig::base_8way().with_memory_latency(lat),
            &p,
            15_000,
        );
        let wib = ipc(MachineConfig::wib_2k().with_memory_latency(lat), &p, 15_000);
        wib / base
    };
    let s250 = speedup_at(250);
    let s100 = speedup_at(100);
    assert!(
        s100 < s250,
        "less latency to tolerate should mean less WIB gain: 100c {s100} vs 250c {s250}"
    );
}

#[test]
fn runs_are_deterministic() {
    let w = olden::treeadd(8, 2);
    let cfg = MachineConfig::wib_2k();
    let a = Processor::new(cfg.clone()).run_program(w.program(), RunLimit::instructions(20_000));
    let b = Processor::new(cfg).run_program(w.program(), RunLimit::instructions(20_000));
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    assert_eq!(a.stats.wib_insertions, b.stats.wib_insertions);
}

#[test]
fn table2_statistics_are_sane() {
    for w in wib::workloads::test_suite() {
        let r = Processor::new(MachineConfig::base_8way())
            .run_program(w.program(), RunLimit::instructions(10_000));
        let s = &r.stats;
        assert!(
            s.ipc() > 0.0 && s.ipc() <= 8.0,
            "{}: ipc {}",
            w.name(),
            s.ipc()
        );
        let rate = s.branch_dir_rate();
        assert!((0.0..=1.0).contains(&rate), "{}: dir rate {rate}", w.name());
        assert!(s.mem.l1d_miss_ratio() <= 1.0);
        assert!(s.mem.l2_local_miss_ratio() <= 1.0);
    }
}
