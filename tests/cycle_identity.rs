//! Cycle-identity harness: every in-repo workload, run on a spread of
//! machine configurations, must produce *exactly* the statistics captured
//! in the committed golden fixtures (`tests/goldens/*.json`).
//!
//! The goldens were blessed from the pre-optimization simulator, so this
//! test proves that performance rewrites of the cycle loop (arena issue
//! queue, in-place WIB extraction, hoisted scratch buffers, the event
//! wheel) are cycle-for-cycle identical to the original data structures:
//! cycles, commits, the full CPI stack, WIB insertion/extraction counts
//! and the interval time-series all have to match byte for byte.
//!
//! To re-bless after an *intentional* timing change:
//!
//! ```text
//! WIB_BLESS=1 cargo test --test cycle_identity
//! ```

use std::path::PathBuf;
use wib_core::{Json, MachineConfig, Processor, RunLimit, SelectionPolicy, WibOrganization};
use wib_workloads::test_suite;

/// Instructions simulated in detail (cold start: every workload begins
/// with compulsory misses, which exercises the WIB paths hard).
const INSTS: u64 = 10_000;

/// Configurations chosen to cover every extraction/selection code path:
/// no WIB, banked bit-vector, non-banked (global eligible set), ideal
/// round-robin (per-column draining) and the pool-of-blocks organization.
fn configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("base", MachineConfig::base_8way()),
        ("wib2k", MachineConfig::wib_2k()),
        (
            "nonbanked4",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::NonBanked { latency: 4 }),
        ),
        (
            "ideal_rr",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::RoundRobinLoads),
        ),
        ("pool4x64", MachineConfig::wib_pool(4, 64)),
        // Tiny stats epoch: quiescent fast-forwards cross interval
        // boundaries constantly, so this golden pins the skip's
        // per-interval attribution (each interval's committed count and
        // occupancy samples), not just end-of-run totals.
        (
            "wib2k_epoch64",
            MachineConfig::wib_2k().with_stats_epoch(64),
        ),
    ]
}

/// Deterministic fingerprint of one run: everything `--stats-json` emits
/// except the wall-clock fields.
fn fingerprint(bench: &str, cname: &str, cfg: &MachineConfig) -> String {
    let workload = test_suite()
        .into_iter()
        .find(|w| w.name() == bench)
        .expect("known workload");
    let result =
        Processor::new(cfg.clone()).run_program(workload.program(), RunLimit::instructions(INSTS));
    Json::obj()
        .field("schema", "wib-sim/cycle-identity-v1")
        .field("benchmark", bench)
        .field("config", cname)
        .field("insts", INSTS)
        .field("halted", result.halted)
        .field("ipc", result.ipc())
        .field("stats", result.stats.to_json())
        .pretty()
}

#[test]
fn all_workloads_match_seed_goldens() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    let bless = std::env::var("WIB_BLESS").is_ok();
    if bless {
        std::fs::create_dir_all(&dir).expect("create goldens directory");
    }
    let configs = configs();
    let mut mismatches = Vec::new();
    for w in test_suite() {
        for (cname, cfg) in &configs {
            let got = fingerprint(w.name(), cname, cfg);
            let path = dir.join(format!("{}_{}.json", w.name(), cname));
            if bless {
                std::fs::write(&path, &got).expect("write golden");
                continue;
            }
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
            if got != want {
                mismatches.push(format!("{} / {}", w.name(), cname));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "cycle-identity broken for {} run(s): {:?}\n\
         (diff tests/goldens/*.json against a fresh WIB_BLESS=1 run to see \
         which statistics moved)",
        mismatches.len(),
        mismatches
    );
}
