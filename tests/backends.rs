//! The latency-tolerance backend arena (tier-1).
//!
//! All four `backend=` machines — the conventional base, the WIB, the
//! runahead pre-executor and the load-delay-tracking scheduler — share
//! one fetch/rename/commit spine and must agree on architecture: every
//! run here is co-simulated against the reference interpreter, and under
//! `--features checked` also runs the per-cycle machine-check invariants
//! (including the delay-queue checker and the cross-structure ownership
//! census). Performance-wise,
//! runahead must actually earn its keep on an L2-miss-heavy kernel, and
//! each backend's own machinery must demonstrably engage.

use wib::core::{MachineConfig, Processor, RunLimit, RunResult};
use wib::isa::asm::ProgramBuilder;
use wib::isa::program::Program;
use wib::isa::reg::*;
use wib::workloads::test_suite;

/// The four arena machines, by backend name.
fn arena() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("base", MachineConfig::base_8way()),
        ("wib", MachineConfig::wib_2k()),
        ("runahead", MachineConfig::runahead_8way()),
        ("delay_track", MachineConfig::delay_track_2k()),
    ]
}

fn checked_cosim(cfg: MachineConfig, program: &Program, insts: u64) -> RunResult {
    let mut p = Processor::new(cfg);
    // Architectural lockstep always; the per-cycle invariant checkers
    // and ownership census arm with the rest of the suite under
    // `--features checked` (the offline gate's dedicated release phase —
    // they are an order of magnitude too slow for the debug tier).
    p.enable_cosim();
    p.run_program(program, RunLimit::instructions(insts))
}

/// Independent streaming loads, one DRAM miss per iteration: the regime
/// the paper's latency-tolerance mechanisms target.
fn streaming_misses() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x20_0000);
    b.li(R4, 64);
    b.li(R5, 0);
    b.label("loop");
    b.lw(R2, R1, 0); // miss
    b.add(R3, R2, R2); // dependent
    b.add(R5, R5, R3);
    b.addi(R1, R1, 4096); // next page
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    b.finish().unwrap()
}

/// A dependent pointer chase: serialized DRAM misses, where runahead can
/// do little (the next address is the missing data) but must stay
/// architecturally exact anyway.
fn pointer_chase() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    let nodes = 32u32;
    let base = 0x10_0000u32;
    let stride = 4096 + 64;
    let addrs: Vec<u32> = (0..nodes).map(|i| base + i * stride).collect();
    for i in 0..nodes as usize {
        let next = if i + 1 < nodes as usize {
            addrs[i + 1]
        } else {
            0
        };
        b.data_u32(addrs[i], &[next, i as u32]);
    }
    b.li(R1, addrs[0]);
    b.li(R3, 0);
    b.label("walk");
    b.lw(R2, R1, 4);
    b.add(R3, R3, R2);
    b.lw(R1, R1, 0); // dependent miss
    b.bne(R1, R0, "walk");
    b.halt();
    b.finish().unwrap()
}

#[test]
fn all_kernels_run_checked_on_all_backends() {
    // The per-cycle checkers are an order of magnitude slower without
    // optimization; a debug (`cargo test -q`) run covers the same
    // kernel x backend matrix on a shorter leash.
    let insts = if cfg!(debug_assertions) { 500 } else { 5_000 };
    for w in test_suite() {
        for (name, cfg) in arena() {
            let r = checked_cosim(cfg, w.program(), insts);
            assert!(
                r.stats.committed > 0,
                "{}/{name} committed nothing",
                w.name()
            );
        }
    }
}

#[test]
fn backends_agree_on_committed_work() {
    // On a program every machine runs to `halt`, the committed
    // instruction count is an architectural fact: all four backends must
    // agree exactly (runahead's pseudo-retired instructions must never
    // leak into the commit counters).
    for prog in [streaming_misses(), pointer_chase()] {
        let mut runs = Vec::new();
        for (name, cfg) in arena() {
            let r = checked_cosim(cfg, &prog, 50_000);
            assert!(r.halted, "{name} did not halt");
            runs.push((name, r.stats.committed));
        }
        let want = runs[0].1;
        for (name, got) in &runs {
            assert_eq!(*got, want, "{name} committed {got}, base committed {want}");
        }
    }
}

#[test]
fn runahead_beats_base_on_streaming_misses() {
    let prog = streaming_misses();
    let base = checked_cosim(MachineConfig::base_8way(), &prog, 10_000);
    let ra = checked_cosim(MachineConfig::runahead_8way(), &prog, 10_000);
    assert!(base.halted && ra.halted);
    assert!(
        ra.stats.runahead_episodes > 0,
        "runahead never entered an episode"
    );
    assert!(
        ra.stats.runahead_pseudo_retired > 0,
        "episodes pre-executed nothing"
    );
    assert!(
        ra.ipc() > base.ipc(),
        "runahead {} should beat base {} when misses are prefetchable",
        ra.ipc(),
        base.ipc()
    );
}

#[test]
fn delay_tracking_engages_and_keeps_up() {
    let prog = streaming_misses();
    let base = checked_cosim(MachineConfig::base_8way(), &prog, 10_000);
    let dt = checked_cosim(MachineConfig::delay_track_2k(), &prog, 10_000);
    assert!(base.halted && dt.halted);
    assert!(dt.stats.delay_parked > 0, "nothing ever parked");
    assert_eq!(
        dt.stats.delay_parked, dt.stats.delay_reinserted,
        "every parked instruction must reinsert (none were squashed here)"
    );
    // Parking dependents frees the issue queue like the WIB does; on this
    // kernel that must not cost throughput.
    assert!(
        dt.ipc() >= base.ipc(),
        "delay tracking {} fell behind base {}",
        dt.ipc(),
        base.ipc()
    );
}

#[test]
fn backend_stats_section_is_gated() {
    // Base/WIB runs serialize without a `backend` stats section (the 90
    // cycle-identity goldens pin that); the new backends name themselves.
    let prog = streaming_misses();
    for (name, cfg) in arena() {
        let r = checked_cosim(cfg, &prog, 10_000);
        let json = r.stats.to_json().to_string();
        match name {
            "base" | "wib" => {
                assert_eq!(r.stats.backend, "");
                assert!(
                    !json.contains("\"backend\""),
                    "{name} emitted a backend section"
                );
            }
            _ => {
                assert_eq!(r.stats.backend, name);
                assert!(
                    json.contains("\"backend\""),
                    "{name} lost its backend section"
                );
            }
        }
    }
}

#[test]
fn backend_specs_build_working_processors() {
    // The spec strings the sweep/serve planes pass around reconstruct
    // machines that actually run — the full axis, through `from_spec`.
    let prog = streaming_misses();
    for spec in [
        "base",
        "wib:w=2048",
        "base,backend=runahead",
        "base,backend=runahead,rathresh=64",
        "wib:w=2048,backend=delay_track",
        "wib:w=512,backend=delay_track,dtthresh=24",
    ] {
        let cfg = MachineConfig::from_spec(spec).expect(spec);
        assert_eq!(MachineConfig::from_spec(&cfg.to_spec()).unwrap(), cfg);
        let r = checked_cosim(cfg, &prog, 5_000);
        assert!(r.halted, "{spec} did not halt");
    }
}
