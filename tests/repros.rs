//! Replay every fuzzer reproducer in `tests/repros/` (tier-1).
//!
//! Each `.s` file is a minimized case the differential fuzzer
//! (`wib-bench --bin fuzz`) either found failing during development or
//! that was curated as a stress fixture. The header's `# config:` lines
//! name the machine specs; the replay arms the same oracles the fuzzer
//! used — co-simulation, per-cycle machine checks, the fast-forward
//! on/off differential and the cross-config commit differential — so a
//! regression of any fixed bug (or a new one in these scenarios) fails
//! this test with the oracle's description.

use std::path::PathBuf;

use wib_bench::fuzz::{repro_specs, run_case_text, with_quiet_panics};

#[test]
fn all_repros_replay_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing {}: {e}", dir.display()))
        .filter_map(|entry| {
            let p = entry.expect("read repro dir entry").path();
            (p.extension().is_some_and(|x| x == "s")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no reproducers in {} — the directory must hold at least the \
         curated stress fixtures",
        dir.display()
    );
    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for path in &files {
            let text = std::fs::read_to_string(path).expect("read repro");
            let specs = repro_specs(&text);
            assert!(
                !specs.is_empty(),
                "{} has no `# config:` header lines",
                path.display()
            );
            if let Err(e) = run_case_text(&text, &specs) {
                failures.push(format!("{}: {e}", path.display()));
            }
        }
    });
    assert!(
        failures.is_empty(),
        "{} reproducer(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
