//! Snapshot test of the `wib-sim workloads` listing.
//!
//! The table names every suite program with its static instruction count
//! — the serving daemon validates submitted job names against this
//! catalog, so the listing is part of the protocol surface and must not
//! drift silently.
//!
//! To re-bless after an intentional suite change:
//!
//! ```sh
//! WIB_BLESS=1 cargo test --test workloads_table
//! ```

use std::path::PathBuf;
use wib_workloads::{eval_suite, table, test_suite};

#[test]
fn workloads_table_matches_golden() {
    let rendered = format!(
        "== eval suite ==\n{}\n== tiny suite ==\n{}",
        table(&eval_suite()),
        table(&test_suite())
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/workloads_table.txt");
    if std::env::var("WIB_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("bless workloads table golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run WIB_BLESS=1 cargo test --test workloads_table",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "workloads table drifted from {}; if intentional, re-bless with \
         WIB_BLESS=1 cargo test --test workloads_table",
        path.display()
    );
}
