//! The observability layer, end to end: the pipeline event stream agrees
//! with the aggregate statistics, the CPI stack sums exactly to the cycle
//! count, the interval time-series has the promised cadence, and the JSON
//! export keeps a stable schema (key order is part of the contract).

use wib::core::{
    CountingSink, CpiCategory, EventKind, MachineConfig, Processor, RunLimit, RunResult, TextSink,
    CPI_CATEGORIES,
};
use wib::isa::program::Program;

fn em3d() -> wib::workloads::Workload {
    wib::workloads::suite::olden::em3d(64, 4, 2)
}

fn run(cfg: MachineConfig, p: &Program, n: u64) -> RunResult {
    Processor::new(cfg).run_program(p, RunLimit::instructions(n))
}

/// Every cycle lands in exactly one CPI category, so the stack totals the
/// cycle count — on every machine organization, halted or limit-stopped.
#[test]
fn cpi_stack_sums_exactly_to_cycles() {
    let configs = [
        ("base", MachineConfig::base_8way()),
        ("wib2k", MachineConfig::wib_2k()),
        ("pool", MachineConfig::wib_pool(4, 64)),
        ("conv", MachineConfig::conventional(512)),
    ];
    for w in wib::workloads::test_suite() {
        for (name, cfg) in &configs {
            for insts in [500, 20_000] {
                let r = run(cfg.clone(), w.program(), insts);
                assert_eq!(
                    r.stats.cpi.total(),
                    r.stats.cycles,
                    "CPI stack must sum to cycles: {} on {name} ({insts} insts)",
                    w.name()
                );
            }
        }
    }
}

/// A memory-bound kernel must show memory stall cycles in the stack, and
/// the base category must match the committing cycles.
#[test]
fn cpi_stack_attributes_memory_stalls() {
    let r = run(MachineConfig::base_8way(), em3d().program(), 20_000);
    let mem_cycles = r.stats.cpi.get(CpiCategory::L1dMiss) + r.stats.cpi.get(CpiCategory::L2Miss);
    assert!(
        mem_cycles > r.stats.cycles / 20,
        "em3d on the base machine should stall on memory: {mem_cycles} of {} cycles",
        r.stats.cycles
    );
    assert!(r.stats.cpi.get(CpiCategory::Base) > 0);
}

/// The counting sink's event totals agree with the aggregate statistics
/// the engine keeps independently.
#[test]
fn counting_sink_agrees_with_sim_stats() {
    for cfg in [MachineConfig::base_8way(), MachineConfig::wib_2k()] {
        let mut sink = CountingSink::new();
        let p = Processor::new(cfg);
        let r = p.run_program_observed(em3d().program(), RunLimit::instructions(20_000), &mut sink);
        assert_eq!(sink.count(EventKind::Fetch), r.stats.fetched);
        assert_eq!(sink.count(EventKind::Dispatch), r.stats.dispatched);
        assert_eq!(sink.count(EventKind::Issue), r.stats.issued);
        assert_eq!(sink.count(EventKind::Commit), r.stats.committed);
        assert_eq!(sink.count(EventKind::WibInsert), r.stats.wib_insertions);
        assert_eq!(sink.count(EventKind::WibExtract), r.stats.wib_extractions);
        assert_eq!(sink.count(EventKind::MshrMerge), r.stats.mem.mshr_merges);
        // Every miss that started also finished (or was squashed): finish
        // events can only lag, never lead.
        assert!(sink.count(EventKind::MissFinish) <= sink.count(EventKind::MissStart));
        // Commits complete exactly once; wrong-path instructions may
        // complete and be squashed, so completes can exceed commits.
        assert!(sink.count(EventKind::Complete) >= r.stats.committed);
    }
}

/// WIB traffic lands in the banks `slot % banks` predicts, and spreads
/// over more than one bank on a banked configuration.
#[test]
fn banked_wib_traffic_is_per_bank() {
    let mut sink = CountingSink::new();
    let p = Processor::new(MachineConfig::wib_2k());
    let r = p.run_program_observed(em3d().program(), RunLimit::instructions(20_000), &mut sink);
    assert!(r.stats.wib_insertions > 0, "kernel must exercise the WIB");
    let inserted: u64 = sink.bank_inserts().iter().sum();
    assert_eq!(inserted, r.stats.wib_insertions);
    let active = sink.bank_inserts().iter().filter(|&&n| n > 0).count();
    assert!(active > 1, "banked WIB should use multiple banks: {active}");
}

/// The interval series samples every `stats_epoch` cycles: length is
/// exactly `cycles / epoch`, cycle stamps are the epoch boundaries, and
/// the per-interval commit deltas sum to the committed total at the last
/// boundary.
#[test]
fn interval_series_has_epoch_cadence() {
    let epoch = 500u64;
    let cfg = MachineConfig::wib_2k().with_stats_epoch(epoch);
    let r = run(cfg, em3d().program(), 30_000);
    let n = r.stats.intervals.len() as u64;
    assert_eq!(n, r.stats.cycles / epoch, "cycles={}", r.stats.cycles);
    assert!(n > 3, "test must cover several epochs");
    for (i, s) in r.stats.intervals.iter().enumerate() {
        assert_eq!(s.cycle, (i as u64 + 1) * epoch);
        assert!(s.ipc <= 8.0, "IPC beyond machine width");
    }
    let committed: u64 = r.stats.intervals.iter().map(|s| s.committed).sum();
    assert!(committed <= r.stats.committed);
    let tail = r.stats.committed - committed;
    assert!(
        tail <= 8 * epoch,
        "unsampled tail longer than an epoch's worth of commits: {tail}"
    );
    // A WIB kernel's series should show occupancy.
    assert!(r.stats.intervals.iter().any(|s| s.window_occupancy > 0));
}

/// The JSON export's schema is stable: top-level keys, CPI categories and
/// interval fields appear in a fixed order (goldens for downstream
/// tooling — changing them is an intentional schema break).
#[test]
fn stats_json_schema_is_stable() {
    let cfg = MachineConfig::wib_2k().with_stats_epoch(1_000);
    let r = run(cfg, em3d().program(), 5_000);
    let j = r.stats.to_json();
    assert_eq!(
        j.keys(),
        vec![
            "cycles",
            "committed",
            "ipc",
            "fetched",
            "dispatched",
            "issued",
            "committed_loads",
            "committed_stores",
            "cond_branches",
            "dir_mispredicts",
            "branch_dir_rate",
            "target_mispredicts",
            "order_violations",
            "dir_lookups",
            "rf_l2_reads",
            "mem",
            "stalls",
            "wib",
            "occupancy",
            "cpi_stack",
            "interval_epoch",
            "intervals",
        ]
    );
    let cpi = j.get("cpi_stack").expect("cpi_stack present");
    let names: Vec<&str> = CPI_CATEGORIES.iter().map(|c| c.name()).collect();
    assert_eq!(cpi.keys(), names);
    let intervals = j.get("intervals").expect("intervals present");
    if let wib::core::Json::Arr(items) = intervals {
        let first = items
            .first()
            .expect("5k insts spans at least one 1k-cycle epoch");
        assert_eq!(
            first.keys(),
            vec![
                "cycle",
                "committed",
                "ipc",
                "window_occupancy",
                "iq_occupancy",
                "wib_resident",
                "wib_columns_in_use",
                "outstanding_misses",
            ]
        );
    } else {
        panic!("intervals must be an array");
    }
    // The serialized text round-trips the key order.
    let text = j.pretty();
    let cycles_at = text.find("\"cycles\"").unwrap();
    let intervals_at = text.find("\"intervals\"").unwrap();
    assert!(cycles_at < intervals_at);
}

/// The text event log has the documented line format and honors its
/// budget.
#[test]
fn text_event_log_is_pipeview_shaped() {
    let mut sink = TextSink::new(2_000);
    let p = Processor::new(MachineConfig::wib_2k());
    p.run_program_observed(em3d().program(), RunLimit::instructions(2_000), &mut sink);
    let seen = sink.events_seen();
    assert!(
        seen > 2_000,
        "a 2k-inst run emits more events than lines kept"
    );
    let text = sink.into_text();
    assert!(text.starts_with("# wib-sim pipeline events v1"));
    assert!(text.contains(" D  seq="), "dispatch lines present");
    assert!(text.contains(" R  seq="), "retire lines present");
    assert!(text.contains("# truncated:"), "budget enforced");
    // Budget: 2 header lines + max_lines + 1 truncation comment.
    assert_eq!(text.lines().count(), 2 + 2_000 + 1);
}

/// With no sink attached the stream costs one branch per event site:
/// results must be identical with and without an attached sink.
#[test]
fn observed_run_is_deterministically_identical() {
    let p = Processor::new(MachineConfig::wib_2k());
    let plain = p.run_program(em3d().program(), RunLimit::instructions(10_000));
    let mut sink = CountingSink::new();
    let observed =
        p.run_program_observed(em3d().program(), RunLimit::instructions(10_000), &mut sink);
    assert_eq!(plain.stats.cycles, observed.stats.cycles);
    assert_eq!(plain.stats.committed, observed.stats.committed);
    assert_eq!(plain.stats.cpi, observed.stats.cpi);
    assert_eq!(plain.stats.intervals, observed.stats.intervals);
}

/// Tail-mode tracing keeps the last N commits, head mode the first N.
#[test]
fn trace_tail_mode_keeps_the_end_of_the_run() {
    let p = Processor::new(MachineConfig::base_8way());
    let limit = RunLimit::instructions(2_000);
    let (r_head, head) = p.run_program_traced(em3d().program(), limit, 64);
    let (r_tail, tail) = p.run_program_traced_tail(em3d().program(), limit, 64);
    assert_eq!(r_head.stats.committed, r_tail.stats.committed);
    assert_eq!(head.len(), 64);
    assert_eq!(tail.len(), 64);
    let first_head = head.records().next().unwrap().seq;
    let last_tail = tail.records().last().unwrap().seq;
    assert!(
        last_tail > first_head,
        "tail trace must cover later commits"
    );
    assert_eq!(tail.dropped(), r_tail.stats.committed - 64);
}
