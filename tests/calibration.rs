//! Calibration regression tests: the full-size kernels must stay in the
//! paper's regime (suite-average WIB speedups, headline orderings).
//!
//! These run the evaluation-scale workloads and take a few minutes, so
//! they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test calibration -- --ignored
//! ```

use wib::core::{MachineConfig, Processor, RunLimit};
use wib::workloads::{eval_suite, Suite};

fn suite_speedup(suite: Suite) -> f64 {
    let mut speedups = Vec::new();
    for w in eval_suite().iter().filter(|w| w.suite() == suite) {
        let limit = RunLimit::instructions(100_000);
        let base = Processor::new(MachineConfig::base_8way()).run_program_warmed(
            w.program(),
            100_000,
            limit,
        );
        let wib =
            Processor::new(MachineConfig::wib_2k()).run_program_warmed(w.program(), 100_000, limit);
        speedups.push(wib.ipc() / base.ipc());
    }
    speedups.iter().sum::<f64>() / speedups.len() as f64
}

#[test]
#[ignore = "evaluation-scale; run with --ignored"]
fn int_suite_average_matches_paper_band() {
    let s = suite_speedup(Suite::Int);
    // Paper: +20%. Accept 1.05..1.45.
    assert!(
        (1.05..1.45).contains(&s),
        "INT average speedup {s:.2} left the paper band"
    );
}

#[test]
#[ignore = "evaluation-scale; run with --ignored"]
fn fp_suite_average_matches_paper_band() {
    let s = suite_speedup(Suite::Fp);
    // Paper: +84%. Accept 1.5..2.4.
    assert!(
        (1.5..2.4).contains(&s),
        "FP average speedup {s:.2} left the paper band"
    );
}

#[test]
#[ignore = "evaluation-scale; run with --ignored"]
fn olden_suite_average_matches_paper_band() {
    let s = suite_speedup(Suite::Olden);
    // Paper: +50%. Accept 1.3..2.1.
    assert!(
        (1.3..2.1).contains(&s),
        "Olden average speedup {s:.2} left the paper band"
    );
}

#[test]
#[ignore = "evaluation-scale; run with --ignored"]
fn art_is_the_wib_headliner() {
    // The paper's most WIB-friendly benchmark must exceed 2x here too.
    let w = eval_suite()
        .into_iter()
        .find(|w| w.name() == "art")
        .expect("art exists");
    let limit = RunLimit::instructions(100_000);
    let base =
        Processor::new(MachineConfig::base_8way()).run_program_warmed(w.program(), 100_000, limit);
    let wib =
        Processor::new(MachineConfig::wib_2k()).run_program_warmed(w.program(), 100_000, limit);
    let s = wib.ipc() / base.ipc();
    assert!(s > 2.0, "art should exceed 2x (paper ~3.9x), got {s:.2}");
}
