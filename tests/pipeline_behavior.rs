//! Directed behavioural tests of specific pipeline mechanisms: penalties,
//! gating, the two-level register file, the trace facility, and the
//! forward-progress machinery.

use wib::core::{MachineConfig, Processor, RegFileConfig, RunLimit};
use wib::isa::asm::ProgramBuilder;
use wib::isa::program::Program;
use wib::isa::reg::*;

fn run(cfg: MachineConfig, p: &Program, n: u64) -> wib::core::RunResult {
    let mut proc_ = Processor::new(cfg);
    proc_.enable_cosim();
    proc_.run_program(p, RunLimit::instructions(n))
}

/// Alternating-direction branch that the two-level history captures but
/// bimodal cannot.
#[test]
fn history_predictor_learns_alternation() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 2_000);
    b.label("loop");
    b.andi(R2, R1, 1);
    b.beq(R2, R0, "even");
    b.addi(R3, R3, 1);
    b.label("even");
    b.addi(R1, R1, -1);
    b.bne(R1, R0, "loop");
    b.halt();
    let r = run(MachineConfig::base_8way(), &b.finish().unwrap(), 50_000);
    // After warm-up the alternating branch should be nearly perfect.
    assert!(
        r.stats.branch_dir_rate() > 0.95,
        "two-level predictor should capture alternation: {}",
        r.stats.branch_dir_rate()
    );
}

/// Indirect jumps through a changing target must pay target-misprediction
/// penalties.
#[test]
fn indirect_jumps_mispredict_on_changing_targets() {
    let mut b = ProgramBuilder::new(0x1000);
    // Alternate jr target between two blocks via a toggling register.
    b.li(R1, 600);
    b.li(R5, 0); // toggle
    b.label("loop");
    // target = (toggle & 1) ? blockB : blockA, read from a table
    b.li(R6, 0x9000);
    b.andi(R7, R5, 1);
    b.slli(R7, R7, 2);
    b.add(R7, R7, R6);
    b.lw(R8, R7, 0);
    b.jr(R8);
    b.label("blockA");
    b.addi(R3, R3, 1);
    b.j("join");
    b.label("blockB");
    b.addi(R4, R4, 1);
    b.label("join");
    b.addi(R5, R5, 1);
    b.addi(R1, R1, -1);
    b.bne(R1, R0, "loop");
    b.halt();
    let mut p = b.finish().unwrap();
    let dis = p.disassemble();
    let addr_of = |needle: &str| {
        dis.iter()
            .find(|(_, t)| t == needle)
            .map(|(a, _)| *a)
            .expect("instruction present")
    };
    // blockA starts at the first `addi r3, r3, 1`, blockB at `addi r4...`.
    let block_a = addr_of("addi r3, r3, 1");
    let block_b = addr_of("addi r4, r4, 1");
    p.data.push((
        0x9000,
        [block_a.to_le_bytes(), block_b.to_le_bytes()].concat(),
    ));
    let r = run(MachineConfig::base_8way(), &p, 50_000);
    assert!(r.halted);
    assert!(
        r.stats.target_mispredicts > 100,
        "alternating indirect targets should mispredict: {}",
        r.stats.target_mispredicts
    );
}

/// The two-level register file costs something on the WIB machine but
/// stays within a modest factor (the paper picked it because it barely
/// hurts).
#[test]
fn two_level_register_file_costs_little() {
    // em3d keeps enough values in flight that some register reads fall to
    // the second level.
    let w = wib::workloads::suite::olden::em3d(256, 8, 4);
    let two_level = run(MachineConfig::wib_2k(), w.program(), 20_000);
    let mut cfg = MachineConfig::wib_2k();
    cfg.regfile = RegFileConfig::SingleLevel;
    let single = run(cfg, w.program(), 20_000);
    assert!(
        two_level.stats.rf_l2_reads > 0,
        "two-level file never touched its L2"
    );
    assert_eq!(single.stats.rf_l2_reads, 0);
    let ratio = single.ipc() / two_level.ipc();
    assert!(
        ratio < 1.35,
        "two-level register file should cost modestly, lost {ratio:.2}x"
    );
}

/// The multi-banked register file (paper 3.4's alternative) co-simulates
/// and performs "similar" to the two-level file.
#[test]
fn multi_banked_register_file_is_similar() {
    let w = wib::workloads::suite::fp::art(2048, 2, 2);
    let two_level = run(MachineConfig::wib_2k(), w.program(), 15_000);
    let mut cfg = MachineConfig::wib_2k();
    cfg.regfile = RegFileConfig::multi_banked_8x2();
    let banked = run(cfg, w.program(), 15_000);
    let ratio = banked.ipc() / two_level.ipc();
    assert!(
        (0.8..=1.25).contains(&ratio),
        "multi-banked should be similar to two-level, got {ratio:.2}x"
    );
}

/// Store-wait training: after an order violation, re-executions of the
/// same load are gated and violations stop recurring every iteration.
#[test]
fn store_wait_training_reduces_replays() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R9, 0x8000);
    b.li(R8, 5);
    b.li(R7, 400);
    b.label("loop");
    // Slow store address; fast conflicting load.
    b.mul(R1, R9, R8);
    b.mul(R1, R1, R8);
    b.sub(R1, R1, R1);
    b.add(R1, R1, R9);
    b.sw(R8, R1, 0);
    b.lw(R2, R9, 0);
    b.add(R3, R3, R2);
    b.addi(R7, R7, -1);
    b.bne(R7, R0, "loop");
    b.halt();
    let r = run(MachineConfig::base_8way(), &b.finish().unwrap(), 20_000);
    assert!(r.halted);
    assert!(
        r.stats.order_violations >= 1,
        "expected an initial violation"
    );
    // 400 iterations but far fewer replays: the predictor learned.
    assert!(
        r.stats.order_violations < 40,
        "store-wait table failed to train: {} replays",
        r.stats.order_violations
    );
}

/// The pipeline trace records a sane lifecycle ordering for every
/// instruction.
#[test]
fn trace_lifecycles_are_ordered() {
    let w = wib::workloads::suite::olden::em3d(64, 4, 2);
    let p = Processor::new(MachineConfig::wib_2k());
    let (result, trace) = p.run_program_traced(w.program(), RunLimit::instructions(5_000), 256);
    assert!(result.stats.committed >= 256);
    assert_eq!(trace.len(), 256);
    let mut prev_commit = 0;
    for r in trace.records() {
        assert!(r.fetch <= r.dispatch, "{}: fetch after dispatch", r.seq);
        assert!(
            r.dispatch <= r.complete,
            "{}: dispatch after complete",
            r.seq
        );
        if let Some(issue) = r.issue {
            assert!(r.dispatch <= issue && issue <= r.complete);
        }
        assert!(r.complete <= r.commit, "{}: complete after commit", r.seq);
        assert!(r.commit >= prev_commit, "commit order must be monotonic");
        prev_commit = r.commit;
    }
    // On this pointer-chasing kernel some instructions must have parked.
    assert!(trace.records().any(|r| r.wib_trips > 0));
}

/// Occupancy histograms distinguish the small window from the WIB window.
#[test]
fn occupancy_statistics_show_the_window_difference() {
    let w = wib::workloads::suite::fp::art(2048, 2, 2);
    let base = Processor::new(MachineConfig::base_8way())
        .run_program(w.program(), RunLimit::instructions(20_000));
    let wib = Processor::new(MachineConfig::wib_2k())
        .run_program(w.program(), RunLimit::instructions(20_000));
    assert!(base.stats.occupancy_window.count() > 0);
    assert!(base.stats.occupancy_window.max() <= 128);
    assert!(
        wib.stats.occupancy_window.mean() > base.stats.occupancy_window.mean(),
        "the WIB machine should keep a deeper window: {} vs {}",
        wib.stats.occupancy_window.mean(),
        base.stats.occupancy_window.mean()
    );
    assert!(
        wib.stats.occupancy_wib.max() > 0,
        "WIB residency never sampled"
    );
}

/// Different commit widths change little on serial code but the machine
/// still co-simulates (exercises the commit-width parameter).
#[test]
fn commit_width_parameter_is_respected() {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 3_000);
    b.label("loop");
    b.addi(R2, R2, 1);
    b.addi(R3, R3, 1);
    b.addi(R4, R4, 1);
    b.addi(R1, R1, -1);
    b.bne(R1, R0, "loop");
    b.halt();
    let p = b.finish().unwrap();
    let mut narrow = MachineConfig::base_8way();
    narrow.commit_width = 1;
    let wide = run(MachineConfig::base_8way(), &p, 20_000);
    let one = run(narrow, &p, 20_000);
    // A 1-wide commit caps IPC at 1.
    assert!(
        one.ipc() <= 1.0 + 1e-9,
        "1-wide commit exceeded IPC 1: {}",
        one.ipc()
    );
    assert!(wide.ipc() > one.ipc());
}

/// Tiny issue queues still work and co-simulate (resource-pressure path).
#[test]
fn minimal_issue_queues_still_work() {
    let w = wib::workloads::suite::int::gzip(2048, 1);
    let mut cfg = MachineConfig::wib_2k();
    cfg.iq_int_size = 4;
    cfg.iq_fp_size = 4;
    let r = run(cfg, w.program(), 10_000);
    assert!(r.stats.committed > 0);
}

/// An instruction fetch queue of one serializes fetch but stays correct.
#[test]
fn single_entry_fetch_queue_works() {
    let w = wib::workloads::suite::olden::treeadd(6, 2);
    let mut cfg = MachineConfig::base_8way();
    cfg.ifq_size = 1;
    cfg.fetch_width = 1;
    cfg.decode_width = 1;
    let r = run(cfg, w.program(), 10_000);
    assert!(r.halted);
    assert!(r.ipc() <= 1.0 + 1e-9);
}
