//! Umbrella crate for the WIB reproduction: re-exports the simulator
//! stack so examples and downstream users need a single dependency.
//!
//! The system reproduces *A Large, Fast Instruction Window for Tolerating
//! Cache Misses* (Lebeck et al., ISCA 2002): an out-of-order core whose
//! issue queue stays small because instructions dependent on load cache
//! misses are parked in a large Waiting Instruction Buffer (WIB) and
//! reinserted when the miss completes.
//!
//! - [`isa`]: instruction set, assembler, reference interpreter.
//! - [`mem`]: caches, TLB, DRAM model, memory hierarchy.
//! - [`bpred`]: branch predictors, BTB, RAS, store-wait table.
//! - [`core`]: the 8-wide out-of-order pipeline and the WIB itself.
//! - [`workloads`]: synthetic stand-ins for the paper's benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use wib::core::{MachineConfig, Processor, RunLimit};
//! use wib::workloads::{suite, Workload};
//!
//! // Build a pointer-chasing workload and run it on the paper's
//! // base machine and on the WIB machine.
//! let program = suite::olden::treeadd(12, 1).build();
//! let base = Processor::new(MachineConfig::base_8way()).run_program(
//!     &program, RunLimit::instructions(20_000));
//! let wib = Processor::new(MachineConfig::wib_2k()).run_program(
//!     &program, RunLimit::instructions(20_000));
//! assert!(wib.ipc() > 0.0 && base.ipc() > 0.0);
//! ```

pub use wib_bpred as bpred;
pub use wib_core as core;
pub use wib_isa as isa;
pub use wib_mem as mem;
pub use wib_workloads as workloads;
