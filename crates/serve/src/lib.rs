//! `wib-serve`: a std-only simulation service.
//!
//! Sweeping the WIB design space means re-running the same cycle-level
//! simulations over and over — and because the simulator is fully
//! deterministic, most of that work is redundant. This crate turns the
//! simulator into a long-running daemon: clients submit jobs over a
//! plain TCP socket as newline-delimited JSON, a bounded queue feeds a
//! persistent worker pool, and every result is stored in a
//! content-addressed cache so a repeated sweep point costs one hash
//! lookup instead of minutes of simulation.
//!
//! The moving parts, each in its own module:
//!
//! * [`queue`] — bounded MPMC job queue; a full queue sheds the
//!   submission with a `retry_after_ms` hint instead of blocking.
//! * [`cache`] — content-addressed result store keyed by the FNV-1a
//!   digest of (workload, canonical machine spec, protocol), persisted
//!   crash-safely (temp + fsync + atomic rename) under
//!   `WIB_RESULTS_DIR`.
//! * [`protocol`] — the NDJSON wire format: request parsing and event
//!   construction. See `docs/serve.md` for the grammar.
//! * [`server`] — the daemon: accept loop, connection reader/writer
//!   threads, panic-isolated worker pool, deadlines and cancellation of
//!   running jobs, graceful drain-and-shutdown.
//! * [`client`] — submit/stats/watch/shutdown helpers plus a `--local`
//!   mode that computes byte-identical result files with no daemon,
//!   which is how the offline gate proves the service changes nothing.
//!   `client::metrics` scrapes the daemon's Prometheus-format
//!   exposition (see `docs/observability.md`).
//! * [`fault`] — deterministic fault injection (`WIB_FAULTS`): seeded
//!   worker panics, torn cache writes, forced sheds, slow/truncated
//!   client writes, whole-node death — how the failure paths above
//!   stay tested.
//! * [`error`] — [`ServeError`], the typed failure vocabulary of the
//!   client-side helpers.
//! * [`ring`] — the consistent-hash ring that shards sweep jobs across
//!   backend nodes by their result-cache digest.
//! * [`coord`] — the sweep coordinator: speaks the same NDJSON protocol
//!   to clients, routes each job to its ring owner, re-routes on node
//!   death, and merges per-node metrics into one cluster exposition.
//!
//! Everything is `std` — no async runtime, no serde — matching the
//! repository's offline-build constraint.

pub mod cache;
pub mod client;
pub mod coord;
pub mod error;
pub mod fault;
pub mod protocol;
pub mod queue;
pub mod ring;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{JobOutcome, JobStatus, SubmitOptions};
pub use coord::{CoordHandle, CoordOptions};
pub use error::ServeError;
pub use fault::{FaultPlan, WriteFault};
pub use protocol::JobRequest;
pub use queue::{BoundedQueue, TryPushError};
pub use ring::HashRing;
pub use server::{compute_result, ServerHandle, ServerOptions};
