//! `wib-serve`: a std-only simulation service.
//!
//! Sweeping the WIB design space means re-running the same cycle-level
//! simulations over and over — and because the simulator is fully
//! deterministic, most of that work is redundant. This crate turns the
//! simulator into a long-running daemon: clients submit jobs over a
//! plain TCP socket as newline-delimited JSON, a bounded queue feeds a
//! persistent worker pool, and every result is stored in a
//! content-addressed cache so a repeated sweep point costs one hash
//! lookup instead of minutes of simulation.
//!
//! The moving parts, each in its own module:
//!
//! * [`queue`] — bounded MPMC job queue; a full queue blocks the
//!   submitting connection (backpressure by TCP flow control).
//! * [`cache`] — content-addressed result store keyed by the FNV-1a
//!   digest of (workload, canonical machine spec, protocol), persisted
//!   under `WIB_RESULTS_DIR`.
//! * [`protocol`] — the NDJSON wire format: request parsing and event
//!   construction. See `docs/serve.md` for the grammar.
//! * [`server`] — the daemon: accept loop, connection reader/writer
//!   threads, worker pool, graceful drain-and-shutdown.
//! * [`client`] — submit/stats/watch/shutdown helpers plus a `--local`
//!   mode that computes byte-identical result files with no daemon,
//!   which is how the offline gate proves the service changes nothing.
//!
//! Everything is `std` — no async runtime, no serde — matching the
//! repository's offline-build constraint.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{JobOutcome, JobStatus};
pub use protocol::JobRequest;
pub use queue::BoundedQueue;
pub use server::{compute_result, ServerHandle, ServerOptions};
