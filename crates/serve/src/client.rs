//! Client helpers for talking to a `wib-serve` daemon — and for doing
//! the same work in-process (`--local`) so the two paths can be
//! byte-compared.
//!
//! [`submit`] (and its configurable form, [`submit_with`]) connects,
//! sends a `submit` batch, and streams events until every job has
//! reached a terminal state, writing each result document to
//! `<out>/<workload>-<digest>.json`. Jobs the daemon **sheds** under
//! overload are resubmitted on the same connection after the server's
//! `retry_after_ms` hint, up to [`SubmitOptions::retries`] times —
//! resubmission is idempotent because a job's identity is its content
//! digest, so a retry that races a completed duplicate simply hits the
//! cache. [`run_local`] resolves and runs the identical batch with no
//! daemon involved and writes files through the same code path;
//! `offline_gate.sh` diffs the two trees to prove the daemon changes
//! nothing about the simulation.
//!
//! Every helper returns [`ServeError`] instead of a bare string, and
//! every socket carries read/write timeouts so a wedged daemon surfaces
//! as [`ServeError::Stalled`] rather than a hung client.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use wib_core::Json;

use crate::error::ServeError;
use crate::protocol::JobRequest;
use crate::server::{build_catalog, compute_result, resolve_job};

/// How often the event loop wakes to check timers while waiting for the
/// daemon (also the granularity of shed-retry sleeps).
const EVENT_TICK: Duration = Duration::from_millis(200);

/// Read budget for one-shot request/response ops (`ping`, `stats`).
const RPC_TIMEOUT: Duration = Duration::from_secs(10);

/// Read budget for `shutdown` — a drain legitimately takes as long as
/// the queued work.
const SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(600);

/// Read budget for `cluster_stats` — the coordinator probes every
/// backend (each at its own RPC budget) before it can answer.
const CLUSTER_TIMEOUT: Duration = Duration::from_secs(60);

/// Minimum backoff before resubmitting a shed job. A shed event with a
/// missing or zero `retry_after_ms` hint must not let the client
/// hot-loop a server that is telling it to go away.
const SHED_RETRY_FLOOR_MS: u64 = 25;

/// Deterministic jitter (`0..=this`) added on top of every shed backoff
/// so a fleet of clients shed together does not re-arrive in lockstep.
const SHED_RETRY_JITTER_MS: u64 = 25;

/// Backoff before resubmitting a shed job: the server's hint floored at
/// [`SHED_RETRY_FLOOR_MS`], plus per-(job, attempt) jitter seeded from
/// those values so the schedule is reproducible.
fn shed_backoff_ms(hint: u64, job_id: u64, attempt: u32) -> u64 {
    let mut rng =
        wib_rng::StdRng::seed_from_u64(job_id ^ u64::from(attempt).wrapping_mul(0x9e37_79b9));
    hint.max(SHED_RETRY_FLOOR_MS) + rng.random_range(0..=SHED_RETRY_JITTER_MS)
}

/// Terminal state of one submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Completed; `cached` says whether the daemon served it from the
    /// result cache.
    Done { cached: bool, result: Json },
    /// The simulation failed server-side (panicked, or its deadline
    /// expired).
    Error(String),
    /// Cancelled (while queued, or mid-run via its cancel token).
    Cancelled,
    /// Never accepted (unknown workload, bad spec, oversized protocol).
    Rejected(String),
    /// Refused by an overloaded daemon more times than the retry
    /// budget allowed; `retry_after_ms` is the server's last hint.
    Shed { retry_after_ms: u64 },
}

/// What became of one job in a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Daemon job id (0 for rejected jobs, which never get one).
    pub job: u64,
    pub workload: String,
    /// Canonical spec (as echoed by the daemon), or the submitted text
    /// for rejected jobs.
    pub spec: String,
    /// Content-address digest (empty for rejected jobs).
    pub digest: String,
    pub status: JobStatus,
}

impl JobOutcome {
    /// True for `Done` in any form.
    pub fn succeeded(&self) -> bool {
        matches!(self.status, JobStatus::Done { .. })
    }
}

/// Knobs for [`submit_with`]. The [`Default`] matches what [`submit`]
/// uses: no protocol overrides, 8 shed-retries, 10-minute idle budget.
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Batch-level measured-instruction override.
    pub insts: Option<u64>,
    /// Batch-level warm-up override.
    pub warmup: Option<u64>,
    /// Batch-level per-job deadline (milliseconds of run wall-clock).
    pub deadline_ms: Option<u64>,
    /// Directory for result files (one per completed job).
    pub out: Option<PathBuf>,
    /// Echo lifecycle events to stderr.
    pub progress: bool,
    /// How many times one job may be resubmitted after a `shed` before
    /// it is reported as [`JobStatus::Shed`]. 0 disables retry.
    pub retries: u32,
    /// Give up ([`ServeError::Stalled`]) after this long with no bytes
    /// from the daemon while work is outstanding.
    pub idle_timeout: Duration,
}

impl Default for SubmitOptions {
    fn default() -> SubmitOptions {
        SubmitOptions {
            insts: None,
            warmup: None,
            deadline_ms: None,
            out: None,
            progress: false,
            retries: 8,
            idle_timeout: Duration::from_secs(600),
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, ServeError> {
    TcpStream::connect(addr).map_err(|e| ServeError::Connect {
        addr: addr.to_string(),
        source: e,
    })
}

/// Connect with a hard deadline. The OS default connect timeout can run
/// to minutes; a peer-cache probe to a dead node must fail in
/// milliseconds so the miss path stays cheap.
fn connect_within(addr: &str, timeout: Duration) -> Result<TcpStream, ServeError> {
    use std::net::ToSocketAddrs;
    let fail = |source| ServeError::Connect {
        addr: addr.to_string(),
        source,
    };
    let mut last = None;
    for sa in addr.to_socket_addrs().map_err(fail)? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(fail(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
    })))
}

fn send_line(stream: &TcpStream, line: &str) -> Result<(), ServeError> {
    let mut w = BufWriter::new(
        stream
            .try_clone()
            .map_err(|e| ServeError::io("clone socket", e))?,
    );
    w.write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .map_err(|e| ServeError::io("send request", e))
}

/// Build one `submit` frame for the given subset of `jobs` (identified
/// by index so retries resend the original per-job parameters).
fn submit_request(jobs: &[JobRequest], subset: &[usize], opts: &SubmitOptions) -> Json {
    let mut arr = Vec::new();
    for &i in subset {
        let j = &jobs[i];
        let mut o = Json::obj()
            .field("workload", j.workload.as_str())
            .field("spec", j.spec.as_str());
        if let Some(n) = j.insts {
            o = o.field("insts", n);
        }
        if let Some(n) = j.warmup {
            o = o.field("warmup", n);
        }
        if let Some(n) = j.deadline_ms {
            o = o.field("deadline_ms", n);
        }
        arr.push(o);
    }
    let mut req = Json::obj().field("op", "submit").field("jobs", arr);
    if let Some(n) = opts.insts {
        req = req.field("insts", n);
    }
    if let Some(n) = opts.warmup {
        req = req.field("warmup", n);
    }
    if let Some(n) = opts.deadline_ms {
        req = req.field("deadline_ms", n);
    }
    req
}

/// Write one finished job's result document under `out`, named by its
/// content address: `<workload>-<digest>.json` (pretty-printed, one
/// trailing newline). Numbers round-trip through the shortest-repr
/// float writer, so a parsed-and-rewritten document is byte-stable.
///
/// # Errors
/// Filesystem errors.
pub fn write_result_file(
    out: &Path,
    workload: &str,
    digest: &str,
    result: &Json,
) -> Result<PathBuf, ServeError> {
    std::fs::create_dir_all(out).map_err(|e| ServeError::io("create output directory", e))?;
    let path = out.join(format!("{workload}-{digest}.json"));
    std::fs::write(&path, result.pretty()).map_err(|e| ServeError::io("write result file", e))?;
    Ok(path)
}

/// A job the client has submitted and not yet seen a terminal event
/// for: original batch index plus the daemon's echo of its identity.
struct InFlight {
    orig: usize,
    workload: String,
    spec: String,
    digest: String,
}

/// [`submit_with`] using the default [`SubmitOptions`] (plus the given
/// overrides) — the signature the CLI and tests use for simple batches.
///
/// # Errors
/// Connection/protocol failures. Per-job failures are *not* errors —
/// they come back as [`JobStatus`] variants.
pub fn submit(
    addr: &str,
    jobs: &[JobRequest],
    insts: Option<u64>,
    warmup: Option<u64>,
    out: Option<&Path>,
    progress: bool,
) -> Result<Vec<JobOutcome>, ServeError> {
    submit_with(
        addr,
        jobs,
        &SubmitOptions {
            insts,
            warmup,
            out: out.map(Path::to_path_buf),
            progress,
            ..SubmitOptions::default()
        },
    )
}

/// Submit a batch to the daemon at `addr` and stream events until every
/// job is terminal, resubmitting shed jobs on the same connection after
/// the server's backoff hint. Outcomes are returned in submission
/// order.
///
/// # Errors
/// Connection/protocol failures (including [`ServeError::Stalled`] when
/// the daemon goes silent). Per-job failures come back as [`JobStatus`]
/// variants, not errors.
pub fn submit_with(
    addr: &str,
    jobs: &[JobRequest],
    opts: &SubmitOptions,
) -> Result<Vec<JobOutcome>, ServeError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let stream = connect(addr)?;
    stream
        .set_read_timeout(Some(EVENT_TICK))
        .map_err(|e| ServeError::io("set read timeout", e))?;
    let _ = stream.set_write_timeout(Some(RPC_TIMEOUT));
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| ServeError::io("clone socket", e))?,
    );

    let mut slots: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    let mut attempts = vec![0u32; jobs.len()];
    // Jobs waiting to go out in the next frame (initially: all of them).
    let mut to_send: Vec<usize> = (0..jobs.len()).collect();
    let mut retry_at = Instant::now();
    // The frame currently on the wire: original indices (for mapping the
    // daemon's frame-relative `index` fields back), jobs not yet
    // acknowledged as queued/rejected, and queued jobs not yet terminal.
    let mut frame: Vec<usize> = Vec::new();
    let mut awaiting_ack = 0usize;
    let mut pending: HashMap<u64, InFlight> = HashMap::new();
    let mut last_heard = Instant::now();
    let mut line = String::new();

    while slots.iter().any(Option::is_none) {
        // Between frames: dispatch the next batch once its backoff is up.
        if awaiting_ack == 0 && pending.is_empty() {
            if to_send.is_empty() {
                // Defensive: nothing in flight, nothing to send, yet a
                // slot is open — a server accounting bug, not a hang.
                return Err(ServeError::Protocol(
                    "event stream ended with unaccounted jobs".to_string(),
                ));
            }
            let now = Instant::now();
            if now < retry_at {
                std::thread::sleep((retry_at - now).min(EVENT_TICK));
                continue;
            }
            frame = std::mem::take(&mut to_send);
            send_line(&stream, &submit_request(jobs, &frame, opts).to_string())?;
            awaiting_ack = frame.len();
            last_heard = Instant::now();
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let outstanding = awaiting_ack + pending.len();
                return Err(ServeError::Server(format!(
                    "server closed the connection with {outstanding} job(s) outstanding"
                )));
            }
            Ok(_) => last_heard = Instant::now(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let idle = last_heard.elapsed();
                if idle >= opts.idle_timeout {
                    return Err(ServeError::Stalled { idle });
                }
                continue;
            }
            Err(e) => return Err(ServeError::io("read event", e)),
        }
        let ev = Json::parse(line.trim())
            .map_err(|e| ServeError::Protocol(format!("bad event line: {e}")))?;
        let kind = ev.get("event").and_then(Json::as_str).unwrap_or("");
        let job_id = ev.get("job").and_then(Json::as_u64).unwrap_or(0);
        let text = |k: &str| {
            ev.get(k)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        match kind {
            "queued" => {
                // A missing index cannot be defaulted: attributing the
                // event to frame slot 0 would cross job identities on
                // retry. Fail loudly instead.
                let Some(index) = ev.get("index").and_then(Json::as_u64) else {
                    return Err(ServeError::Protocol(
                        "queued event is missing its `index` field".to_string(),
                    ));
                };
                let Some(&orig) = frame.get(index as usize) else {
                    continue; // stray echo from a frame we do not own
                };
                let inflight = InFlight {
                    orig,
                    workload: text("workload"),
                    spec: text("spec"),
                    digest: text("digest"),
                };
                if opts.progress {
                    eprintln!(
                        "job {job_id} queued: {} [{}]",
                        inflight.workload, inflight.spec
                    );
                }
                pending.insert(job_id, inflight);
                awaiting_ack = awaiting_ack.saturating_sub(1);
            }
            "rejected" => {
                let Some(index) = ev.get("index").and_then(Json::as_u64) else {
                    return Err(ServeError::Protocol(
                        "rejected event is missing its `index` field".to_string(),
                    ));
                };
                let Some(&orig) = frame.get(index as usize) else {
                    continue;
                };
                let reason = text("reason");
                if opts.progress {
                    eprintln!("job rejected ({}): {reason}", jobs[orig].workload);
                }
                slots[orig] = Some(JobOutcome {
                    job: 0,
                    workload: jobs[orig].workload.clone(),
                    spec: jobs[orig].spec.clone(),
                    digest: String::new(),
                    status: JobStatus::Rejected(reason),
                });
                awaiting_ack = awaiting_ack.saturating_sub(1);
            }
            "shed" => {
                let Some(inflight) = pending.remove(&job_id) else {
                    continue;
                };
                let hint = ev.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0);
                if attempts[inflight.orig] < opts.retries {
                    attempts[inflight.orig] += 1;
                    let wait = shed_backoff_ms(hint, job_id, attempts[inflight.orig]);
                    if opts.progress {
                        eprintln!(
                            "job {job_id} shed ({}): retrying in {wait}ms (attempt {})",
                            inflight.workload, attempts[inflight.orig]
                        );
                    }
                    to_send.push(inflight.orig);
                    let when = Instant::now() + Duration::from_millis(wait);
                    retry_at = retry_at.max(when);
                } else {
                    if opts.progress {
                        eprintln!(
                            "job {job_id} shed ({}): retry budget exhausted",
                            inflight.workload
                        );
                    }
                    slots[inflight.orig] = Some(JobOutcome {
                        job: job_id,
                        workload: inflight.workload,
                        spec: inflight.spec,
                        digest: inflight.digest,
                        status: JobStatus::Shed {
                            retry_after_ms: hint,
                        },
                    });
                }
            }
            "running" => {
                if opts.progress {
                    eprintln!("job {job_id} running");
                }
            }
            "span" => {
                // Tracing record (precedes the terminal event): surface
                // under --progress, otherwise informational only.
                if opts.progress {
                    let stages = ev
                        .get("stages")
                        .and_then(Json::as_arr)
                        .map(|arr| {
                            arr.iter()
                                .map(|s| {
                                    format!(
                                        "{}={}us",
                                        s.get("stage").and_then(Json::as_str).unwrap_or("?"),
                                        s.get("us").and_then(Json::as_u64).unwrap_or(0)
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(" ")
                        })
                        .unwrap_or_default();
                    eprintln!(
                        "job {job_id} span {}: {stages} total={}us",
                        text("span"),
                        ev.get("total_us").and_then(Json::as_u64).unwrap_or(0)
                    );
                }
            }
            "interval" => {
                if opts.progress {
                    let sample = ev.get("sample");
                    let field = |k: &str| {
                        sample
                            .and_then(|s| s.get(k))
                            .map(Json::to_string)
                            .unwrap_or_else(|| "?".into())
                    };
                    eprintln!(
                        "job {job_id} interval @cycle {} ipc={}",
                        field("cycle"),
                        field("ipc")
                    );
                }
            }
            "done" | "error" | "cancelled" => {
                let Some(inflight) = pending.remove(&job_id) else {
                    continue; // stray event for a job we do not own
                };
                let status = match kind {
                    "done" => {
                        let cached = ev.get("cached").and_then(Json::as_bool).unwrap_or(false);
                        let result = ev.get("result").cloned().unwrap_or_else(Json::obj);
                        if let Some(dir) = &opts.out {
                            write_result_file(dir, &inflight.workload, &inflight.digest, &result)?;
                        }
                        if opts.progress {
                            eprintln!("job {job_id} done{}", if cached { " (cached)" } else { "" });
                        }
                        JobStatus::Done { cached, result }
                    }
                    "error" => {
                        let msg = text("message");
                        if opts.progress {
                            eprintln!("job {job_id} failed: {msg}");
                        }
                        JobStatus::Error(msg)
                    }
                    _ => {
                        if opts.progress {
                            eprintln!("job {job_id} cancelled");
                        }
                        JobStatus::Cancelled
                    }
                };
                slots[inflight.orig] = Some(JobOutcome {
                    job: job_id,
                    workload: inflight.workload,
                    spec: inflight.spec,
                    digest: inflight.digest,
                    status,
                });
            }
            "protocol_error" => {
                return Err(ServeError::Protocol(format!(
                    "server rejected the request: {}",
                    text("message")
                )));
            }
            "shutdown" => {
                return Err(ServeError::Server("server shut down mid-batch".to_string()));
            }
            _ => {} // pong/stats/watching/cancel: not expected here, harmless
        }
    }
    Ok(slots.into_iter().flatten().collect())
}

/// Run the same batch entirely in-process (no daemon): identical
/// validation, identical simulation, identical result files. Used by
/// `submit --local` and the gate's byte-identity check.
///
/// # Errors
/// Filesystem errors only; per-job rejections come back as outcomes.
pub fn run_local(
    jobs: &[JobRequest],
    insts: Option<u64>,
    warmup: Option<u64>,
    tiny: bool,
    out: Option<&Path>,
    progress: bool,
) -> Result<Vec<JobOutcome>, ServeError> {
    let catalog = build_catalog(tiny);
    let scale = if tiny { "tiny" } else { "eval" };
    let defaults = crate::server::ServerOptions::default();
    let mut outcomes = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let resolved = resolve_job(
            &catalog,
            job,
            insts,
            warmup,
            defaults.default_insts,
            defaults.default_warmup,
        );
        let (name, cfg, insts, warmup) = match resolved {
            Ok(r) => r,
            Err(reason) => {
                if progress {
                    eprintln!("job rejected ({}): {reason}", job.workload);
                }
                outcomes.push(JobOutcome {
                    job: 0,
                    workload: job.workload.clone(),
                    spec: job.spec.clone(),
                    digest: String::new(),
                    status: JobStatus::Rejected(reason),
                });
                continue;
            }
        };
        let workload = &catalog[&name];
        let digest = crate::cache::ResultCache::key(&name, &cfg, insts, warmup, scale);
        if progress {
            eprintln!("job {} running locally: {name} [{}]", i + 1, cfg.to_spec());
        }
        let result = compute_result(workload, &cfg, insts, warmup, scale);
        if let Some(dir) = out {
            write_result_file(dir, &name, &digest, &result)?;
        }
        outcomes.push(JobOutcome {
            job: (i + 1) as u64,
            workload: name,
            spec: cfg.to_spec(),
            digest,
            status: JobStatus::Done {
                cached: false,
                result,
            },
        });
    }
    Ok(outcomes)
}

/// One-shot request/response helper: send `req`, return the first event
/// line parsed as JSON. Gives up ([`ServeError::Stalled`]) after
/// `budget` with no reply.
fn round_trip(addr: &str, req: &Json, budget: Duration) -> Result<Json, ServeError> {
    round_trip_on(connect(addr)?, req, budget)
}

/// [`round_trip`] over an already-connected socket (so callers can pick
/// their own connect strategy, e.g. [`connect_within`] for peer probes).
fn round_trip_on(stream: TcpStream, req: &Json, budget: Duration) -> Result<Json, ServeError> {
    stream
        .set_read_timeout(Some(EVENT_TICK))
        .map_err(|e| ServeError::io("set read timeout", e))?;
    let _ = stream.set_write_timeout(Some(RPC_TIMEOUT));
    send_line(&stream, &req.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let start = Instant::now();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                return Err(ServeError::Server(
                    "server closed the connection without replying".to_string(),
                ))
            }
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if start.elapsed() >= budget {
                    return Err(ServeError::Stalled {
                        idle: start.elapsed(),
                    });
                }
            }
            Err(e) => return Err(ServeError::io("read reply", e)),
        }
    }
    Json::parse(line.trim()).map_err(ServeError::Protocol)
}

/// Fetch the daemon's introspection document (`{"op":"stats"}`).
///
/// # Errors
/// Connection/protocol failures.
pub fn stats(addr: &str) -> Result<Json, ServeError> {
    round_trip(addr, &Json::obj().field("op", "stats"), RPC_TIMEOUT)
}

/// Scrape the daemon's metrics registry (`{"op":"metrics"}`) and return
/// the Prometheus text exposition.
///
/// # Errors
/// Connection/protocol failures, or a reply that is not a `metrics`
/// event.
pub fn metrics(addr: &str) -> Result<String, ServeError> {
    let reply = round_trip(addr, &Json::obj().field("op", "metrics"), RPC_TIMEOUT)?;
    match reply.get("event").and_then(Json::as_str) {
        Some("metrics") => Ok(reply
            .get("text")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()),
        other => Err(ServeError::Protocol(format!(
            "unexpected metrics reply: {other:?}"
        ))),
    }
}

/// Probe a peer daemon's result cache for `digest`
/// (`{"op":"cache_get"}`) — the cache-peering fast path: a node that
/// misses locally asks its ring neighbors before paying for a
/// simulation. Both the connect and the reply share `budget`, so a dead
/// peer costs milliseconds, not the OS connect timeout.
///
/// Returns the cached result document on a hit, `None` on a miss.
///
/// # Errors
/// Connection/protocol failures.
pub fn cache_fetch(addr: &str, digest: &str, budget: Duration) -> Result<Option<Json>, ServeError> {
    let stream = connect_within(addr, budget)?;
    let req = Json::obj().field("op", "cache_get").field("digest", digest);
    let reply = round_trip_on(stream, &req, budget)?;
    match reply.get("event").and_then(Json::as_str) {
        Some("cache_entry") => {
            if reply.get("found").and_then(Json::as_bool).unwrap_or(false) {
                Ok(reply.get("result").cloned())
            } else {
                Ok(None)
            }
        }
        other => Err(ServeError::Protocol(format!(
            "unexpected cache_get reply: {other:?}"
        ))),
    }
}

/// Install the cache-peering neighbor list on a backend
/// (`{"op":"peers"}`): the addresses it will probe, in order, on a
/// local cache miss before simulating. Replaces any previous list.
///
/// # Errors
/// Connection/protocol failures, or a non-`peers` reply.
pub fn set_peers(addr: &str, peers: &[String]) -> Result<(), ServeError> {
    let arr: Vec<Json> = peers.iter().map(|p| Json::from(p.as_str())).collect();
    let req = Json::obj().field("op", "peers").field("addrs", arr);
    let reply = round_trip(addr, &req, RPC_TIMEOUT)?;
    match reply.get("event").and_then(Json::as_str) {
        Some("peers") => Ok(()),
        other => Err(ServeError::Protocol(format!(
            "unexpected peers reply: {other:?}"
        ))),
    }
}

/// Fetch the coordinator's cluster-wide view (`{"op":"cluster_stats"}`):
/// per-node liveness and stats plus counters aggregated through one
/// merged metrics registry.
///
/// # Errors
/// Connection/protocol failures.
pub fn cluster_stats(addr: &str) -> Result<Json, ServeError> {
    round_trip(
        addr,
        &Json::obj().field("op", "cluster_stats"),
        CLUSTER_TIMEOUT,
    )
}

/// Ask the coordinator at `addr` to add `backend` to its hash ring
/// (`{"op":"join"}`). Returns the coordinator's confirmation event.
///
/// # Errors
/// Connection/protocol failures.
pub fn join(addr: &str, backend: &str) -> Result<Json, ServeError> {
    let req = Json::obj().field("op", "join").field("addr", backend);
    round_trip(addr, &req, RPC_TIMEOUT)
}

/// Liveness probe; returns once the daemon answers `pong`.
///
/// # Errors
/// Connection/protocol failures, or a non-pong reply.
pub fn ping(addr: &str) -> Result<(), ServeError> {
    let reply = round_trip(addr, &Json::obj().field("op", "ping"), RPC_TIMEOUT)?;
    match reply.get("event").and_then(Json::as_str) {
        Some("pong") => Ok(()),
        other => Err(ServeError::Protocol(format!(
            "unexpected ping reply: {other:?}"
        ))),
    }
}

/// Ask the daemon to shut down (`drain`: finish queued work first) and
/// wait for its confirmation event, which is returned. The read budget
/// is generous ([`SHUTDOWN_TIMEOUT`]) because a drain legitimately
/// takes as long as the work still queued.
///
/// # Errors
/// Connection/protocol failures.
pub fn shutdown(addr: &str, drain: bool) -> Result<Json, ServeError> {
    let req = Json::obj()
        .field("op", "shutdown")
        .field("mode", if drain { "drain" } else { "now" });
    round_trip(addr, &req, SHUTDOWN_TIMEOUT)
}

/// Attach as a watcher and stream every event line to `sink` until the
/// daemon shuts down (connection closes). No read timeout: silence is
/// normal for an idle daemon.
///
/// # Errors
/// Connection failures.
pub fn watch(addr: &str, sink: &mut dyn Write) -> Result<(), ServeError> {
    let stream = connect(addr)?;
    send_line(&stream, &Json::obj().field("op", "watch").to_string())?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| ServeError::io("read event", e))?;
        writeln!(sink, "{line}").map_err(|e| ServeError::io("write to sink", e))?;
        let _ = sink.flush();
    }
    Ok(())
}
