//! Client helpers for talking to a `wib-serve` daemon — and for doing
//! the same work in-process (`--local`) so the two paths can be
//! byte-compared.
//!
//! [`submit`] connects, sends one `submit` batch, and streams events
//! until every job has reached a terminal state, writing each result
//! document to `<out>/<workload>-<digest>.json`. [`run_local`] resolves
//! and runs the identical batch with no daemon involved and writes files
//! through the same code path; `offline_gate.sh` diffs the two trees to
//! prove the daemon changes nothing about the simulation.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;

use wib_core::Json;

use crate::protocol::JobRequest;
use crate::server::{build_catalog, compute_result, resolve_job};

/// Terminal state of one submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Completed; `cached` says whether the daemon served it from the
    /// result cache.
    Done { cached: bool, result: Json },
    /// The simulation failed (panicked) server-side.
    Error(String),
    /// Cancelled before it ran.
    Cancelled,
    /// Never accepted (unknown workload, bad spec, oversized protocol).
    Rejected(String),
}

/// What became of one job in a batch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Daemon job id (0 for rejected jobs, which never get one).
    pub job: u64,
    pub workload: String,
    /// Canonical spec (as echoed by the daemon), or the submitted text
    /// for rejected jobs.
    pub spec: String,
    /// Content-address digest (empty for rejected jobs).
    pub digest: String,
    pub status: JobStatus,
}

impl JobOutcome {
    /// True for `Done` in any form.
    pub fn succeeded(&self) -> bool {
        matches!(self.status, JobStatus::Done { .. })
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn send_line(stream: &TcpStream, line: &str) -> Result<(), String> {
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    w.write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .map_err(|e| format!("send: {e}"))
}

fn submit_request(jobs: &[JobRequest], insts: Option<u64>, warmup: Option<u64>) -> Json {
    let mut arr = Vec::new();
    for j in jobs {
        let mut o = Json::obj()
            .field("workload", j.workload.as_str())
            .field("spec", j.spec.as_str());
        if let Some(n) = j.insts {
            o = o.field("insts", n);
        }
        if let Some(n) = j.warmup {
            o = o.field("warmup", n);
        }
        arr.push(o);
    }
    let mut req = Json::obj().field("op", "submit").field("jobs", arr);
    if let Some(n) = insts {
        req = req.field("insts", n);
    }
    if let Some(n) = warmup {
        req = req.field("warmup", n);
    }
    req
}

/// Write one finished job's result document under `out`, named by its
/// content address: `<workload>-<digest>.json` (pretty-printed, one
/// trailing newline). Numbers round-trip through the shortest-repr
/// float writer, so a parsed-and-rewritten document is byte-stable.
///
/// # Errors
/// Filesystem errors, as strings.
pub fn write_result_file(
    out: &Path,
    workload: &str,
    digest: &str,
    result: &Json,
) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let path = out.join(format!("{workload}-{digest}.json"));
    std::fs::write(&path, result.pretty()).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Submit a batch to the daemon at `addr` and stream events until every
/// job is terminal. Results land in `out` when given; `progress` echoes
/// lifecycle events to stderr.
///
/// # Errors
/// Connection/protocol failures. Per-job failures are *not* errors —
/// they come back as [`JobStatus`] variants.
pub fn submit(
    addr: &str,
    jobs: &[JobRequest],
    insts: Option<u64>,
    warmup: Option<u64>,
    out: Option<&Path>,
    progress: bool,
) -> Result<Vec<JobOutcome>, String> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let stream = connect(addr)?;
    send_line(&stream, &submit_request(jobs, insts, warmup).to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    // job id -> (workload, spec, digest) for in-flight jobs.
    let mut pending: HashMap<u64, (String, String, String)> = HashMap::new();
    let mut accounted = 0usize; // queued + rejected seen so far
    let mut line = String::new();
    while accounted < jobs.len() || !pending.is_empty() {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err(format!(
                "server closed the connection with {} job(s) outstanding",
                jobs.len() - accounted + pending.len()
            ));
        }
        let ev = Json::parse(line.trim()).map_err(|e| format!("bad event line: {e}"))?;
        let kind = ev
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let job_id = ev.get("job").and_then(Json::as_u64).unwrap_or(0);
        match kind.as_str() {
            "queued" => {
                let workload = ev
                    .get("workload")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let spec = ev
                    .get("spec")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let digest = ev
                    .get("digest")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                if progress {
                    eprintln!("job {job_id} queued: {workload} [{spec}]");
                }
                pending.insert(job_id, (workload, spec, digest));
                accounted += 1;
            }
            "rejected" => {
                let index = ev.get("index").and_then(Json::as_u64).unwrap_or(0) as usize;
                let reason = ev
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("rejected")
                    .to_string();
                let (workload, spec) = jobs
                    .get(index)
                    .map(|j| (j.workload.clone(), j.spec.clone()))
                    .unwrap_or_else(|| ("?".to_string(), String::new()));
                if progress {
                    eprintln!("job rejected ({workload}): {reason}");
                }
                outcomes.push(JobOutcome {
                    job: 0,
                    workload,
                    spec,
                    digest: String::new(),
                    status: JobStatus::Rejected(reason),
                });
                accounted += 1;
            }
            "running" => {
                if progress {
                    eprintln!("job {job_id} running");
                }
            }
            "interval" => {
                if progress {
                    let sample = ev.get("sample");
                    let field = |k: &str| {
                        sample
                            .and_then(|s| s.get(k))
                            .map(Json::to_string)
                            .unwrap_or_else(|| "?".into())
                    };
                    eprintln!(
                        "job {job_id} interval @cycle {} ipc={}",
                        field("cycle"),
                        field("ipc")
                    );
                }
            }
            "done" | "error" | "cancelled" => {
                let Some((workload, spec, digest)) = pending.remove(&job_id) else {
                    continue; // stray event for a job we do not own
                };
                let status = match kind.as_str() {
                    "done" => {
                        let cached = ev.get("cached").and_then(Json::as_bool).unwrap_or(false);
                        let result = ev.get("result").cloned().unwrap_or_else(Json::obj);
                        if let Some(dir) = out {
                            write_result_file(dir, &workload, &digest, &result)?;
                        }
                        if progress {
                            eprintln!("job {job_id} done{}", if cached { " (cached)" } else { "" });
                        }
                        JobStatus::Done { cached, result }
                    }
                    "error" => {
                        let msg = ev
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("error")
                            .to_string();
                        if progress {
                            eprintln!("job {job_id} failed: {msg}");
                        }
                        JobStatus::Error(msg)
                    }
                    _ => {
                        if progress {
                            eprintln!("job {job_id} cancelled");
                        }
                        JobStatus::Cancelled
                    }
                };
                outcomes.push(JobOutcome {
                    job: job_id,
                    workload,
                    spec,
                    digest,
                    status,
                });
            }
            "protocol-error" => {
                let msg = ev
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("protocol error");
                return Err(format!("server rejected the request: {msg}"));
            }
            "shutdown" => {
                return Err("server shut down mid-batch".to_string());
            }
            _ => {} // pong/stats/watching: not expected here, harmless
        }
    }
    Ok(outcomes)
}

/// Run the same batch entirely in-process (no daemon): identical
/// validation, identical simulation, identical result files. Used by
/// `submit --local` and the gate's byte-identity check.
///
/// # Errors
/// Filesystem errors only; per-job rejections come back as outcomes.
pub fn run_local(
    jobs: &[JobRequest],
    insts: Option<u64>,
    warmup: Option<u64>,
    tiny: bool,
    out: Option<&Path>,
    progress: bool,
) -> Result<Vec<JobOutcome>, String> {
    let catalog = build_catalog(tiny);
    let scale = if tiny { "tiny" } else { "eval" };
    let defaults = crate::server::ServerOptions::default();
    let mut outcomes = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        let resolved = resolve_job(
            &catalog,
            job,
            insts,
            warmup,
            defaults.default_insts,
            defaults.default_warmup,
        );
        let (name, cfg, insts, warmup) = match resolved {
            Ok(r) => r,
            Err(reason) => {
                if progress {
                    eprintln!("job rejected ({}): {reason}", job.workload);
                }
                outcomes.push(JobOutcome {
                    job: 0,
                    workload: job.workload.clone(),
                    spec: job.spec.clone(),
                    digest: String::new(),
                    status: JobStatus::Rejected(reason),
                });
                continue;
            }
        };
        let workload = &catalog[&name];
        let digest = crate::cache::ResultCache::key(&name, &cfg, insts, warmup, scale);
        if progress {
            eprintln!("job {} running locally: {name} [{}]", i + 1, cfg.to_spec());
        }
        let result = compute_result(workload, &cfg, insts, warmup, scale);
        if let Some(dir) = out {
            write_result_file(dir, &name, &digest, &result)?;
        }
        outcomes.push(JobOutcome {
            job: (i + 1) as u64,
            workload: name,
            spec: cfg.to_spec(),
            digest,
            status: JobStatus::Done {
                cached: false,
                result,
            },
        });
    }
    Ok(outcomes)
}

/// One-shot request/response helper: send `req`, return the first event
/// line parsed as JSON.
fn round_trip(addr: &str, req: &Json) -> Result<Json, String> {
    let stream = connect(addr)?;
    send_line(&stream, &req.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection without replying".to_string());
    }
    Json::parse(line.trim())
}

/// Fetch the daemon's introspection document (`{"op":"stats"}`).
///
/// # Errors
/// Connection/protocol failures.
pub fn stats(addr: &str) -> Result<Json, String> {
    round_trip(addr, &Json::obj().field("op", "stats"))
}

/// Liveness probe; returns once the daemon answers `pong`.
///
/// # Errors
/// Connection/protocol failures, or a non-pong reply.
pub fn ping(addr: &str) -> Result<(), String> {
    let reply = round_trip(addr, &Json::obj().field("op", "ping"))?;
    match reply.get("event").and_then(Json::as_str) {
        Some("pong") => Ok(()),
        other => Err(format!("unexpected ping reply: {other:?}")),
    }
}

/// Ask the daemon to shut down (`drain`: finish queued work first) and
/// wait for its confirmation event, which is returned.
///
/// # Errors
/// Connection/protocol failures.
pub fn shutdown(addr: &str, drain: bool) -> Result<Json, String> {
    let req = Json::obj()
        .field("op", "shutdown")
        .field("mode", if drain { "drain" } else { "now" });
    round_trip(addr, &req)
}

/// Attach as a watcher and stream every event line to `sink` until the
/// daemon shuts down (connection closes).
///
/// # Errors
/// Connection failures.
pub fn watch(addr: &str, sink: &mut dyn Write) -> Result<(), String> {
    let stream = connect(addr)?;
    send_line(&stream, &Json::obj().field("op", "watch").to_string())?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        writeln!(sink, "{line}").map_err(|e| format!("write: {e}"))?;
        let _ = sink.flush();
    }
    Ok(())
}
