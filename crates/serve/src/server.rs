//! The simulation daemon.
//!
//! One listener thread accepts TCP connections; each connection gets a
//! reader thread (parsing NDJSON requests) and a writer thread (draining
//! an mpsc channel of event lines to the socket, so workers can stream
//! into any number of connections without contending on I/O). Jobs flow
//! through a [`BoundedQueue`] into a persistent worker pool sized like
//! the sweep harnesses' pool (`WIB_THREADS` /
//! [`wib_bench::parallel::worker_threads`]); every worker owns its
//! `Processor` per job, exactly as in `parallel_map_named`, so results
//! are bit-identical to in-process runs.
//!
//! Shutdown (`{"op":"shutdown"}`) is a drain: the queue closes, workers
//! finish what is queued (or skip it, in `"now"` mode), the accept loop
//! is woken and exits, every connection thread is joined, and only then
//! does the requesting client receive its `shutdown` event — the daemon
//! leaks no threads.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use wib_bench::parallel::worker_threads;
use wib_bench::Runner;
use wib_core::{Json, MachineConfig, RunResult};
use wib_workloads::{eval_suite, test_suite, Workload};

use crate::cache::ResultCache;
use crate::protocol::{self, JobRequest, Request, MAX_INSTS};
use crate::queue::BoundedQueue;

/// How often a blocked connection reader wakes to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(100);

/// Interval events streamed per job before truncation (the full series
/// is always in the result document; streaming is a progress feed).
const MAX_STREAMED_INTERVALS: usize = 64;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker pool size (0 = the sweep pool default, `WIB_THREADS`).
    pub workers: usize,
    /// Bounded job-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Serve the miniature test suite instead of the eval suite.
    pub tiny: bool,
    /// Root for result-cache persistence (`<dir>/cache/*.json`).
    pub results_dir: Option<PathBuf>,
    /// Default measured instructions when a job names none.
    pub default_insts: u64,
    /// Default warm-up instructions when a job names none.
    pub default_warmup: u64,
    /// Suppress stderr logging.
    pub quiet: bool,
    /// File to write the bound address into once listening (for
    /// scripts driving an ephemeral port).
    pub port_file: Option<PathBuf>,
}

impl Default for ServerOptions {
    /// Loopback ephemeral port, pool-sized workers, protocol defaults
    /// from the environment (`WIB_INSTS`/`WIB_WARMUP`/`WIB_QUICK`),
    /// persistence from `WIB_RESULTS_DIR`.
    fn default() -> ServerOptions {
        let runner = Runner::from_env();
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 1024,
            tiny: false,
            results_dir: std::env::var_os("WIB_RESULTS_DIR").map(PathBuf::from),
            default_insts: runner.insts,
            default_warmup: runner.warmup,
            quiet: false,
            port_file: None,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "error",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct Job {
    workload: String,
    key: String,
    cfg: MachineConfig,
    insts: u64,
    warmup: u64,
    state: JobState,
    cancelled: bool,
    /// Event channel back to the submitting connection; dropped at the
    /// terminal event so writer threads can exit.
    sender: Option<Sender<String>>,
}

struct Shared {
    opts: ServerOptions,
    catalog: HashMap<String, Workload>,
    scale: &'static str,
    cache: ResultCache,
    queue: BoundedQueue<u64>,
    jobs: Mutex<HashMap<u64, Job>>,
    next_job: AtomicU64,
    busy: AtomicUsize,
    workers: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    watchers: Mutex<Vec<Sender<String>>>,
    shutting_down: AtomicBool,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    bound: SocketAddr,
}

impl Shared {
    fn log(&self, msg: &str) {
        if !self.opts.quiet {
            eprintln!("wib-serve: {msg}");
        }
    }

    /// Send `ev` to the job's own connection (if still attached) and to
    /// every watcher. Dead channels are pruned lazily.
    fn publish(&self, own: Option<&Sender<String>>, ev: &Json) {
        let line = ev.to_string();
        if let Some(tx) = own {
            let _ = tx.send(line.clone());
        }
        let mut watchers = self.watchers.lock().unwrap();
        watchers.retain(|w| w.send(line.clone()).is_ok());
    }

    fn is_finished(&self) -> bool {
        *self.finished.lock().unwrap()
    }

    fn mark_finished(&self) {
        *self.finished.lock().unwrap() = true;
        self.finished_cv.notify_all();
    }

    fn wait_finished(&self) {
        let mut done = self.finished.lock().unwrap();
        while !*done {
            done = self.finished_cv.wait(done).unwrap();
        }
    }

    /// The introspection snapshot (`{"op":"stats"}`).
    fn stats_json(&self) -> Json {
        Json::obj()
            .field("event", "stats")
            .field("schema", "wib-serve/stats-v1")
            .field("addr", self.bound.to_string())
            .field("scale", self.scale)
            .field("workers", self.workers)
            .field("busy_workers", self.busy.load(Ordering::Relaxed))
            .field("queue_depth", self.queue.len())
            .field("queue_capacity", self.opts.queue_capacity)
            .field("draining", self.shutting_down.load(Ordering::Relaxed))
            .field("submitted", self.submitted.load(Ordering::Relaxed))
            .field("completed", self.completed.load(Ordering::Relaxed))
            .field("errors", self.errors.load(Ordering::Relaxed))
            .field("cancelled", self.cancelled.load(Ordering::Relaxed))
            .field("cache", self.cache.stats().to_json())
    }

    /// Flip into shutdown: in non-drain mode flag every queued job
    /// cancelled first, then close the queue and wake the accept loop.
    fn begin_shutdown(&self, drain: bool) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return; // second shutdown request: idempotent
        }
        self.log(if drain {
            "shutdown requested (drain)"
        } else {
            "shutdown requested (now)"
        });
        if !drain {
            let mut jobs = self.jobs.lock().unwrap();
            for job in jobs.values_mut() {
                if job.state == JobState::Queued {
                    job.cancelled = true;
                }
            }
        }
        self.queue.close();
        // Unblock the accept loop so it can observe the flag.
        let _ = TcpStream::connect(self.bound);
    }
}

/// A running daemon spawned with [`spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown locally (equivalent to the `shutdown` op).
    pub fn shutdown(&self, drain: bool) {
        self.shared.begin_shutdown(drain);
    }

    /// Block until the daemon has fully stopped (all threads joined).
    pub fn join(self) {
        self.thread.join().expect("server thread panicked");
    }
}

/// Build the deterministic result document for one completed run.
///
/// Everything in here is a pure function of the job identity — no wall
/// clock, no hostname — which is what makes daemon results byte-
/// comparable with local runs and cacheable by content address.
pub fn result_doc(
    workload: &Workload,
    cfg: &MachineConfig,
    insts: u64,
    warmup: u64,
    scale: &str,
    r: &RunResult,
) -> Json {
    Json::obj()
        .field("schema", "wib-serve/result-v1")
        .field("workload", workload.name())
        .field("suite", workload.suite().to_string())
        .field("scale", scale)
        .field("spec", cfg.to_spec())
        .field(
            "digest",
            ResultCache::key(workload.name(), cfg, insts, warmup, scale),
        )
        .field("insts", insts)
        .field("warmup", warmup)
        .field("halted", r.halted)
        .field("ipc", r.ipc())
        .field("stats", r.stats.to_json())
}

/// Run one job in-process and return its result document — the exact
/// computation a daemon worker performs on a cache miss. The `submit
/// --local` client path uses this for byte-identical comparisons.
pub fn compute_result(
    workload: &Workload,
    cfg: &MachineConfig,
    insts: u64,
    warmup: u64,
    scale: &str,
) -> Json {
    let runner = Runner { warmup, insts };
    let r = runner.run(cfg, workload);
    result_doc(workload, cfg, insts, warmup, scale, &r)
}

/// Validate one submitted job against a workload catalog and resolve its
/// protocol parameters. Returns `(workload name, config, insts, warmup)`.
///
/// # Errors
/// A reason string suitable for a `rejected` event.
pub fn resolve_job(
    catalog: &HashMap<String, Workload>,
    job: &JobRequest,
    batch_insts: Option<u64>,
    batch_warmup: Option<u64>,
    default_insts: u64,
    default_warmup: u64,
) -> Result<(String, MachineConfig, u64, u64), String> {
    if !catalog.contains_key(&job.workload) {
        return Err(format!(
            "unknown workload {:?} (see `wib-sim workloads`)",
            job.workload
        ));
    }
    let cfg = protocol::parse_machine_spec(&job.spec)?;
    let insts = job.insts.or(batch_insts).unwrap_or(default_insts);
    let warmup = job.warmup.or(batch_warmup).unwrap_or(default_warmup);
    if insts == 0 {
        return Err("insts must be at least 1".to_string());
    }
    if insts > MAX_INSTS || warmup > MAX_INSTS {
        return Err(format!("insts/warmup capped at {MAX_INSTS}"));
    }
    Ok((job.workload.clone(), cfg, insts, warmup))
}

/// The workload catalog a daemon serves (name -> built program).
pub fn build_catalog(tiny: bool) -> HashMap<String, Workload> {
    let suite = if tiny { test_suite() } else { eval_suite() };
    suite
        .into_iter()
        .map(|w| (w.name().to_string(), w))
        .collect()
}

/// Bind and start a daemon in background threads.
///
/// # Errors
/// Socket binding / port-file errors.
pub fn spawn(opts: ServerOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let bound = listener.local_addr()?;
    if let Some(path) = &opts.port_file {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, format!("{bound}\n"))?;
    }
    let workers = if opts.workers == 0 {
        worker_threads()
    } else {
        opts.workers
    };
    let shared = Arc::new(Shared {
        catalog: build_catalog(opts.tiny),
        scale: if opts.tiny { "tiny" } else { "eval" },
        cache: ResultCache::new(opts.results_dir.clone()),
        queue: BoundedQueue::new(opts.queue_capacity),
        jobs: Mutex::new(HashMap::new()),
        next_job: AtomicU64::new(1),
        busy: AtomicUsize::new(0),
        workers,
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        cancelled: AtomicU64::new(0),
        watchers: Mutex::new(Vec::new()),
        shutting_down: AtomicBool::new(false),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
        bound,
        opts,
    });
    shared.log(&format!(
        "listening on {bound} ({} workers, {} catalog programs, {} suite)",
        workers,
        shared.catalog.len(),
        shared.scale
    ));
    let run_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("wib-serve-accept".to_string())
        .spawn(move || run_loop(run_shared, listener))?;
    Ok(ServerHandle {
        addr: bound,
        thread,
        shared,
    })
}

/// Bind and run a daemon on the calling thread (the CLI `serve` path).
/// Prints the listening address to stdout so callers on ephemeral ports
/// can find it. Returns after a client-requested shutdown completes.
///
/// # Errors
/// Socket binding / port-file errors.
pub fn run(opts: ServerOptions) -> std::io::Result<()> {
    let handle = spawn(opts)?;
    println!("wib-serve listening on {}", handle.addr());
    // Line-buffered stdout under a pipe would hold this back forever.
    std::io::stdout().flush()?;
    handle.join();
    Ok(())
}

fn run_loop(shared: Arc<Shared>, listener: TcpListener) {
    let worker_handles: Vec<_> = (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("wib-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("wib-serve-conn".to_string())
                    .spawn(move || handle_conn(shared, stream))
                    .expect("spawn connection thread");
                conn_handles.push(h);
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
            }
        }
    }
    drop(listener);
    for h in worker_handles {
        h.join().expect("worker thread panicked");
    }
    // Tell watchers the daemon is gone, then drop their channels so
    // connection writer threads can exit.
    let farewell = Json::obj()
        .field("event", "shutdown")
        .field("completed", shared.completed.load(Ordering::Relaxed))
        .field("errors", shared.errors.load(Ordering::Relaxed))
        .field("cancelled", shared.cancelled.load(Ordering::Relaxed));
    shared.publish(None, &farewell);
    shared.watchers.lock().unwrap().clear();
    // Unblock any connection reader (including the one that requested
    // the shutdown, waiting in `wait_finished`).
    shared.mark_finished();
    for h in conn_handles {
        h.join().expect("connection thread panicked");
    }
    shared.log("stopped");
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        let (tx, workload_name, cfg, insts, warmup, key, was_cancelled) = {
            let mut jobs = shared.jobs.lock().unwrap();
            let job = jobs.get_mut(&id).expect("queued job exists");
            if job.cancelled {
                job.state = JobState::Cancelled;
                let tx = job.sender.take();
                (tx, String::new(), None, 0, 0, String::new(), true)
            } else {
                job.state = JobState::Running;
                (
                    job.sender.clone(),
                    job.workload.clone(),
                    Some(job.cfg.clone()),
                    job.insts,
                    job.warmup,
                    job.key.clone(),
                    false,
                )
            }
        };
        if was_cancelled {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.publish(tx.as_ref(), &protocol::ev_cancelled(id));
            continue;
        }
        shared.busy.fetch_add(1, Ordering::Relaxed);
        shared.publish(tx.as_ref(), &protocol::ev_running(id));
        let cfg = cfg.expect("running job has a config");
        let workload = shared
            .catalog
            .get(&workload_name)
            .expect("validated workload exists");
        let outcome = if let Some(doc) = shared.cache.get(&key) {
            Ok((Json::parse(&doc).expect("cached documents parse"), true))
        } else {
            let computed = catch_unwind(AssertUnwindSafe(|| {
                let runner = Runner { warmup, insts };
                let r = runner.run(&cfg, workload);
                let doc = result_doc(workload, &cfg, insts, warmup, shared.scale, &r);
                (doc, r)
            }));
            match computed {
                Ok((doc, r)) => {
                    for sample in r.stats.intervals.iter().take(MAX_STREAMED_INTERVALS) {
                        shared.publish(tx.as_ref(), &protocol::ev_interval(id, sample));
                    }
                    shared.cache.put(&key, doc.to_string());
                    Ok((doc, false))
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(format!("simulation panicked: {msg}"))
                }
            }
        };
        let terminal = {
            let mut jobs = shared.jobs.lock().unwrap();
            let job = jobs.get_mut(&id).expect("running job exists");
            job.sender = None;
            match &outcome {
                Ok(_) => job.state = JobState::Done,
                Err(_) => job.state = JobState::Failed,
            }
            job.state
        };
        match outcome {
            Ok((doc, cached)) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                shared.log(&format!(
                    "job {id} {workload_name} done{}",
                    if cached { " (cached)" } else { "" }
                ));
                shared.publish(tx.as_ref(), &protocol::ev_done(id, cached, doc));
            }
            Err(msg) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shared.log(&format!("job {id} {workload_name} failed: {msg}"));
                shared.publish(tx.as_ref(), &protocol::ev_error(id, &msg));
            }
        }
        debug_assert_ne!(terminal, JobState::Queued);
        shared.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_conn(shared: Arc<Shared>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("wib-serve-writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(line) = rx.recv() {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn writer thread");
    let mut reader = BufReader::new(stream);
    let mut acc = String::new();
    loop {
        if shared.is_finished() {
            break;
        }
        match reader.read_line(&mut acc) {
            Ok(0) => break,
            Ok(_) => {
                if !acc.ends_with('\n') {
                    continue; // partial line before EOF; next read returns 0
                }
                let line = acc.trim().to_string();
                acc.clear();
                if line.is_empty() {
                    continue;
                }
                if dispatch(&shared, &tx, &line) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    shared.log(&format!("connection {peer} closed"));
    drop(tx);
    let _ = writer.join();
}

/// Handle one request line; returns `true` when the connection should
/// close (after a shutdown request completes).
fn dispatch(shared: &Arc<Shared>, tx: &Sender<String>, line: &str) -> bool {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(protocol::ev_protocol_error(&e).to_string());
            return false;
        }
    };
    match request {
        Request::Ping => {
            let _ = tx.send(Json::obj().field("event", "pong").to_string());
        }
        Request::Stats => {
            let _ = tx.send(shared.stats_json().to_string());
        }
        Request::Watch => {
            shared.watchers.lock().unwrap().push(tx.clone());
            let _ = tx.send(Json::obj().field("event", "watching").to_string());
        }
        Request::Cancel { job } => {
            let mut jobs = shared.jobs.lock().unwrap();
            let (ok, state) = match jobs.get_mut(&job) {
                Some(j) if j.state == JobState::Queued && !j.cancelled => {
                    j.cancelled = true;
                    (true, "queued")
                }
                Some(j) => (false, j.state.name()),
                None => (false, "unknown"),
            };
            let _ = tx.send(
                Json::obj()
                    .field("event", "cancel")
                    .field("job", job)
                    .field("ok", ok)
                    .field("state", state)
                    .to_string(),
            );
        }
        Request::Submit {
            jobs,
            insts,
            warmup,
        } => {
            submit_batch(shared, tx, &jobs, insts, warmup);
        }
        Request::Shutdown { drain } => {
            shared.begin_shutdown(drain);
            // Wait for the full drain-and-join, then confirm and close.
            shared.wait_finished();
            let _ = tx.send(
                Json::obj()
                    .field("event", "shutdown")
                    .field("completed", shared.completed.load(Ordering::Relaxed))
                    .field("errors", shared.errors.load(Ordering::Relaxed))
                    .field("cancelled", shared.cancelled.load(Ordering::Relaxed))
                    .to_string(),
            );
            return true;
        }
    }
    false
}

fn submit_batch(
    shared: &Arc<Shared>,
    tx: &Sender<String>,
    jobs: &[JobRequest],
    batch_insts: Option<u64>,
    batch_warmup: Option<u64>,
) {
    for (index, job) in jobs.iter().enumerate() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = tx.send(
                protocol::ev_rejected(index, &job.workload, "server is shutting down").to_string(),
            );
            continue;
        }
        let resolved = resolve_job(
            &shared.catalog,
            job,
            batch_insts,
            batch_warmup,
            shared.opts.default_insts,
            shared.opts.default_warmup,
        );
        let (workload, cfg, insts, warmup) = match resolved {
            Ok(r) => r,
            Err(reason) => {
                let _ = tx.send(protocol::ev_rejected(index, &job.workload, &reason).to_string());
                continue;
            }
        };
        let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
        let spec = cfg.to_spec();
        let key = ResultCache::key(&workload, &cfg, insts, warmup, shared.scale);
        shared.jobs.lock().unwrap().insert(
            id,
            Job {
                workload: workload.clone(),
                key: key.clone(),
                cfg,
                insts,
                warmup,
                state: JobState::Queued,
                cancelled: false,
                sender: Some(tx.clone()),
            },
        );
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        shared.publish(Some(tx), &protocol::ev_queued(id, &workload, &spec, &key));
        // This is the backpressure point: a full queue blocks this
        // connection's reader until workers catch up.
        if shared.queue.push(id).is_err() {
            let mut jobs_map = shared.jobs.lock().unwrap();
            if let Some(j) = jobs_map.get_mut(&id) {
                j.state = JobState::Cancelled;
                j.sender = None;
            }
            drop(jobs_map);
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.publish(Some(tx), &protocol::ev_cancelled(id));
        }
    }
}
