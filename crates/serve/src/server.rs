//! The simulation daemon.
//!
//! One listener thread accepts TCP connections; each connection gets a
//! reader thread (parsing NDJSON requests) and a writer thread (draining
//! an mpsc channel of event lines to the socket, so workers can stream
//! into any number of connections without contending on I/O). Jobs flow
//! through a [`BoundedQueue`] into a persistent worker pool sized like
//! the sweep harnesses' pool (`WIB_THREADS` /
//! [`wib_bench::parallel::worker_threads`]); every worker owns its
//! `Processor` per job, exactly as in `parallel_map_named`, so results
//! are bit-identical to in-process runs.
//!
//! # Failure containment
//!
//! The daemon assumes any individual job, connection, or disk write can
//! fail and none of them may take the service down:
//!
//! * every simulation runs under `catch_unwind`; a panic becomes a
//!   terminal `error` event carrying the job's spec digest, and the
//!   worker moves on to the next job. A panic *outside* that shield
//!   (bookkeeping bugs) recycles the whole worker thread, up to
//!   [`MAX_WORKER_RESTARTS`] times.
//! * jobs may carry a `deadline_ms`; the engine polls a cooperative
//!   [`CancelToken`] once per stats epoch, so an expired or cancelled
//!   *running* job terminates within one epoch.
//! * a full queue **sheds** the submission (terminal `shed` event with a
//!   jittered, escalating `retry_after_ms`) instead of blocking the
//!   connection thread.
//! * all of the above injection points are drivable deterministically
//!   via `WIB_FAULTS` (see [`crate::fault`]).
//!
//! Shutdown (`{"op":"shutdown"}`) is a drain: the queue closes, workers
//! finish what is queued (or skip it, in `"now"` mode — which also trips
//! the cancel token of every running job), the accept loop is woken and
//! exits, every connection thread is joined, and only then does the
//! requesting client receive its `shutdown` event — the daemon leaks no
//! threads.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use wib_bench::parallel::worker_threads;
use wib_bench::Runner;
use wib_core::{
    CancelToken, Counter, Gauge, HistogramMetric, Json, MachineConfig, Processor, Registry,
    RunLimit, RunResult, StageProfile, STAGE_COUNT, STAGE_NAMES,
};
use wib_workloads::{eval_suite, test_suite, Workload};

use crate::cache::ResultCache;
use crate::fault::{FaultPlan, WriteFault};
use crate::protocol::{self, JobRequest, Request, MAX_INSTS};
use crate::queue::{BoundedQueue, TryPushError};

/// How often a blocked connection reader wakes to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(100);

/// Interval events streamed per job before truncation (the full series
/// is always in the result document; streaming is a progress feed).
const MAX_STREAMED_INTERVALS: usize = 64;

/// Per-connection socket write budget: a peer that accepts no bytes for
/// this long is treated as gone and its writer thread exits.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// How many times a worker thread is restarted after a panic that
/// escaped per-job isolation before the daemon gives up on that slot.
/// High enough to never matter in practice, low enough to stop a
/// pathological panic loop from spinning forever.
const MAX_WORKER_RESTARTS: u64 = 1000;

/// Shed-backoff shape: base delay, doubling per consecutive shed, cap,
/// plus jitter in `[0, SHED_JITTER_MS]`.
const SHED_BASE_MS: u64 = 25;
const SHED_CAP_MS: u64 = 2000;
const SHED_JITTER_MS: u64 = 25;

/// Connect-plus-reply budget for one peer-cache probe. Small on
/// purpose: the probe races a simulation worth seconds-to-minutes, but
/// a dead peer must not stall the miss path.
const PEER_BUDGET: Duration = Duration::from_millis(1500);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker pool size (0 = the sweep pool default, `WIB_THREADS`).
    pub workers: usize,
    /// Bounded job-queue capacity (the overload-shedding threshold).
    pub queue_capacity: usize,
    /// Serve the miniature test suite instead of the eval suite.
    pub tiny: bool,
    /// Root for result-cache persistence (`<dir>/cache/*.json`).
    pub results_dir: Option<PathBuf>,
    /// Default measured instructions when a job names none.
    pub default_insts: u64,
    /// Default warm-up instructions when a job names none.
    pub default_warmup: u64,
    /// Suppress stderr logging.
    pub quiet: bool,
    /// File to write the bound address into once listening (for
    /// scripts driving an ephemeral port).
    pub port_file: Option<PathBuf>,
    /// Fault-injection spec (see [`crate::fault`]); falls back to the
    /// `WIB_FAULTS` environment variable when `None`.
    pub faults: Option<String>,
}

impl Default for ServerOptions {
    /// Loopback ephemeral port, pool-sized workers, protocol defaults
    /// from the environment (`WIB_INSTS`/`WIB_WARMUP`/`WIB_QUICK`),
    /// persistence from `WIB_RESULTS_DIR`, faults from `WIB_FAULTS`.
    fn default() -> ServerOptions {
        let runner = Runner::from_env();
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 1024,
            tiny: false,
            results_dir: std::env::var_os("WIB_RESULTS_DIR").map(PathBuf::from),
            default_insts: runner.insts,
            default_warmup: runner.warmup,
            quiet: false,
            port_file: None,
            faults: None,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "error",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct Job {
    workload: String,
    key: String,
    cfg: MachineConfig,
    insts: u64,
    warmup: u64,
    /// Tracing span id minted at submit; every event of this job's
    /// `span` record carries it.
    span: String,
    /// Queue-entry timestamp: the zero point of the span's stage marks.
    queued_at: Instant,
    /// Wall-clock budget, armed when a worker picks the job up.
    deadline_ms: Option<u64>,
    state: JobState,
    cancelled: bool,
    /// Present while the job is running: tripping it stops the engine at
    /// the next epoch boundary. Created under the jobs lock at pickup,
    /// so a cancel request can never race past it.
    token: Option<CancelToken>,
    /// Event channel back to the submitting connection; dropped at the
    /// terminal event so writer threads can exit.
    sender: Option<Sender<String>>,
}

/// RAII decrement of the busy-worker gauge; `Drop` keeps it accurate
/// even if job bookkeeping panics.
struct BusyGuard<'a>(&'a AtomicUsize);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// How one job attempt ended (internal to the worker).
enum Outcome {
    Done { doc: Json, cached: bool },
    Cancelled,
    Failed(String),
}

/// Registry-backed telemetry: scrape-time gauges, the job latency
/// histograms, and the engine self-profiling rollup. The job outcome
/// counters live directly on [`Shared`] as [`Counter`] handles — the
/// same cells feed `stats_json` and the exposition.
struct Telemetry {
    registry: Registry,
    started: Instant,
    queue_depth: Gauge,
    queue_capacity: Gauge,
    busy_workers: Gauge,
    worker_count: Gauge,
    watcher_count: Gauge,
    uptime_ms: Gauge,
    /// Microseconds from queue entry to worker pickup.
    queue_wait_us: HistogramMetric,
    /// Microseconds simulating (cache misses only).
    run_us: HistogramMetric,
    /// Microseconds spent in the cache lookup on a hit.
    cache_hit_us: HistogramMetric,
    /// Engine stage-profile rollup across every simulated job.
    profiled_cycles: Counter,
    stage_ns: [Counter; STAGE_COUNT],
}

impl Telemetry {
    fn new(registry: Registry) -> Telemetry {
        Telemetry {
            started: Instant::now(),
            queue_depth: registry.gauge(
                "wib_serve_queue_depth",
                "Jobs waiting in the bounded queue.",
            ),
            queue_capacity: registry.gauge(
                "wib_serve_queue_capacity",
                "Bounded queue capacity (the shed threshold).",
            ),
            busy_workers: registry.gauge(
                "wib_serve_busy_workers",
                "Workers currently executing a job.",
            ),
            worker_count: registry.gauge("wib_serve_workers", "Worker pool size."),
            watcher_count: registry.gauge(
                "wib_serve_watchers",
                "Connections subscribed to all job events.",
            ),
            uptime_ms: registry.gauge(
                "wib_serve_uptime_ms",
                "Milliseconds since the daemon started.",
            ),
            queue_wait_us: registry.histogram(
                "wib_serve_queue_wait_us",
                "Microseconds from queue entry to worker pickup.",
            ),
            run_us: registry.histogram(
                "wib_serve_run_us",
                "Microseconds spent simulating (cache misses only).",
            ),
            cache_hit_us: registry.histogram(
                "wib_serve_cache_hit_us",
                "Microseconds spent in the result-cache lookup on a hit.",
            ),
            profiled_cycles: registry.counter(
                "wib_engine_profiled_cycles_total",
                "Engine cycles stage-timed by the sampling profiler.",
            ),
            stage_ns: std::array::from_fn(|i| {
                registry.counter_with(
                    "wib_engine_stage_ns_total",
                    "Sampled engine wall-clock nanoseconds by pipeline stage.",
                    &[("stage", STAGE_NAMES[i])],
                )
            }),
            registry,
        }
    }

    /// The per-(workload, outcome) end-to-end latency histogram,
    /// registered on first use (terminal events only — never hot).
    fn job_us(&self, workload: &str, outcome: &'static str) -> HistogramMetric {
        self.registry.histogram_with(
            "wib_serve_job_us",
            "End-to-end job latency in microseconds (queue entry to terminal event).",
            &[("workload", workload), ("outcome", outcome)],
        )
    }

    /// Fold one run's engine stage profile into the daemon-wide rollup.
    fn record_engine_profile(&self, p: &StageProfile) {
        if p.sampled_cycles == 0 {
            return;
        }
        self.profiled_cycles.add(p.sampled_cycles);
        for (counter, &ns) in self.stage_ns.iter().zip(p.stage_ns.iter()) {
            counter.add(ns);
        }
    }
}

/// Microseconds elapsed since `t`. Span stage marks all come from this
/// one clock, so adjacent-mark differences telescope exactly to the
/// final mark.
fn us_since(t: Instant) -> u64 {
    t.elapsed().as_micros() as u64
}

struct Shared {
    opts: ServerOptions,
    catalog: HashMap<String, Workload>,
    scale: &'static str,
    cache: ResultCache,
    faults: Arc<FaultPlan>,
    queue: BoundedQueue<u64>,
    jobs: Mutex<HashMap<u64, Job>>,
    next_job: AtomicU64,
    busy: AtomicUsize,
    workers: usize,
    telemetry: Telemetry,
    submitted: Counter,
    completed: Counter,
    errors: Counter,
    cancelled: Counter,
    panicked: Counter,
    deadline_expired: Counter,
    shed: Counter,
    /// Consecutive sheds with no accepted enqueue in between; drives the
    /// escalating `retry_after_ms` hint (backoff state, not a metric).
    shed_streak: AtomicU64,
    worker_restarts: Counter,
    /// Cache-peering neighbor list (ring successors, installed by the
    /// coordinator's `peers` op). Probed in order on a local miss.
    peers: Mutex<Vec<String>>,
    /// Peer-cache probes sent (one per peer tried on a miss).
    peer_probes: Counter,
    /// Local misses served from a peer's cache instead of simulating.
    peer_hits: Counter,
    watchers: Mutex<HashMap<u64, Sender<String>>>,
    next_watcher: AtomicU64,
    shutting_down: AtomicBool,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    bound: SocketAddr,
}

impl Shared {
    fn log(&self, msg: &str) {
        if !self.opts.quiet {
            eprintln!("wib-serve: {msg}");
        }
    }

    /// Jobs-map lock, tolerant of poisoning: a panicking worker must
    /// not wedge every other worker and connection forever. Panics in
    /// this file never happen while the map is mid-mutation (single
    /// field writes), so the recovered state is consistent.
    fn lock_jobs(&self) -> MutexGuard<'_, HashMap<u64, Job>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_watchers(&self) -> MutexGuard<'_, HashMap<u64, Sender<String>>> {
        self.watchers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_peers(&self) -> MutexGuard<'_, Vec<String>> {
        self.peers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Send `ev` to the job's own connection (if still attached) and to
    /// every watcher. A watcher whose connection died (its writer hit a
    /// broken pipe and hung up the channel) fails the send and is
    /// unregistered here, its buffered events dropped with it.
    fn publish(&self, own: Option<&Sender<String>>, ev: &Json) {
        let line = ev.to_string();
        if let Some(tx) = own {
            let _ = tx.send(line.clone());
        }
        let mut watchers = self.lock_watchers();
        watchers.retain(|_, w| w.send(line.clone()).is_ok());
    }

    fn is_finished(&self) -> bool {
        *self.finished.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn mark_finished(&self) {
        *self.finished.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.finished_cv.notify_all();
    }

    fn wait_finished(&self) {
        let mut done = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self
                .finished_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The introspection snapshot (`{"op":"stats"}`).
    fn stats_json(&self) -> Json {
        Json::obj()
            .field("event", "stats")
            .field("schema", "wib-serve/stats-v1")
            .field("addr", self.bound.to_string())
            .field("version", env!("CARGO_PKG_VERSION"))
            .field(
                "uptime_ms",
                self.telemetry.started.elapsed().as_millis() as u64,
            )
            .field("scale", self.scale)
            .field("workers", self.workers)
            .field("busy_workers", self.busy.load(Ordering::Relaxed))
            .field("queue_depth", self.queue.len())
            .field("queue_capacity", self.opts.queue_capacity)
            .field("draining", self.shutting_down.load(Ordering::Relaxed))
            .field("submitted", self.submitted.get())
            .field("completed", self.completed.get())
            .field("errors", self.errors.get())
            .field("cancelled", self.cancelled.get())
            .field("panicked", self.panicked.get())
            .field("deadline_expired", self.deadline_expired.get())
            .field("shed", self.shed.get())
            .field("worker_restarts", self.worker_restarts.get())
            .field("watchers", self.lock_watchers().len())
            .field("peers", self.lock_peers().len())
            .field("peer_probes", self.peer_probes.get())
            .field("peer_hits", self.peer_hits.get())
            .field("cache", self.cache.stats().to_json())
    }

    /// The Prometheus text exposition (`{"op":"metrics"}`): refresh the
    /// scrape-time gauges, then render the registry.
    fn metrics_text(&self) -> String {
        let t = &self.telemetry;
        t.queue_depth.set(self.queue.len() as u64);
        t.queue_capacity.set(self.opts.queue_capacity as u64);
        t.busy_workers.set(self.busy.load(Ordering::Relaxed) as u64);
        t.worker_count.set(self.workers as u64);
        t.watcher_count.set(self.lock_watchers().len() as u64);
        t.uptime_ms.set(t.started.elapsed().as_millis() as u64);
        t.registry.render()
    }

    /// The `retry_after_ms` hint for the `n`-th consecutive shed:
    /// exponential from [`SHED_BASE_MS`], capped at [`SHED_CAP_MS`],
    /// plus deterministic jitter so a herd of shed clients does not
    /// retry in lockstep.
    fn retry_after_ms(&self, streak: u64) -> u64 {
        let base = (SHED_BASE_MS << streak.saturating_sub(1).min(6)).min(SHED_CAP_MS);
        base + self.faults.jitter_ms(streak, SHED_JITTER_MS)
    }

    /// Flip into shutdown: in non-drain mode flag every queued job
    /// cancelled and trip every running job's token first, then close
    /// the queue and wake the accept loop.
    fn begin_shutdown(&self, drain: bool) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return; // second shutdown request: idempotent
        }
        self.log(if drain {
            "shutdown requested (drain)"
        } else {
            "shutdown requested (now)"
        });
        if !drain {
            let mut jobs = self.lock_jobs();
            for job in jobs.values_mut() {
                match job.state {
                    JobState::Queued => job.cancelled = true,
                    JobState::Running => {
                        if let Some(t) = &job.token {
                            t.cancel();
                        }
                    }
                    _ => {}
                }
            }
        }
        self.queue.close();
        // Unblock the accept loop so it can observe the flag.
        let _ = TcpStream::connect(self.bound);
    }
}

/// A running daemon spawned with [`spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry (shared handles — a coordinator can
    /// merge it into a fleet-wide registry).
    pub fn registry(&self) -> Registry {
        self.shared.telemetry.registry.clone()
    }

    /// Request shutdown locally (equivalent to the `shutdown` op).
    pub fn shutdown(&self, drain: bool) {
        self.shared.begin_shutdown(drain);
    }

    /// Block until the daemon has fully stopped (all threads joined).
    pub fn join(self) {
        self.thread.join().expect("server thread panicked");
    }
}

/// Build the deterministic result document for one completed run.
///
/// Everything in here is a pure function of the job identity — no wall
/// clock, no hostname — which is what makes daemon results byte-
/// comparable with local runs and cacheable by content address.
pub fn result_doc(
    workload: &Workload,
    cfg: &MachineConfig,
    insts: u64,
    warmup: u64,
    scale: &str,
    r: &RunResult,
) -> Json {
    Json::obj()
        .field("schema", "wib-serve/result-v1")
        .field("workload", workload.name())
        .field("suite", workload.suite().to_string())
        .field("scale", scale)
        .field("spec", cfg.to_spec())
        .field(
            "digest",
            ResultCache::key(workload.name(), cfg, insts, warmup, scale),
        )
        .field("insts", insts)
        .field("warmup", warmup)
        .field("halted", r.halted)
        .field("ipc", r.ipc())
        .field("stats", r.stats.to_json())
}

/// Run one job in-process and return its result document — the exact
/// computation a daemon worker performs on a cache miss. The `submit
/// --local` client path uses this for byte-identical comparisons.
pub fn compute_result(
    workload: &Workload,
    cfg: &MachineConfig,
    insts: u64,
    warmup: u64,
    scale: &str,
) -> Json {
    let runner = Runner { warmup, insts };
    let r = runner.run(cfg, workload);
    result_doc(workload, cfg, insts, warmup, scale, &r)
}

/// Validate one submitted job against a workload catalog and resolve its
/// protocol parameters. Returns `(workload name, config, insts, warmup)`.
///
/// # Errors
/// A reason string suitable for a `rejected` event.
pub fn resolve_job(
    catalog: &HashMap<String, Workload>,
    job: &JobRequest,
    batch_insts: Option<u64>,
    batch_warmup: Option<u64>,
    default_insts: u64,
    default_warmup: u64,
) -> Result<(String, MachineConfig, u64, u64), String> {
    if !catalog.contains_key(&job.workload) {
        return Err(format!(
            "unknown workload {:?} (see `wib-sim workloads`)",
            job.workload
        ));
    }
    let cfg = protocol::parse_machine_spec(&job.spec)?;
    let insts = job.insts.or(batch_insts).unwrap_or(default_insts);
    let warmup = job.warmup.or(batch_warmup).unwrap_or(default_warmup);
    if insts == 0 {
        return Err("insts must be at least 1".to_string());
    }
    if insts > MAX_INSTS || warmup > MAX_INSTS {
        return Err(format!("insts/warmup capped at {MAX_INSTS}"));
    }
    Ok((job.workload.clone(), cfg, insts, warmup))
}

/// The workload catalog a daemon serves (name -> built program).
pub fn build_catalog(tiny: bool) -> HashMap<String, Workload> {
    let suite = if tiny { test_suite() } else { eval_suite() };
    suite
        .into_iter()
        .map(|w| (w.name().to_string(), w))
        .collect()
}

/// Bind and start a daemon in background threads.
///
/// # Errors
/// Socket binding / port-file errors, or a malformed fault spec
/// (`InvalidInput` naming the bad clause).
pub fn spawn(opts: ServerOptions) -> std::io::Result<ServerHandle> {
    let fault_spec = opts
        .faults
        .clone()
        .or_else(|| std::env::var("WIB_FAULTS").ok());
    let faults = match &fault_spec {
        Some(spec) => Arc::new(
            FaultPlan::parse(spec)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
        ),
        None => Arc::new(FaultPlan::none()),
    };
    let listener = TcpListener::bind(&opts.addr)?;
    let bound = listener.local_addr()?;
    if let Some(path) = &opts.port_file {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, format!("{bound}\n"))?;
    }
    let workers = if opts.workers == 0 {
        worker_threads()
    } else {
        opts.workers
    };
    let registry = Registry::new();
    let shared = Arc::new(Shared {
        catalog: build_catalog(opts.tiny),
        scale: if opts.tiny { "tiny" } else { "eval" },
        cache: ResultCache::with_metrics(opts.results_dir.clone(), Arc::clone(&faults), &registry),
        faults,
        queue: BoundedQueue::new(opts.queue_capacity),
        jobs: Mutex::new(HashMap::new()),
        next_job: AtomicU64::new(1),
        busy: AtomicUsize::new(0),
        workers,
        submitted: registry.counter(
            "wib_serve_jobs_submitted_total",
            "Jobs accepted into the queue.",
        ),
        completed: registry.counter(
            "wib_serve_jobs_completed_total",
            "Jobs finished successfully (including cache hits).",
        ),
        errors: registry.counter(
            "wib_serve_jobs_failed_total",
            "Jobs that ended in a terminal error.",
        ),
        cancelled: registry.counter(
            "wib_serve_jobs_cancelled_total",
            "Jobs cancelled while queued or running.",
        ),
        panicked: registry.counter(
            "wib_serve_job_panics_total",
            "Simulations that panicked inside per-job isolation.",
        ),
        deadline_expired: registry.counter(
            "wib_serve_deadline_expirations_total",
            "Jobs whose wall-clock deadline expired mid-run.",
        ),
        shed: registry.counter(
            "wib_serve_jobs_shed_total",
            "Submissions refused because the queue was full.",
        ),
        shed_streak: AtomicU64::new(0),
        worker_restarts: registry.counter(
            "wib_serve_worker_restarts_total",
            "Worker threads recycled after an escaped panic.",
        ),
        peers: Mutex::new(Vec::new()),
        peer_probes: registry.counter(
            "wib_serve_peer_probes_total",
            "Peer-cache probes sent on local misses.",
        ),
        peer_hits: registry.counter(
            "wib_serve_peer_hits_total",
            "Local cache misses served from a peer's cache.",
        ),
        telemetry: Telemetry::new(registry),
        watchers: Mutex::new(HashMap::new()),
        next_watcher: AtomicU64::new(1),
        shutting_down: AtomicBool::new(false),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
        bound,
        opts,
    });
    shared.log(&format!(
        "listening on {bound} ({} workers, {} catalog programs, {} suite)",
        workers,
        shared.catalog.len(),
        shared.scale
    ));
    if shared.faults.is_active() {
        shared.log(&format!(
            "fault injection ARMED: {}",
            fault_spec.as_deref().unwrap_or("")
        ));
    }
    let run_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("wib-serve-accept".to_string())
        .spawn(move || run_loop(run_shared, listener))?;
    Ok(ServerHandle {
        addr: bound,
        thread,
        shared,
    })
}

/// Bind and run a daemon on the calling thread (the CLI `serve` path).
/// Prints the listening address to stdout so callers on ephemeral ports
/// can find it. Returns after a client-requested shutdown completes.
///
/// # Errors
/// Socket binding / port-file errors.
pub fn run(opts: ServerOptions) -> std::io::Result<()> {
    let handle = spawn(opts)?;
    println!("wib-serve listening on {}", handle.addr());
    // Line-buffered stdout under a pipe would hold this back forever.
    std::io::stdout().flush()?;
    handle.join();
    Ok(())
}

fn run_loop(shared: Arc<Shared>, listener: TcpListener) {
    let worker_handles: Vec<_> = (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("wib-serve-worker-{i}"))
                .spawn(move || {
                    // Recycle loop: per-job panics are absorbed inside
                    // `worker_loop`; anything that still escapes (a
                    // bookkeeping bug) restarts the slot instead of
                    // silently shrinking the pool.
                    loop {
                        if catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))).is_ok() {
                            break; // queue drained: normal exit
                        }
                        let n = shared.worker_restarts.inc_and_get();
                        shared.log(&format!(
                            "worker {i} panicked outside job isolation; recycling (restart {n})"
                        ));
                        if n >= MAX_WORKER_RESTARTS {
                            shared.log(&format!("worker {i} exceeded restart budget; retiring"));
                            break;
                        }
                    }
                })
                .expect("spawn worker")
        })
        .collect();
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("wib-serve-conn".to_string())
                    .spawn(move || handle_conn(shared, stream))
                    .expect("spawn connection thread");
                conn_handles.push(h);
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
            }
        }
    }
    drop(listener);
    for h in worker_handles {
        h.join().expect("worker thread panicked");
    }
    // Tell watchers the daemon is gone, then drop their channels so
    // connection writer threads can exit.
    let farewell = Json::obj()
        .field("event", "shutdown")
        .field("completed", shared.completed.get())
        .field("errors", shared.errors.get())
        .field("cancelled", shared.cancelled.get());
    shared.publish(None, &farewell);
    shared.lock_watchers().clear();
    // Unblock any connection reader (including the one that requested
    // the shutdown, waiting in `wait_finished`).
    shared.mark_finished();
    for h in conn_handles {
        h.join().expect("connection thread panicked");
    }
    shared.log("stopped");
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        run_one_job(shared, id);
    }
}

/// Execute one dequeued job end to end: pickup (arming its cancel
/// token), panic-shielded simulation, terminal bookkeeping, span record,
/// terminal event.
///
/// Span stage marks are µs offsets from the job's queue entry, all read
/// from one monotonic clock: `queue` ends at pickup, `cache` at the
/// cache lookup, `run` at simulation end (misses only), `finish` at the
/// span's emission. Adjacent-mark differences therefore sum *exactly*
/// to `total_us`.
fn run_one_job(shared: &Shared, id: u64) {
    let picked = {
        let mut jobs = shared.lock_jobs();
        let Some(job) = jobs.get_mut(&id) else {
            return; // unknown id: nothing to do
        };
        if job.cancelled {
            job.state = JobState::Cancelled;
            Err((
                job.sender.take(),
                job.span.clone(),
                job.queued_at,
                job.workload.clone(),
            ))
        } else {
            job.state = JobState::Running;
            let token = match job.deadline_ms {
                Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            job.token = Some(token.clone());
            Ok((
                job.sender.clone(),
                job.workload.clone(),
                job.cfg.clone(),
                job.insts,
                job.warmup,
                job.key.clone(),
                token,
                job.span.clone(),
                job.queued_at,
            ))
        }
    };
    let (tx, workload_name, cfg, insts, warmup, key, token, span, queued_at) = match picked {
        Err((tx, span, queued_at, workload)) => {
            // Cancelled while queued: the whole life was the queue wait.
            let queue_us = us_since(queued_at);
            shared.cancelled.inc();
            shared.telemetry.queue_wait_us.observe(queue_us);
            shared
                .telemetry
                .job_us(&workload, "cancelled")
                .observe(queue_us);
            shared.publish(
                tx.as_ref(),
                &protocol::ev_span(
                    id,
                    &span,
                    &workload,
                    "cancelled",
                    &[("queue", queue_us)],
                    queue_us,
                ),
            );
            shared.publish(tx.as_ref(), &protocol::ev_cancelled(id));
            return;
        }
        Ok(p) => p,
    };
    shared.busy.fetch_add(1, Ordering::Relaxed);
    let _busy = BusyGuard(&shared.busy);
    shared.publish(tx.as_ref(), &protocol::ev_running(id));
    if shared.faults.next_execution_dies() {
        // Node-death fault: take the whole process down — no unwind, no
        // drain, no farewell. The coordinator sees exactly what a
        // kill -9 or kernel panic looks like: a dead TCP peer mid-job.
        // Only ever armed on daemons running as their own process.
        eprintln!("wib-serve: injected fault: node death on job {id}");
        std::process::abort();
    }
    let queue_mark = us_since(queued_at);
    let mut cached_doc = shared.cache.get(&key);
    let mut peer_sourced = false;
    if cached_doc.is_none() {
        if let Some(doc) = fetch_from_peers(&shared, &key) {
            // Adopt the peer's document as a local entry so the next
            // hit is local; byte-identity of results across nodes makes
            // the copy indistinguishable from having simulated here.
            shared.cache.put(&key, doc.to_string());
            cached_doc = Some(Arc::new(doc.to_string()));
            peer_sourced = true;
        }
    }
    let lookup_mark = us_since(queued_at);
    let mut ran = false;
    let outcome = if let Some(doc) = cached_doc {
        if !peer_sourced {
            // Peer serves stay out of the local-hit latency histogram:
            // they include a network round trip and would skew it.
            shared
                .telemetry
                .cache_hit_us
                .observe(lookup_mark - queue_mark);
        }
        Outcome::Done {
            doc: Json::parse(&doc).expect("cached documents parse"),
            cached: true,
        }
    } else if let Some(workload) = shared.catalog.get(&workload_name) {
        ran = true;
        let sim = catch_unwind(AssertUnwindSafe(|| {
            if shared.faults.next_sim_panics() {
                panic!("injected fault: worker panic");
            }
            let mut proc = Processor::new(cfg.clone());
            proc.set_cancel_token(token.clone());
            let r =
                proc.run_program_warmed(workload.program(), warmup, RunLimit::instructions(insts));
            let doc = result_doc(workload, &cfg, insts, warmup, shared.scale, &r);
            (doc, r)
        }));
        // Engine self-profiling rides every completed simulation,
        // cancelled or not (host telemetry, never part of the result).
        if let Ok((_, r)) = &sim {
            shared.telemetry.record_engine_profile(&r.profile);
        }
        match sim {
            // A cancelled run carries partial statistics: never cache
            // or publish its document.
            Ok((_, r)) if r.cancelled && token.is_cancelled() => Outcome::Cancelled,
            Ok((_, r)) if r.cancelled => {
                shared.deadline_expired.inc();
                let ms = shared.lock_jobs().get(&id).and_then(|j| j.deadline_ms);
                Outcome::Failed(format!("deadline of {}ms expired mid-run", ms.unwrap_or(0)))
            }
            Ok((doc, r)) => {
                for sample in r.stats.intervals.iter().take(MAX_STREAMED_INTERVALS) {
                    shared.publish(tx.as_ref(), &protocol::ev_interval(id, sample));
                }
                shared.cache.put(&key, doc.to_string());
                Outcome::Done { doc, cached: false }
            }
            Err(panic) => {
                shared.panicked.inc();
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Outcome::Failed(format!("simulation panicked: {msg}"))
            }
        }
    } else {
        Outcome::Failed(format!("workload {workload_name:?} vanished from catalog"))
    };
    let run_mark = us_since(queued_at);
    {
        let mut jobs = shared.lock_jobs();
        if let Some(job) = jobs.get_mut(&id) {
            job.sender = None;
            job.token = None;
            job.state = match outcome {
                Outcome::Done { .. } => JobState::Done,
                Outcome::Cancelled => JobState::Cancelled,
                Outcome::Failed(_) => JobState::Failed,
            };
        }
    }
    // Latency rollups and the span record, just before the terminal
    // event (a client sees the span first, then the outcome it explains).
    let outcome_name = match &outcome {
        Outcome::Done { .. } => "done",
        Outcome::Cancelled => "cancelled",
        Outcome::Failed(_) => "error",
    };
    let finish_mark = us_since(queued_at);
    let mut stages: Vec<(&'static str, u64)> =
        vec![("queue", queue_mark), ("cache", lookup_mark - queue_mark)];
    if ran {
        stages.push(("run", run_mark - lookup_mark));
        stages.push(("finish", finish_mark - run_mark));
    } else {
        stages.push(("finish", finish_mark - lookup_mark));
    }
    shared.telemetry.queue_wait_us.observe(queue_mark);
    if ran {
        shared.telemetry.run_us.observe(run_mark - lookup_mark);
    }
    shared
        .telemetry
        .job_us(&workload_name, outcome_name)
        .observe(finish_mark);
    shared.publish(
        tx.as_ref(),
        &protocol::ev_span(
            id,
            &span,
            &workload_name,
            outcome_name,
            &stages,
            finish_mark,
        ),
    );
    match outcome {
        Outcome::Done { doc, cached } => {
            shared.completed.inc();
            shared.log(&format!(
                "job {id} {workload_name} done{}",
                if cached { " (cached)" } else { "" }
            ));
            shared.publish(tx.as_ref(), &protocol::ev_done(id, cached, doc));
        }
        Outcome::Cancelled => {
            shared.cancelled.inc();
            shared.log(&format!("job {id} {workload_name} cancelled mid-run"));
            shared.publish(tx.as_ref(), &protocol::ev_cancelled(id));
        }
        Outcome::Failed(msg) => {
            shared.errors.inc();
            shared.log(&format!("job {id} {workload_name} failed: {msg}"));
            shared.publish(tx.as_ref(), &protocol::ev_error(id, &key, &msg));
        }
    }
}

/// On a local cache miss, probe the peering list (ring successors
/// installed by the coordinator) for the digest. First hit wins; a
/// dead or empty peer just falls through — the worst case is a short
/// bounded delay before simulating locally.
fn fetch_from_peers(shared: &Shared, key: &str) -> Option<Json> {
    let peers: Vec<String> = shared.lock_peers().clone();
    for addr in peers {
        shared.peer_probes.inc();
        match crate::client::cache_fetch(&addr, key, PEER_BUDGET) {
            Ok(Some(doc)) => {
                shared.peer_hits.inc();
                shared.log(&format!("cache miss for {key} served by peer {addr}"));
                return Some(doc);
            }
            Ok(None) => {}
            Err(e) => shared.log(&format!("peer {addr} probe failed: {e}")),
        }
    }
    None
}

/// Per-connection dispatch state (what the reader must undo on close).
#[derive(Default)]
struct ConnState {
    /// This connection's watcher registration, if it sent `watch`.
    watcher_id: Option<u64>,
}

fn handle_conn(shared: Arc<Shared>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A peer that stops draining its socket must not pin this thread:
    // bound every write, and treat timeout like any other write error.
    let _ = write_half.set_write_timeout(Some(WRITE_TIMEOUT));
    let (tx, rx) = channel::<String>();
    let writer_faults = Arc::clone(&shared.faults);
    let writer = std::thread::Builder::new()
        .name("wib-serve-writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(line) = rx.recv() {
                match writer_faults.next_client_write() {
                    WriteFault::None => {}
                    WriteFault::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
                    WriteFault::Truncate => {
                        // A peer that vanished mid-line: half the frame,
                        // then the writer dies.
                        let _ = out
                            .write_all(&line.as_bytes()[..line.len() / 2])
                            .and_then(|()| out.flush());
                        break;
                    }
                }
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn writer thread");
    let mut reader = BufReader::new(stream);
    let mut acc = String::new();
    let mut conn = ConnState::default();
    loop {
        if shared.is_finished() {
            break;
        }
        match reader.read_line(&mut acc) {
            Ok(0) => break,
            Ok(_) => {
                if !acc.ends_with('\n') {
                    continue; // partial line before EOF; next read returns 0
                }
                let line = acc.trim().to_string();
                acc.clear();
                if line.is_empty() {
                    continue;
                }
                if dispatch(&shared, &tx, &mut conn, &line) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // Undo this connection's watcher registration so workers stop
    // buffering events for a peer that is gone.
    if let Some(wid) = conn.watcher_id {
        shared.lock_watchers().remove(&wid);
    }
    shared.log(&format!("connection {peer} closed"));
    drop(tx);
    let _ = writer.join();
}

/// Handle one request line; returns `true` when the connection should
/// close (after a shutdown request completes).
fn dispatch(shared: &Arc<Shared>, tx: &Sender<String>, conn: &mut ConnState, line: &str) -> bool {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(protocol::ev_protocol_error(&e).to_string());
            return false;
        }
    };
    match request {
        Request::Ping => {
            let _ = tx.send(Json::obj().field("event", "pong").to_string());
        }
        Request::Stats => {
            let _ = tx.send(shared.stats_json().to_string());
        }
        Request::Metrics => {
            let _ = tx.send(protocol::ev_metrics(&shared.metrics_text()).to_string());
        }
        Request::Watch => {
            let wid = shared.next_watcher.fetch_add(1, Ordering::Relaxed);
            shared.lock_watchers().insert(wid, tx.clone());
            conn.watcher_id = Some(wid);
            let _ = tx.send(Json::obj().field("event", "watching").to_string());
        }
        Request::Cancel { job } => {
            let (ok, state) = {
                let mut jobs = shared.lock_jobs();
                match jobs.get_mut(&job) {
                    Some(j) if j.state == JobState::Queued && !j.cancelled => {
                        j.cancelled = true;
                        (true, "queued")
                    }
                    Some(j) if j.state == JobState::Running => match &j.token {
                        Some(t) => {
                            // The engine observes this at its next epoch
                            // boundary; the worker then publishes the
                            // terminal `cancelled` event.
                            t.cancel();
                            (true, "running")
                        }
                        None => (false, "running"),
                    },
                    Some(j) => (false, j.state.name()),
                    None => (false, "unknown"),
                }
            };
            let _ = tx.send(
                Json::obj()
                    .field("event", "cancel")
                    .field("job", job)
                    .field("ok", ok)
                    .field("state", state)
                    .to_string(),
            );
        }
        Request::Submit {
            jobs,
            insts,
            warmup,
            deadline_ms,
        } => {
            submit_batch(shared, tx, &jobs, insts, warmup, deadline_ms);
        }
        Request::CacheGet { digest } => {
            // Peer-cache probe: serve our cache read-only, without
            // touching hit/miss telemetry (the probing node owns the
            // miss; counting it here too would double-book it).
            let result = shared
                .cache
                .peek(&digest)
                .and_then(|doc| Json::parse(&doc).ok());
            let _ = tx.send(protocol::ev_cache_entry(&digest, result).to_string());
        }
        Request::Peers { addrs } => {
            let count = addrs.len();
            *shared.lock_peers() = addrs;
            shared.log(&format!("peer list updated: {count} neighbor(s)"));
            let _ = tx.send(protocol::ev_peers(count).to_string());
        }
        Request::Join { .. } | Request::ClusterStats => {
            let _ = tx.send(
                protocol::ev_protocol_error(
                    "coordinator-only op: this is a backend daemon, not a coordinator",
                )
                .to_string(),
            );
        }
        Request::Shutdown { drain } => {
            shared.begin_shutdown(drain);
            // Wait for the full drain-and-join, then confirm and close.
            shared.wait_finished();
            let _ = tx.send(
                Json::obj()
                    .field("event", "shutdown")
                    .field("completed", shared.completed.get())
                    .field("errors", shared.errors.get())
                    .field("cancelled", shared.cancelled.get())
                    .to_string(),
            );
            return true;
        }
    }
    false
}

fn submit_batch(
    shared: &Arc<Shared>,
    tx: &Sender<String>,
    jobs: &[JobRequest],
    batch_insts: Option<u64>,
    batch_warmup: Option<u64>,
    batch_deadline: Option<u64>,
) {
    for (index, job) in jobs.iter().enumerate() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = tx.send(
                protocol::ev_rejected(index, &job.workload, "server is shutting down").to_string(),
            );
            continue;
        }
        let resolved = resolve_job(
            &shared.catalog,
            job,
            batch_insts,
            batch_warmup,
            shared.opts.default_insts,
            shared.opts.default_warmup,
        );
        let (workload, cfg, insts, warmup) = match resolved {
            Ok(r) => r,
            Err(reason) => {
                let _ = tx.send(protocol::ev_rejected(index, &job.workload, &reason).to_string());
                continue;
            }
        };
        let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
        let spec = cfg.to_spec();
        let key = ResultCache::key(&workload, &cfg, insts, warmup, shared.scale);
        // The span id is unique per submission *attempt* (a resubmit of
        // the same job identity gets a fresh span): job id plus the
        // daemon's monotonic clock. Never part of the result document.
        let span = format!("{id:x}.{:x}", shared.telemetry.started.elapsed().as_nanos());
        shared.lock_jobs().insert(
            id,
            Job {
                workload: workload.clone(),
                key: key.clone(),
                cfg,
                insts,
                warmup,
                span: span.clone(),
                queued_at: Instant::now(),
                deadline_ms: job.deadline_ms.or(batch_deadline),
                state: JobState::Queued,
                cancelled: false,
                token: None,
                sender: Some(tx.clone()),
            },
        );
        // `queued` goes out before the enqueue so no worker can emit
        // `running` first; if the push is then refused, the terminal
        // `shed` event (same job id) retracts it.
        shared.publish(
            Some(tx),
            &protocol::ev_queued(id, index, &workload, &spec, &key, &span),
        );
        let refused = if shared.faults.next_enqueue_sheds() {
            Err(TryPushError::Full) // injected overload
        } else {
            shared.queue.try_push(id)
        };
        match refused {
            Ok(()) => {
                shared.submitted.inc();
                shared.shed_streak.store(0, Ordering::Relaxed);
            }
            Err(TryPushError::Full) => {
                shared.lock_jobs().remove(&id);
                shared.shed.inc();
                let streak = shared.shed_streak.fetch_add(1, Ordering::Relaxed) + 1;
                let retry_after = shared.retry_after_ms(streak);
                shared.log(&format!(
                    "queue full: shed job {id} {workload} (retry in {retry_after}ms)"
                ));
                shared.publish(Some(tx), &protocol::ev_shed(id, &workload, retry_after));
            }
            Err(TryPushError::Closed) => {
                shared.lock_jobs().remove(&id);
                let _ = tx.send(
                    protocol::ev_rejected(index, &workload, "server is shutting down").to_string(),
                );
            }
        }
    }
}
