//! Typed errors for the serving stack.
//!
//! Client helpers and connection paths used to surface failures as bare
//! `String`s (and, in a few places, `unwrap()` on socket I/O). Every
//! fallible path now returns a [`ServeError`], which keeps the failing
//! operation and the underlying `io::Error` together so callers can
//! distinguish "the daemon is not there" from "the daemon is there but
//! wedged" from "the daemon rejected the request".

use std::fmt;
use std::time::Duration;

/// Why a client/daemon interaction failed.
#[derive(Debug)]
pub enum ServeError {
    /// TCP connect to the daemon failed.
    Connect {
        /// The address dialed.
        addr: String,
        /// The socket error.
        source: std::io::Error,
    },
    /// A socket or file operation failed mid-conversation.
    Io {
        /// What was being attempted (e.g. `"send request"`).
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The peer spoke, but not the protocol (bad JSON, missing fields,
    /// or an explicit `protocol_error` event).
    Protocol(String),
    /// The daemon reported a server-side condition that aborts the whole
    /// interaction (e.g. it shut down mid-batch).
    Server(String),
    /// The peer went silent: no bytes for the connection's idle budget.
    /// Per-connection read/write timeouts turn a wedged or half-open
    /// peer into this error instead of a thread pinned forever.
    Stalled {
        /// How long the connection sat idle before giving up.
        idle: Duration,
    },
}

impl ServeError {
    /// Wrap an I/O error with the operation that hit it.
    pub fn io(context: &'static str, source: std::io::Error) -> ServeError {
        ServeError::Io { context, source }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Connect { addr, source } => write!(f, "connect {addr}: {source}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Server(msg) => write!(f, "server: {msg}"),
            ServeError::Stalled { idle } => {
                write!(
                    f,
                    "peer sent nothing for {:.1}s; giving up",
                    idle.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Connect { source, .. } | ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_operation() {
        let e = ServeError::io(
            "send request",
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"),
        );
        assert!(e.to_string().contains("send request"));
        assert!(std::error::Error::source(&e).is_some());
        let s = ServeError::Stalled {
            idle: Duration::from_secs(5),
        };
        assert!(s.to_string().contains("5.0s"));
        assert!(std::error::Error::source(&s).is_none());
    }
}
