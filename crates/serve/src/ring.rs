//! Consistent-hash ring over backend node addresses.
//!
//! The coordinator shards jobs across backends by hashing each job's
//! content digest (the same `spec_digest` that keys the result cache)
//! onto a ring of virtual-node points. Each physical node contributes
//! `vnodes` points at `fnv1a64("<addr>#<i>")`; a key is owned by the
//! first point clockwise from `fnv1a64(key)`. The properties the sweep
//! fabric leans on:
//!
//! * **Stable placement** — a key's owner is a pure function of the
//!   node set, so every coordinator (and every test) computes the same
//!   routing, and a resubmitted sweep lands on the nodes that already
//!   cached it.
//! * **Minimal disruption** — removing a dead node remaps only the keys
//!   it owned (to their next successor); every other key keeps its
//!   node, and with it its warm cache.
//! * **Replica ordering** — [`HashRing::successors`] walks distinct
//!   nodes clockwise from a key, giving the retry order when the
//!   primary dies and the neighbor list for cache peering.

use wib_core::fnv1a64;

/// Ring position of an arbitrary string: FNV-1a, then a full 64-bit
/// avalanche (the murmur3/splitmix finalizer). Raw FNV-1a of short
/// strings sharing a prefix ("addr#0", "addr#1", ...) differs mostly in
/// the low bits, so a node's vnodes would all land in one tight band
/// and one node would own nearly the whole ring; the finalizer spreads
/// every bit of the digest across the whole position.
fn position(s: &str) -> u64 {
    let mut h = fnv1a64(s.as_bytes());
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring: virtual-node points sorted by hash, each
/// pointing back at a physical node address.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Physical node ids (addresses), in insertion order.
    nodes: Vec<String>,
    /// `(point_hash, index into nodes)`, sorted by hash. Ties (vanishingly
    /// rare with 64-bit hashes) break by node index, deterministically.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring whose nodes each contribute `vnodes` points
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The physical node ids, in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// True if `node` is in the ring.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Add a node (no-op if already present). Returns whether it was
    /// added.
    pub fn add(&mut self, node: &str) -> bool {
        if self.contains(node) {
            return false;
        }
        let idx = self.nodes.len();
        self.nodes.push(node.to_string());
        for i in 0..self.vnodes {
            self.points.push((position(&format!("{node}#{i}")), idx));
        }
        self.points.sort_unstable();
        true
    }

    /// Remove a node and every point it contributed. Returns whether it
    /// was present. Keys the node owned remap to their next successor;
    /// all other keys keep their owner.
    pub fn remove(&mut self, node: &str) -> bool {
        let Some(gone) = self.nodes.iter().position(|n| n == node) else {
            return false;
        };
        self.nodes.remove(gone);
        self.points.retain(|&(_, idx)| idx != gone);
        // Indices above the removed slot shift down by one.
        for p in &mut self.points {
            if p.1 > gone {
                p.1 -= 1;
            }
        }
        true
    }

    /// The first ring point clockwise from `hash` (wrapping), as an
    /// index into `points`.
    fn successor_point(&self, hash: u64) -> usize {
        self.points.partition_point(|&(p, _)| p < hash) % self.points.len()
    }

    /// The node owning `key`: the first point clockwise from the key's
    /// hash. `None` on an empty ring.
    pub fn primary(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.successor_point(position(key));
        Some(self.nodes[self.points[start].1].as_str())
    }

    /// Up to `n` *distinct* nodes in clockwise order from `key`'s hash:
    /// element 0 is the primary, the rest are the replica/fallback order
    /// when it dies (and the peer list for cache peering).
    pub fn successors(&self, key: &str, n: usize) -> Vec<&str> {
        self.walk(position(key), n, None)
    }

    /// Up to `n` distinct nodes clockwise from `node`'s own first point,
    /// excluding `node` itself — its cache-peering neighbors.
    pub fn peers_of(&self, node: &str, n: usize) -> Vec<&str> {
        self.walk(position(&format!("{node}#0")), n, Some(node))
    }

    fn walk(&self, hash: u64, n: usize, exclude: Option<&str>) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let start = self.successor_point(hash);
        for off in 0..self.points.len() {
            let (_, idx) = self.points[(start + off) % self.points.len()];
            let node = self.nodes[idx].as_str();
            if exclude == Some(node) || out.contains(&node) {
                continue;
            }
            out.push(node);
            if out.len() == n {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<String> {
        (0..200).map(|i| format!("digest-{i:04}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_independent_of_insertion_order() {
        let mut a = HashRing::new(64);
        a.add("10.0.0.1:7431");
        a.add("10.0.0.2:7431");
        a.add("10.0.0.3:7431");
        let mut b = HashRing::new(64);
        b.add("10.0.0.3:7431");
        b.add("10.0.0.1:7431");
        b.add("10.0.0.2:7431");
        for k in keys() {
            assert_eq!(a.primary(&k), b.primary(&k));
        }
    }

    #[test]
    fn every_node_owns_a_reasonable_share() {
        let mut ring = HashRing::new(64);
        for n in ["a:1", "b:1", "c:1", "d:1"] {
            ring.add(n);
        }
        let mut counts = std::collections::HashMap::new();
        for k in keys() {
            *counts
                .entry(ring.primary(&k).unwrap().to_string())
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4, "every node should own some keys");
        for (_, c) in counts {
            assert!(c >= 10, "grossly unbalanced ring: {c}/200 keys on one node");
        }
    }

    #[test]
    fn removing_a_node_remaps_only_its_own_keys() {
        let mut ring = HashRing::new(64);
        for n in ["a:1", "b:1", "c:1"] {
            ring.add(n);
        }
        let before: Vec<(String, String)> = keys()
            .into_iter()
            .map(|k| {
                let owner = ring.primary(&k).unwrap().to_string();
                (k, owner)
            })
            .collect();
        assert!(ring.remove("b:1"));
        assert!(!ring.remove("b:1"));
        for (k, owner) in before {
            let now = ring.primary(&k).unwrap();
            if owner == "b:1" {
                assert_ne!(now, "b:1");
            } else {
                // Keys the dead node did not own keep their placement —
                // and their warm caches.
                assert_eq!(now, owner);
            }
        }
    }

    #[test]
    fn successors_are_distinct_and_start_at_the_primary() {
        let mut ring = HashRing::new(64);
        for n in ["a:1", "b:1", "c:1"] {
            ring.add(n);
        }
        for k in keys() {
            let succ = ring.successors(&k, 3);
            assert_eq!(succ.len(), 3);
            assert_eq!(succ[0], ring.primary(&k).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "successors must be distinct nodes");
        }
        // Asking for more nodes than exist returns them all, once each.
        assert_eq!(ring.successors("k", 10).len(), 3);
    }

    #[test]
    fn peers_exclude_the_node_itself() {
        let mut ring = HashRing::new(64);
        for n in ["a:1", "b:1", "c:1"] {
            ring.add(n);
        }
        let peers = ring.peers_of("a:1", 8);
        assert_eq!(peers.len(), 2);
        assert!(!peers.contains(&"a:1"));
    }

    #[test]
    fn empty_ring_is_well_behaved() {
        let ring = HashRing::new(64);
        assert!(ring.is_empty());
        assert_eq!(ring.primary("k"), None);
        assert!(ring.successors("k", 3).is_empty());
    }
}
