//! A bounded multi-producer / multi-consumer job queue, built on
//! `Mutex` + `Condvar` (std only).
//!
//! Producers have two entry points. [`BoundedQueue::push`] blocks while
//! the queue is full — backpressure by TCP flow control, since a stalled
//! connection thread stops reading its socket. [`BoundedQueue::try_push`]
//! never blocks: a full queue returns [`TryPushError::Full`] immediately,
//! which is what the daemon's overload shedding is built on (the
//! submission is refused with a `retry_after_ms` hint instead of pinning
//! a connection thread). Consumers (pool workers) block in
//! [`BoundedQueue::pop`] while empty.
//!
//! [`BoundedQueue::close`] starts a drain: further pushes fail, pops
//! keep returning queued items until the queue is empty and then return
//! `None`, which is each worker's signal to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned by [`BoundedQueue::push`] after [`BoundedQueue::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushError {
    /// The queue is at capacity right now; retrying later may succeed.
    Full,
    /// The queue has been closed; retrying can never succeed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking FIFO. See the module docs for the protocol.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    /// Signaled when an item arrives or the queue closes (wakes `pop`).
    not_empty: Condvar,
    /// Signaled when space frees up or the queue closes (wakes `push`).
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue `item`, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    /// Returns [`Closed`] (with the item dropped) once the queue has been
    /// closed — including while blocked waiting for space.
    pub fn push(&self, item: T) -> Result<(), Closed> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(Closed);
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue `item` only if there is space right now; never blocks.
    ///
    /// # Errors
    /// [`TryPushError::Full`] when at capacity (item returned to caller
    /// conceptually — it is dropped here, so pass ids, not payloads),
    /// [`TryPushError::Closed`] after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), TryPushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TryPushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full);
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: pushes (including blocked ones) fail from now on,
    /// pops drain the remaining items and then return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (racy by nature; for introspection only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; introspection only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_until_a_pop_frees_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is now blocked on the full queue; a pop releases
        // it. (If push did not block, this test would still pass, but the
        // capacity assertion below would fail.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push must wait for space");
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn try_push_refuses_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(TryPushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        q.close();
        assert_eq!(q.try_push(4), Err(TryPushError::Closed));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.push('c'), Err(Closed));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_producer_and_consumer() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        q.push(9).unwrap();
        let blocked_push = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(10))
        };
        let empty = Arc::new(BoundedQueue::<u8>::new(1));
        let blocked_pop = {
            let e = Arc::clone(&empty);
            std::thread::spawn(move || e.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        empty.close();
        assert_eq!(blocked_push.join().unwrap(), Err(Closed));
        assert_eq!(blocked_pop.join().unwrap(), None);
        // The item queued before close still drains.
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
