//! The sweep coordinator: one front door for a fleet of `wib-serve`
//! backends.
//!
//! `wib-coord` speaks the *same* NDJSON protocol as a single daemon, so
//! every existing client — `wib-sim submit/watch/stats/top` — works
//! unchanged by pointing at the coordinator instead of a backend. Under
//! the hood each submitted job is routed by consistent-hashing its
//! content digest (the exact `spec_digest`-derived key the result cache
//! uses, see [`ResultCache::key`]) onto a [`HashRing`] of backend
//! nodes:
//!
//! * **Sharding** — a job's digest has one owner, so repeated sweeps of
//!   the same points land on the nodes that already cached them, and
//!   the fleet's aggregate cache behaves like one big cache.
//! * **Cache peering** — the coordinator installs each node's ring
//!   successors as its peer list (`{"op":"peers"}`); a node that misses
//!   locally probes those neighbors (`{"op":"cache_get"}`) before
//!   paying for a simulation, which is what makes re-routed work cheap
//!   after membership changes.
//! * **Node-death retry** — a backend that dies mid-batch surfaces as a
//!   failed per-node submission; the coordinator removes it from the
//!   ring (remapping only its keys), bumps `node_deaths`, and re-routes
//!   the orphaned jobs to their new owners. Re-execution is safe
//!   because results are deterministic and content-addressed — the
//!   identical idempotency argument behind the client's shed-retry
//!   machinery.
//!
//! The coordinator resolves and validates jobs itself (same catalog,
//! same [`resolve_job`]), mints its own job ids, and forwards backend
//! results verbatim — so a sweep through the coordinator produces
//! byte-identical result files to `--local`, which the offline gate
//! checks while killing a backend mid-sweep.
//!
//! Coordinator and backends must agree on `--tiny`: the digest is
//! computed against the coordinator's catalog/scale and must match what
//! the backend computes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use wib_bench::Runner;
use wib_core::{Counter, Exposition, Gauge, Json, Registry};
use wib_workloads::Workload;

use crate::cache::ResultCache;
use crate::client::{self, JobStatus, SubmitOptions};
use crate::protocol::{self, JobRequest, Request};
use crate::ring::HashRing;
use crate::server::{build_catalog, resolve_job};

/// How often a blocked connection reader wakes to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(100);

/// Per-connection socket write budget (mirrors the daemon's).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordOptions {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend daemon addresses to seed the ring with. Unreachable ones
    /// start on the dead list; more can join later (`{"op":"join"}`).
    pub backends: Vec<String>,
    /// Ring successors per node used for the cache-peering list (and
    /// the natural replica count of a key).
    pub replicas: usize,
    /// Virtual-node points per backend on the hash ring.
    pub vnodes: usize,
    /// Resolve jobs against the miniature test suite (must match the
    /// backends' `--tiny`).
    pub tiny: bool,
    /// Default measured instructions when a job names none.
    pub default_insts: u64,
    /// Default warm-up instructions when a job names none.
    pub default_warmup: u64,
    /// Suppress stderr logging.
    pub quiet: bool,
    /// File to write the bound address into once listening.
    pub port_file: Option<PathBuf>,
}

impl Default for CoordOptions {
    /// Loopback ephemeral port, 2 replicas, 64 vnodes, protocol
    /// defaults from the environment — the same defaulting chain as
    /// [`crate::server::ServerOptions`].
    fn default() -> CoordOptions {
        let runner = Runner::from_env();
        CoordOptions {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replicas: 2,
            vnodes: 64,
            tiny: false,
            default_insts: runner.insts,
            default_warmup: runner.warmup,
            quiet: false,
            port_file: None,
        }
    }
}

/// One accepted job on its way through the ring (already validated and
/// announced as `queued` to the client).
#[derive(Debug, Clone)]
struct Routed {
    id: u64,
    workload: String,
    digest: String,
    /// The fully resolved request forwarded to backends: explicit
    /// insts/warmup so backend defaults can never change the digest.
    request: JobRequest,
}

struct CoordShared {
    opts: CoordOptions,
    catalog: HashMap<String, Workload>,
    scale: &'static str,
    ring: Mutex<HashRing>,
    /// Nodes that were configured or joined but are currently believed
    /// dead (unreachable at startup, or failed mid-batch / mid-probe).
    dead: Mutex<Vec<String>>,
    registry: Registry,
    started: Instant,
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    rerouted: Counter,
    node_deaths: Counter,
    nodes_gauge: Gauge,
    uptime_ms: Gauge,
    next_job: AtomicU64,
    watchers: Mutex<HashMap<u64, Sender<String>>>,
    next_watcher: AtomicU64,
    shutting_down: AtomicBool,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    bound: SocketAddr,
}

impl CoordShared {
    fn log(&self, msg: &str) {
        if !self.opts.quiet {
            eprintln!("wib-coord: {msg}");
        }
    }

    fn lock_ring(&self) -> MutexGuard<'_, HashRing> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_dead(&self) -> MutexGuard<'_, Vec<String>> {
        self.dead.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_watchers(&self) -> MutexGuard<'_, HashMap<u64, Sender<String>>> {
        self.watchers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Send `ev` to the owning connection and every watcher (same
    /// fan-out contract as the daemon's `publish`).
    fn publish(&self, own: Option<&Sender<String>>, ev: &Json) {
        let line = ev.to_string();
        if let Some(tx) = own {
            let _ = tx.send(line.clone());
        }
        let mut watchers = self.lock_watchers();
        watchers.retain(|_, w| w.send(line.clone()).is_ok());
    }

    fn mark_finished(&self) {
        *self.finished.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.finished_cv.notify_all();
    }

    fn wait_finished(&self) {
        let mut done = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self
                .finished_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Per-node routing counter, registered on first use.
    fn routed_counter(&self, node: &str) -> Counter {
        self.registry.counter_with(
            "wib_coord_jobs_routed_total",
            "Jobs routed to each backend node.",
            &[("node", node)],
        )
    }

    fn refresh_gauges(&self) {
        self.nodes_gauge.set(self.lock_ring().len() as u64);
        self.uptime_ms
            .set(self.started.elapsed().as_millis() as u64);
    }

    /// Declare `node` dead: drop it from the ring (remapping only its
    /// keys), record the death, and re-push peer lists so the survivors'
    /// cache peering reflects the new ring. Idempotent.
    fn mark_dead(&self, node: &str, why: &str) {
        let peer_map = {
            let mut ring = self.lock_ring();
            if !ring.remove(node) {
                return; // already dead (two routers can race here)
            }
            self.node_deaths.inc();
            self.nodes_gauge.set(ring.len() as u64);
            peer_lists(&ring, self.opts.replicas)
        };
        self.lock_dead().push(node.to_string());
        self.log(&format!("node {node} marked dead: {why}"));
        self.push_peers(peer_map);
    }

    /// Add `node` to the ring (reviving it off the dead list if it was
    /// there) and re-push peer lists. Returns the new live-node count.
    fn add_node(&self, node: &str) -> usize {
        let (count, peer_map) = {
            let mut ring = self.lock_ring();
            ring.add(node);
            self.nodes_gauge.set(ring.len() as u64);
            (ring.len(), peer_lists(&ring, self.opts.replicas))
        };
        self.lock_dead().retain(|d| d != node);
        self.push_peers(peer_map);
        count
    }

    /// Install the given peer lists on their nodes, best-effort: a node
    /// that cannot take its list still serves, just without peering.
    fn push_peers(&self, map: Vec<(String, Vec<String>)>) {
        for (node, peers) in map {
            if let Err(e) = client::set_peers(&node, &peers) {
                self.log(&format!("failed to install peer list on {node}: {e}"));
            }
        }
    }

    /// The coordinator's own introspection snapshot (`{"op":"stats"}`).
    fn stats_json(&self) -> Json {
        let ring = self.lock_ring();
        let nodes: Vec<Json> = ring
            .nodes()
            .iter()
            .map(|n| Json::from(n.as_str()))
            .collect();
        let dead: Vec<Json> = self
            .lock_dead()
            .iter()
            .map(|n| Json::from(n.as_str()))
            .collect();
        Json::obj()
            .field("event", "stats")
            .field("schema", "wib-coord/stats-v1")
            .field("addr", self.bound.to_string())
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("uptime_ms", self.started.elapsed().as_millis() as u64)
            .field("scale", self.scale)
            .field("replicas", self.opts.replicas)
            .field("vnodes", self.opts.vnodes)
            .field("nodes", Json::Arr(nodes))
            .field("dead", Json::Arr(dead))
            .field("submitted", self.submitted.get())
            .field("completed", self.completed.get())
            .field("failed", self.failed.get())
            .field("cancelled", self.cancelled.get())
            .field("rerouted", self.rerouted.get())
            .field("node_deaths", self.node_deaths.get())
            .field("watchers", self.lock_watchers().len())
    }

    /// One merged registry: the coordinator's own metrics plus every
    /// live backend's scraped exposition, folded in through the
    /// deadlock-free `merge_from`. A node that fails its scrape is
    /// marked dead on the spot.
    fn merged_registry(&self) -> Registry {
        self.refresh_gauges();
        let merged = Registry::new();
        merged.merge_from(&self.registry);
        let nodes: Vec<String> = self.lock_ring().nodes().to_vec();
        for node in nodes {
            match client::metrics(&node) {
                Ok(text) => merged.merge_from(&Exposition::parse(&text).to_registry()),
                Err(e) => self.mark_dead(&node, &format!("metrics scrape failed: {e}")),
            }
        }
        merged
    }

    /// The cluster-wide view (`{"op":"cluster_stats"}`): per-node
    /// liveness and stats documents, plus fleet counters aggregated
    /// through [`CoordShared::merged_registry`].
    fn cluster_stats_json(&self) -> Json {
        // Snapshot the dead list first so nodes that die *during* the
        // probe below are reported exactly once (inline, alive:false).
        let dead_before: Vec<String> = self.lock_dead().clone();
        let nodes: Vec<String> = self.lock_ring().nodes().to_vec();
        let mut node_docs = Vec::new();
        for node in nodes {
            match client::stats(&node) {
                Ok(doc) => node_docs.push(
                    Json::obj()
                        .field("addr", node.as_str())
                        .field("alive", true)
                        .field("stats", doc),
                ),
                Err(e) => {
                    self.mark_dead(&node, &format!("stats probe failed: {e}"));
                    node_docs.push(
                        Json::obj()
                            .field("addr", node.as_str())
                            .field("alive", false)
                            .field("error", format!("{e}")),
                    );
                }
            }
        }
        for node in dead_before {
            node_docs.push(
                Json::obj()
                    .field("addr", node.as_str())
                    .field("alive", false),
            );
        }
        let exp = Exposition::parse(&self.merged_registry().render());
        let sum = |name: &str| exp.sum(name) as u64;
        let cluster = Json::obj()
            .field("jobs_submitted", sum("wib_serve_jobs_submitted_total"))
            .field("jobs_completed", sum("wib_serve_jobs_completed_total"))
            .field("jobs_failed", sum("wib_serve_jobs_failed_total"))
            .field("jobs_shed", sum("wib_serve_jobs_shed_total"))
            .field("cache_hits", sum("wib_serve_cache_hits_total"))
            .field("cache_misses", sum("wib_serve_cache_misses_total"))
            .field("cache_entries", sum("wib_serve_cache_entries"))
            .field("queue_depth", sum("wib_serve_queue_depth"))
            .field("peer_probes", sum("wib_serve_peer_probes_total"))
            .field("peer_hits", sum("wib_serve_peer_hits_total"));
        Json::obj()
            .field("event", "cluster_stats")
            .field("schema", "wib-coord/cluster-stats-v1")
            .field("addr", self.bound.to_string())
            .field("nodes", Json::Arr(node_docs))
            .field("submitted", self.submitted.get())
            .field("completed", self.completed.get())
            .field("failed", self.failed.get())
            .field("rerouted", self.rerouted.get())
            .field("node_deaths", self.node_deaths.get())
            .field("cluster", cluster)
    }

    /// Flip into shutdown and wake the accept loop.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log("shutdown requested");
        let _ = TcpStream::connect(self.bound);
    }
}

/// Every node's cache-peering list under the current ring: its
/// `replicas` clockwise successors, excluding itself.
fn peer_lists(ring: &HashRing, replicas: usize) -> Vec<(String, Vec<String>)> {
    ring.nodes()
        .iter()
        .map(|n| {
            let peers = ring
                .peers_of(n, replicas)
                .into_iter()
                .map(str::to_string)
                .collect();
            (n.clone(), peers)
        })
        .collect()
}

/// A running coordinator spawned with [`spawn`].
pub struct CoordHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
    shared: Arc<CoordShared>,
}

impl CoordHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown locally (does not touch the backends).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the coordinator has fully stopped.
    pub fn join(self) {
        self.thread.join().expect("coordinator thread panicked");
    }
}

/// Bind and start a coordinator in background threads. Backends from
/// [`CoordOptions::backends`] are pinged; reachable ones seed the ring
/// (and get their peer lists installed), unreachable ones start dead.
///
/// # Errors
/// Socket binding / port-file errors.
pub fn spawn(opts: CoordOptions) -> std::io::Result<CoordHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let bound = listener.local_addr()?;
    if let Some(path) = &opts.port_file {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, format!("{bound}\n"))?;
    }
    let registry = Registry::new();
    let mut ring = HashRing::new(opts.vnodes);
    let mut dead = Vec::new();
    for b in &opts.backends {
        match client::ping(b) {
            Ok(()) => {
                ring.add(b);
            }
            Err(e) => {
                if !opts.quiet {
                    eprintln!("wib-coord: backend {b} unreachable at startup: {e}");
                }
                dead.push(b.clone());
            }
        }
    }
    let shared = Arc::new(CoordShared {
        catalog: build_catalog(opts.tiny),
        scale: if opts.tiny { "tiny" } else { "eval" },
        ring: Mutex::new(ring),
        dead: Mutex::new(dead),
        started: Instant::now(),
        submitted: registry.counter(
            "wib_coord_jobs_submitted_total",
            "Jobs accepted and routed by the coordinator.",
        ),
        completed: registry.counter(
            "wib_coord_jobs_completed_total",
            "Jobs that came back done from a backend.",
        ),
        failed: registry.counter(
            "wib_coord_jobs_failed_total",
            "Jobs that ended in a terminal error at the coordinator.",
        ),
        cancelled: registry.counter(
            "wib_coord_jobs_cancelled_total",
            "Jobs a backend reported cancelled.",
        ),
        rerouted: registry.counter(
            "wib_coord_reroutes_total",
            "Jobs re-routed to a new owner after a node death.",
        ),
        node_deaths: registry.counter(
            "wib_coord_node_deaths_total",
            "Backend nodes declared dead and removed from the ring.",
        ),
        nodes_gauge: registry.gauge("wib_coord_nodes", "Live backend nodes in the ring."),
        uptime_ms: registry.gauge(
            "wib_coord_uptime_ms",
            "Milliseconds since the coordinator started.",
        ),
        registry,
        next_job: AtomicU64::new(1),
        watchers: Mutex::new(HashMap::new()),
        next_watcher: AtomicU64::new(1),
        shutting_down: AtomicBool::new(false),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
        bound,
        opts,
    });
    shared.refresh_gauges();
    shared.push_peers(peer_lists(&shared.lock_ring(), shared.opts.replicas));
    shared.log(&format!(
        "listening on {bound} ({} live node(s), {} dead, {} replicas, {} vnodes, {} suite)",
        shared.lock_ring().len(),
        shared.lock_dead().len(),
        shared.opts.replicas,
        shared.opts.vnodes,
        shared.scale
    ));
    let run_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("wib-coord-accept".to_string())
        .spawn(move || run_loop(run_shared, listener))?;
    Ok(CoordHandle {
        addr: bound,
        thread,
        shared,
    })
}

/// Bind and run a coordinator on the calling thread (the CLI `coord`
/// path). Prints the listening address to stdout.
///
/// # Errors
/// Socket binding / port-file errors.
pub fn run(opts: CoordOptions) -> std::io::Result<()> {
    let handle = spawn(opts)?;
    println!("wib-coord listening on {}", handle.addr());
    std::io::stdout().flush()?;
    handle.join();
    Ok(())
}

fn run_loop(shared: Arc<CoordShared>, listener: TcpListener) {
    let mut conn_handles = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("wib-coord-conn".to_string())
                    .spawn(move || handle_conn(shared, stream))
                    .expect("spawn connection thread");
                conn_handles.push(h);
            }
            Err(_) => continue,
        }
    }
    drop(listener);
    // Tell watchers the coordinator is gone, then drop their channels so
    // connection writer threads can exit.
    let farewell = Json::obj()
        .field("event", "shutdown")
        .field("completed", shared.completed.get())
        .field("errors", shared.failed.get())
        .field("cancelled", shared.cancelled.get());
    shared.publish(None, &farewell);
    shared.lock_watchers().clear();
    // Unblock any connection reader (including the one that requested
    // the shutdown, waiting in `wait_finished`) *before* joining them.
    shared.mark_finished();
    for h in conn_handles {
        let _ = h.join();
    }
    shared.log("stopped");
}

#[derive(Default)]
struct ConnState {
    watcher_id: Option<u64>,
}

fn handle_conn(shared: Arc<CoordShared>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("wib-coord-writer".to_string())
        .spawn(move || {
            let mut w = BufWriter::new(writer_stream);
            while let Ok(line) = rx.recv() {
                let sent = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
                if sent.is_err() {
                    break;
                }
            }
        })
        .expect("spawn writer thread");
    let mut conn = ConnState::default();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if dispatch(&shared, &tx, &mut conn, trimmed) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
    }
    if let Some(wid) = conn.watcher_id {
        shared.lock_watchers().remove(&wid);
    }
    shared.log(&format!("connection {peer} closed"));
    drop(tx);
    let _ = writer.join();
}

/// Handle one request line; returns `true` when the connection should
/// close (after a shutdown request completes).
fn dispatch(
    shared: &Arc<CoordShared>,
    tx: &Sender<String>,
    conn: &mut ConnState,
    line: &str,
) -> bool {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            let _ = tx.send(protocol::ev_protocol_error(&e).to_string());
            return false;
        }
    };
    match request {
        Request::Ping => {
            let _ = tx.send(Json::obj().field("event", "pong").to_string());
        }
        Request::Stats => {
            let _ = tx.send(shared.stats_json().to_string());
        }
        Request::ClusterStats => {
            let _ = tx.send(shared.cluster_stats_json().to_string());
        }
        Request::Metrics => {
            let text = shared.merged_registry().render();
            let _ = tx.send(protocol::ev_metrics(&text).to_string());
        }
        Request::Watch => {
            let wid = shared.next_watcher.fetch_add(1, Ordering::Relaxed);
            shared.lock_watchers().insert(wid, tx.clone());
            conn.watcher_id = Some(wid);
            let _ = tx.send(Json::obj().field("event", "watching").to_string());
        }
        Request::Join { addr } => match client::ping(&addr) {
            Ok(()) => {
                let nodes = shared.add_node(&addr);
                shared.log(&format!("node {addr} joined the ring ({nodes} live)"));
                let _ = tx.send(protocol::ev_joined(&addr, nodes).to_string());
            }
            Err(e) => {
                let _ = tx.send(
                    protocol::ev_protocol_error(&format!("join: backend {addr} unreachable: {e}"))
                        .to_string(),
                );
            }
        },
        Request::Submit {
            jobs,
            insts,
            warmup,
            deadline_ms,
        } => {
            route_batch(shared, tx, &jobs, insts, warmup, deadline_ms);
        }
        Request::Cancel { .. } => {
            let _ = tx.send(
                protocol::ev_protocol_error(
                    "cancel is not routed through the coordinator; cancel at the owning backend",
                )
                .to_string(),
            );
        }
        Request::CacheGet { .. } | Request::Peers { .. } => {
            let _ = tx.send(
                protocol::ev_protocol_error("backend-only op: this is the coordinator").to_string(),
            );
        }
        Request::Shutdown { drain } => {
            // Drain the whole cluster: ask every live backend to stop
            // first (their drains finish queued work), then stop here.
            let nodes: Vec<String> = shared.lock_ring().nodes().to_vec();
            for node in nodes {
                match client::shutdown(&node, drain) {
                    Ok(_) => shared.log(&format!("backend {node} shut down")),
                    Err(e) => shared.log(&format!("backend {node} shutdown failed: {e}")),
                }
            }
            shared.begin_shutdown();
            shared.wait_finished();
            let _ = tx.send(
                Json::obj()
                    .field("event", "shutdown")
                    .field("completed", shared.completed.get())
                    .field("errors", shared.failed.get())
                    .field("cancelled", shared.cancelled.get())
                    .to_string(),
            );
            return true;
        }
    }
    false
}

/// Validate, announce, route, and (re-)route one submitted batch until
/// every job is terminal. Each pass of the loop either finishes jobs or
/// removes a dead node from the ring, so it terminates.
fn route_batch(
    shared: &Arc<CoordShared>,
    tx: &Sender<String>,
    jobs: &[JobRequest],
    batch_insts: Option<u64>,
    batch_warmup: Option<u64>,
    batch_deadline: Option<u64>,
) {
    let mut pending: Vec<Routed> = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            shared.publish(
                Some(tx),
                &protocol::ev_rejected(index, &job.workload, "coordinator is shutting down"),
            );
            continue;
        }
        let resolved = resolve_job(
            &shared.catalog,
            job,
            batch_insts,
            batch_warmup,
            shared.opts.default_insts,
            shared.opts.default_warmup,
        );
        match resolved {
            Err(reason) => {
                shared.publish(
                    Some(tx),
                    &protocol::ev_rejected(index, &job.workload, &reason),
                );
            }
            Ok((name, cfg, insts, warmup)) => {
                let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
                let digest = ResultCache::key(&name, &cfg, insts, warmup, shared.scale);
                let spec = cfg.to_spec();
                let span = format!("coord-{id}");
                shared.submitted.inc();
                shared.publish(
                    Some(tx),
                    &protocol::ev_queued(id, index, &name, &spec, &digest, &span),
                );
                pending.push(Routed {
                    id,
                    workload: name.clone(),
                    digest,
                    request: JobRequest {
                        workload: name,
                        spec,
                        insts: Some(insts),
                        warmup: Some(warmup),
                        deadline_ms: job.deadline_ms.or(batch_deadline),
                    },
                });
            }
        }
    }
    while !pending.is_empty() {
        // Group by ring owner. An empty ring fails everything loudly.
        let mut groups: Vec<(String, Vec<Routed>)> = Vec::new();
        {
            let ring = shared.lock_ring();
            if ring.is_empty() {
                drop(ring);
                for r in pending.drain(..) {
                    shared.failed.inc();
                    shared.publish(
                        Some(tx),
                        &protocol::ev_error(r.id, &r.digest, "no live backend nodes in the ring"),
                    );
                }
                break;
            }
            for r in pending.drain(..) {
                let owner = ring
                    .primary(&r.digest)
                    .expect("non-empty ring has an owner")
                    .to_string();
                match groups.iter_mut().find(|(n, _)| *n == owner) {
                    Some((_, g)) => g.push(r),
                    None => groups.push((owner, vec![r])),
                }
            }
        }
        for (node, group) in &groups {
            shared.routed_counter(node).add(group.len() as u64);
            for r in group {
                shared.publish(Some(tx), &protocol::ev_running(r.id));
            }
        }
        // Fan out: one forwarding client per owner, concurrently. The
        // per-node submission reuses the full shed-retry client, so an
        // overloaded backend is retried there; only a *dead* one fails
        // the group and comes back here for re-routing.
        let results: Vec<Result<Vec<client::JobOutcome>, crate::ServeError>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(node, group)| {
                        s.spawn(move || {
                            let reqs: Vec<JobRequest> =
                                group.iter().map(|r| r.request.clone()).collect();
                            client::submit_with(node, &reqs, &SubmitOptions::default())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(crate::ServeError::Protocol(
                                "router thread panicked".to_string(),
                            ))
                        })
                    })
                    .collect()
            });
        for ((node, group), result) in groups.into_iter().zip(results) {
            match result {
                Ok(outcomes) => {
                    for (r, out) in group.into_iter().zip(outcomes) {
                        finish(shared, tx, r, out.status);
                    }
                }
                Err(e) => {
                    // The node died mid-batch. Completed-but-unreported
                    // work in the group is safe to re-run: results are
                    // deterministic and content-addressed, and the new
                    // owner peer-probes before simulating.
                    shared.mark_dead(&node, &format!("submit failed: {e}"));
                    shared.rerouted.add(group.len() as u64);
                    shared.log(&format!(
                        "re-routing {} job(s) after losing {node}",
                        group.len()
                    ));
                    pending.extend(group);
                }
            }
        }
    }
}

/// Publish one job's terminal event and bump the matching counter.
/// Backend results are forwarded verbatim — byte identity end to end.
fn finish(shared: &Arc<CoordShared>, tx: &Sender<String>, r: Routed, status: JobStatus) {
    match status {
        JobStatus::Done { cached, result } => {
            shared.completed.inc();
            shared.publish(Some(tx), &protocol::ev_done(r.id, cached, result));
        }
        JobStatus::Error(msg) => {
            shared.failed.inc();
            shared.publish(Some(tx), &protocol::ev_error(r.id, &r.digest, &msg));
        }
        JobStatus::Cancelled => {
            shared.cancelled.inc();
            shared.publish(Some(tx), &protocol::ev_cancelled(r.id));
        }
        JobStatus::Rejected(reason) => {
            // The client already saw this job `queued` (the coordinator
            // validated it), so a backend rejection must terminate it as
            // an error, never as a second `rejected` index.
            shared.failed.inc();
            shared.publish(
                Some(tx),
                &protocol::ev_error(
                    r.id,
                    &r.digest,
                    &format!("backend rejected the job: {reason}"),
                ),
            );
        }
        JobStatus::Shed { retry_after_ms } => {
            // The per-node client exhausted its own retry budget; hand
            // the backoff decision back to the submitting client, whose
            // shed machinery will resubmit the job to us.
            shared.publish(
                Some(tx),
                &protocol::ev_shed(r.id, &r.workload, retry_after_ms),
            );
        }
    }
}
