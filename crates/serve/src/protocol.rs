//! The NDJSON wire protocol.
//!
//! Every frame — request or event — is one JSON object on one line
//! (`\n`-terminated, no raw newlines inside thanks to the writer's
//! escaping). Requests carry an `"op"` discriminator, events an
//! `"event"` discriminator. See `docs/serve.md` for the full grammar.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","jobs":[{"workload":"gcc","spec":"wib:w=2048"},...],
//!  "insts":200000,"warmup":200000,          batch defaults optional;
//!  "deadline_ms":60000}                     per-job fields override
//! {"op":"stats"}                            introspection snapshot
//! {"op":"metrics"}                          Prometheus text exposition
//! {"op":"cancel","job":7}                   cancel a queued or running job
//! {"op":"watch"}                            subscribe to all job events
//! {"op":"shutdown","mode":"drain"|"now"}    graceful stop (default drain)
//! {"op":"ping"}                             liveness probe
//! {"op":"cache_get","digest":"ab12..."}     peer cache probe (no compute)
//! {"op":"peers","addrs":["h:p",...]}        install cache-peering list
//! {"op":"join","addr":"h:p"}                add a backend (coordinator)
//! {"op":"cluster_stats"}                    cluster view (coordinator)
//! ```
//!
//! Machine specs accept both the canonical [`MachineConfig::to_spec`]
//! grammar (`base`, `conv:iq=256`, `wib:w=2048,org=ideal,...`) and the
//! CLI shorthands (`wib2k`, `wib:512`, `conv:256`, `pool:8x256`,
//! `nonbanked:4`); either way the job is canonicalized through
//! `to_spec()` before hashing, so equivalent spellings share one cache
//! entry.

use wib_core::{Json, MachineConfig, WibOrganization};

/// Hard ceiling on per-job instruction counts (warm-up and measured
/// each): a submitted job may be expensive, but never unbounded.
pub const MAX_INSTS: u64 = 1_000_000_000;

/// Hard ceiling on per-job deadlines (24 h): a deadline exists to bound
/// a job's wall-clock cost, so an effectively-infinite one is a typo.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// One requested simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Benchmark name (validated against the daemon's workload catalog).
    pub workload: String,
    /// Machine spec (canonical or CLI shorthand).
    pub spec: String,
    /// Measured instructions (falls back to the batch, then the server
    /// default).
    pub insts: Option<u64>,
    /// Warm-up instructions (same fallback chain).
    pub warmup: Option<u64>,
    /// Wall-clock budget from the moment a worker picks the job up;
    /// expiry aborts the run within one stats epoch. Falls back to the
    /// batch default; `None` means unbounded.
    pub deadline_ms: Option<u64>,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a batch of jobs.
    Submit {
        /// The sweep points, in submission order.
        jobs: Vec<JobRequest>,
        /// Batch-level default for measured instructions.
        insts: Option<u64>,
        /// Batch-level default for warm-up instructions.
        warmup: Option<u64>,
        /// Batch-level default deadline (milliseconds of run time).
        deadline_ms: Option<u64>,
    },
    /// Introspection snapshot.
    Stats,
    /// Scrape the metrics registry (Prometheus text exposition).
    Metrics,
    /// Cancel a queued or running job by id.
    Cancel {
        /// The id from the job's `queued` event.
        job: u64,
    },
    /// Subscribe this connection to every job's lifecycle events.
    Watch,
    /// Stop the daemon; `drain` finishes queued work first.
    Shutdown {
        /// `true` = drain queue, `false` = cancel queued jobs.
        drain: bool,
    },
    /// Liveness probe.
    Ping,
    /// Look up one result-cache entry by digest, without computing on a
    /// miss — the cache-peering probe a ring neighbor sends before it
    /// pays for a simulation.
    CacheGet {
        /// The content digest (`ResultCache::key`).
        digest: String,
    },
    /// Install this node's cache-peering neighbor list (replaces any
    /// previous list). The coordinator pushes ring successors here.
    Peers {
        /// Peer daemon addresses, probed in order on a local miss.
        addrs: Vec<String>,
    },
    /// Coordinator only: add a backend node to the hash ring.
    Join {
        /// The backend daemon's address.
        addr: String,
    },
    /// Coordinator only: the cluster-wide aggregated view.
    ClusterStats,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    /// A human-readable description of the first problem; the server
    /// reports it as a `protocol_error` event and keeps the connection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op` field")?;
        match op {
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "watch" => Ok(Request::Watch),
            "ping" => Ok(Request::Ping),
            "cluster_stats" => Ok(Request::ClusterStats),
            "cache_get" => {
                let digest = doc
                    .get("digest")
                    .and_then(Json::as_str)
                    .filter(|d| !d.is_empty())
                    .ok_or("cache_get needs a non-empty string `digest` field")?;
                Ok(Request::CacheGet {
                    digest: digest.to_string(),
                })
            }
            "peers" => {
                let addrs_json = doc
                    .get("addrs")
                    .and_then(Json::as_arr)
                    .ok_or("peers needs an `addrs` array")?;
                let mut addrs = Vec::with_capacity(addrs_json.len());
                for (i, a) in addrs_json.iter().enumerate() {
                    let addr = a
                        .as_str()
                        .filter(|a| !a.is_empty())
                        .ok_or(format!("peers addr {i} must be a non-empty string"))?;
                    addrs.push(addr.to_string());
                }
                Ok(Request::Peers { addrs })
            }
            "join" => {
                let addr = doc
                    .get("addr")
                    .and_then(Json::as_str)
                    .filter(|a| !a.is_empty())
                    .ok_or("join needs a non-empty string `addr` field")?;
                Ok(Request::Join {
                    addr: addr.to_string(),
                })
            }
            "cancel" => {
                let job = doc
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("cancel needs a numeric `job` field")?;
                Ok(Request::Cancel { job })
            }
            "shutdown" => {
                let drain = match doc.get("mode").and_then(Json::as_str) {
                    None | Some("drain") => true,
                    Some("now") => false,
                    Some(other) => return Err(format!("unknown shutdown mode {other:?}")),
                };
                Ok(Request::Shutdown { drain })
            }
            "submit" => {
                let jobs_json = doc
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or("submit needs a `jobs` array")?;
                if jobs_json.is_empty() {
                    return Err("submit needs at least one job".to_string());
                }
                let deadline = |j: &Json, who: &str| -> Result<Option<u64>, String> {
                    match j.get("deadline_ms").and_then(Json::as_u64) {
                        None => Ok(None),
                        Some(0) => Err(format!("{who}: deadline_ms must be >= 1")),
                        Some(ms) if ms > MAX_DEADLINE_MS => {
                            Err(format!("{who}: deadline_ms exceeds {MAX_DEADLINE_MS}"))
                        }
                        Some(ms) => Ok(Some(ms)),
                    }
                };
                let mut jobs = Vec::with_capacity(jobs_json.len());
                for (i, j) in jobs_json.iter().enumerate() {
                    let field = |k: &str| j.get(k).and_then(Json::as_str).map(str::to_string);
                    let workload =
                        field("workload").ok_or(format!("job {i} needs a string `workload`"))?;
                    let spec = field("spec").ok_or(format!("job {i} needs a string `spec`"))?;
                    jobs.push(JobRequest {
                        workload,
                        spec,
                        insts: j.get("insts").and_then(Json::as_u64),
                        warmup: j.get("warmup").and_then(Json::as_u64),
                        deadline_ms: deadline(j, &format!("job {i}"))?,
                    });
                }
                Ok(Request::Submit {
                    jobs,
                    insts: doc.get("insts").and_then(Json::as_u64),
                    warmup: doc.get("warmup").and_then(Json::as_u64),
                    deadline_ms: deadline(&doc, "batch")?,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Parse a machine spec in either grammar (see module docs) and return
/// the configuration; callers canonicalize via `to_spec()`.
///
/// # Errors
/// The canonical grammar's error when neither grammar matches.
pub fn parse_machine_spec(spec: &str) -> Result<MachineConfig, String> {
    let spec = spec.trim();
    // CLI shorthands first: `wib:512` would otherwise die in `from_spec`
    // (which wants `wib:w=512`), and every shorthand is unambiguous.
    if spec == "wib2k" {
        return Ok(MachineConfig::wib_2k());
    }
    if let Some(n) = spec.strip_prefix("wib:").and_then(|n| n.parse().ok()) {
        return Ok(MachineConfig::wib_sized(n));
    }
    if let Some(n) = spec.strip_prefix("conv:").and_then(|n| n.parse().ok()) {
        return Ok(MachineConfig::conventional(n));
    }
    if let Some((s, b)) = spec.strip_prefix("pool:").and_then(|g| g.split_once('x')) {
        if let (Ok(slots), Ok(blocks)) = (s.parse(), b.parse()) {
            return Ok(MachineConfig::wib_pool(slots, blocks));
        }
    }
    if let Some(l) = spec.strip_prefix("nonbanked:").and_then(|l| l.parse().ok()) {
        return Ok(MachineConfig::wib_2k()
            .with_wib_organization(WibOrganization::NonBanked { latency: l }));
    }
    MachineConfig::from_spec(spec)
}

// ---------------------------------------------------------------------
// Event frames (server -> client)
// ---------------------------------------------------------------------

/// `queued`: the job was validated and entered the queue. `index` is
/// the job's position in *this* submit frame, which is what lets a
/// retrying client map freshly assigned ids back to its own jobs.
/// `span` is the tracing span id minted at submit; the job's later
/// `span` event carries the same id.
pub fn ev_queued(
    job: u64,
    index: usize,
    workload: &str,
    spec: &str,
    digest: &str,
    span: &str,
) -> Json {
    Json::obj()
        .field("event", "queued")
        .field("job", job)
        .field("index", index)
        .field("workload", workload)
        .field("spec", spec)
        .field("digest", digest)
        .field("span", span)
}

/// `rejected`: a submitted job failed validation (never queued).
pub fn ev_rejected(index: usize, workload: &str, reason: &str) -> Json {
    Json::obj()
        .field("event", "rejected")
        .field("index", index)
        .field("workload", workload)
        .field("reason", reason)
}

/// `running`: a worker started simulating the job.
pub fn ev_running(job: u64) -> Json {
    Json::obj().field("event", "running").field("job", job)
}

/// `interval`: one epoch of the job's interval time-series.
pub fn ev_interval(job: u64, sample: &wib_core::IntervalSample) -> Json {
    Json::obj()
        .field("event", "interval")
        .field("job", job)
        .field("sample", sample.to_json())
}

/// `done`: terminal success; `result` is the full result document.
pub fn ev_done(job: u64, cached: bool, result: Json) -> Json {
    Json::obj()
        .field("event", "done")
        .field("job", job)
        .field("cached", cached)
        .field("result", result)
}

/// `error`: terminal failure — the simulation panicked, or its deadline
/// expired. `digest` is the job's cache key so a crash report names the
/// exact configuration that died.
pub fn ev_error(job: u64, digest: &str, message: &str) -> Json {
    Json::obj()
        .field("event", "error")
        .field("job", job)
        .field("digest", digest)
        .field("message", message)
}

/// `shed`: terminal for this submission attempt; the queue was full and
/// the job was *not* accepted. The client should wait `retry_after_ms`
/// (jittered, grows with consecutive sheds) and resubmit.
pub fn ev_shed(job: u64, workload: &str, retry_after_ms: u64) -> Json {
    Json::obj()
        .field("event", "shed")
        .field("job", job)
        .field("workload", workload)
        .field("retry_after_ms", retry_after_ms)
}

/// `cancelled`: terminal; the job was cancelled while queued or running.
pub fn ev_cancelled(job: u64) -> Json {
    Json::obj().field("event", "cancelled").field("job", job)
}

/// `span`: the job's tracing record, emitted once just before its
/// terminal event. `stages` holds `{stage, us}` pairs in wall-clock
/// order; the durations are measured back-to-back from one clock, so
/// they sum exactly to `total_us` (the job's end-to-end latency from
/// queue entry to the terminal event).
pub fn ev_span(
    job: u64,
    span: &str,
    workload: &str,
    outcome: &str,
    stages: &[(&'static str, u64)],
    total_us: u64,
) -> Json {
    let stages: Vec<Json> = stages
        .iter()
        .map(|&(name, us)| Json::obj().field("stage", name).field("us", us))
        .collect();
    Json::obj()
        .field("event", "span")
        .field("job", job)
        .field("span", span)
        .field("workload", workload)
        .field("outcome", outcome)
        .field("stages", Json::Arr(stages))
        .field("total_us", total_us)
}

/// `metrics`: the full Prometheus text exposition, as one frame (the
/// newlines inside `text` are escaped by the JSON writer).
pub fn ev_metrics(text: &str) -> Json {
    Json::obj().field("event", "metrics").field("text", text)
}

/// `cache_entry`: reply to `cache_get`. On a hit `found` is true and
/// `result` carries the cached document; on a miss only `found:false`.
pub fn ev_cache_entry(digest: &str, result: Option<Json>) -> Json {
    let ev = Json::obj()
        .field("event", "cache_entry")
        .field("digest", digest)
        .field("found", result.is_some());
    match result {
        Some(doc) => ev.field("result", doc),
        None => ev,
    }
}

/// `peers`: reply to a `peers` install; echoes how many were stored.
pub fn ev_peers(count: usize) -> Json {
    Json::obj().field("event", "peers").field("count", count)
}

/// `joined`: reply to a coordinator `join`; echoes the new node and the
/// resulting live-node count.
pub fn ev_joined(addr: &str, nodes: usize) -> Json {
    Json::obj()
        .field("event", "joined")
        .field("addr", addr)
        .field("nodes", nodes)
}

/// `protocol_error`: the request line could not be honored.
pub fn ev_protocol_error(message: &str) -> Json {
    Json::obj()
        .field("event", "protocol_error")
        .field("message", message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(Request::parse(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(Request::parse(r#"{"op":"watch"}"#).unwrap(), Request::Watch);
        assert_eq!(
            Request::parse(r#"{"op":"cancel","job":12}"#).unwrap(),
            Request::Cancel { job: 12 }
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown { drain: true }
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown","mode":"now"}"#).unwrap(),
            Request::Shutdown { drain: false }
        );
        let r = Request::parse(
            r#"{"op":"submit","insts":5000,"deadline_ms":60000,
               "jobs":[{"workload":"gcc","spec":"base"},
                       {"workload":"em3d","spec":"wib2k","insts":100,"warmup":7,
                        "deadline_ms":250}]}"#,
        )
        .unwrap();
        match r {
            Request::Submit {
                jobs,
                insts,
                warmup,
                deadline_ms,
            } => {
                assert_eq!((insts, warmup), (Some(5000), None));
                assert_eq!(deadline_ms, Some(60000));
                assert_eq!(jobs.len(), 2);
                assert_eq!(jobs[0].workload, "gcc");
                assert_eq!(jobs[0].insts, None);
                assert_eq!(jobs[0].deadline_ms, None);
                assert_eq!(jobs[1].spec, "wib2k");
                assert_eq!((jobs[1].insts, jobs[1].warmup), (Some(100), Some(7)));
                assert_eq!(jobs[1].deadline_ms, Some(250));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_cluster_ops() {
        assert_eq!(
            Request::parse(r#"{"op":"cluster_stats"}"#).unwrap(),
            Request::ClusterStats
        );
        assert_eq!(
            Request::parse(r#"{"op":"cache_get","digest":"ab12"}"#).unwrap(),
            Request::CacheGet {
                digest: "ab12".to_string()
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"join","addr":"127.0.0.1:9000"}"#).unwrap(),
            Request::Join {
                addr: "127.0.0.1:9000".to_string()
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"peers","addrs":["a:1","b:2"]}"#).unwrap(),
            Request::Peers {
                addrs: vec!["a:1".to_string(), "b:2".to_string()]
            }
        );
        // An empty peer list is valid: it clears peering.
        assert_eq!(
            Request::parse(r#"{"op":"peers","addrs":[]}"#).unwrap(),
            Request::Peers { addrs: vec![] }
        );
    }

    #[test]
    fn cluster_event_frames_are_well_formed() {
        let hit = ev_cache_entry("ab12", Some(Json::obj().field("ok", true)));
        assert_eq!(hit.get("found").and_then(Json::as_bool), Some(true));
        assert!(hit.get("result").is_some());
        let miss = ev_cache_entry("ab12", None);
        assert_eq!(miss.get("found").and_then(Json::as_bool), Some(false));
        assert!(miss.get("result").is_none());
        for ev in [hit, miss, ev_peers(2), ev_joined("a:1", 3)] {
            let line = ev.to_string();
            assert!(!line.contains('\n'));
            assert!(ev.get("event").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"fly"}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","jobs":[]}"#,
            r#"{"op":"submit","jobs":[{"workload":"gcc"}]}"#,
            r#"{"op":"submit","jobs":[{"spec":"base"}]}"#,
            r#"{"op":"shutdown","mode":"eventually"}"#,
            r#"{"op":"submit","deadline_ms":0,"jobs":[{"workload":"gcc","spec":"base"}]}"#,
            r#"{"op":"submit","jobs":[{"workload":"gcc","spec":"base","deadline_ms":0}]}"#,
            r#"{"op":"submit","deadline_ms":99999999999,"jobs":[{"workload":"gcc","spec":"base"}]}"#,
            r#"{"op":"cache_get"}"#,
            r#"{"op":"cache_get","digest":""}"#,
            r#"{"op":"join"}"#,
            r#"{"op":"join","addr":""}"#,
            r#"{"op":"peers"}"#,
            r#"{"op":"peers","addrs":[7]}"#,
            r#"{"op":"peers","addrs":[""]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn spec_grammars_canonicalize_identically() {
        // Shorthand and canonical spellings land on the same machine,
        // hence the same cache identity.
        let a = parse_machine_spec("wib2k").unwrap();
        let b = parse_machine_spec("wib:w=2048").unwrap();
        let c = parse_machine_spec("wib:2048").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.spec_digest(), c.spec_digest());
        assert_eq!(
            parse_machine_spec("conv:256").unwrap(),
            parse_machine_spec("conv:iq=256").unwrap()
        );
        assert_eq!(
            parse_machine_spec("pool:8x256").unwrap(),
            parse_machine_spec("wib:w=2048,org=pool8x256").unwrap()
        );
        assert_eq!(
            parse_machine_spec("nonbanked:4").unwrap(),
            parse_machine_spec("wib:w=2048,org=nonbanked4").unwrap()
        );
        // Full canonical grammar passes through.
        let full = parse_machine_spec("wib:w=512,org=ideal,policy=rrl").unwrap();
        assert_eq!(full.to_spec(), "wib:w=512,org=ideal,policy=rrl");
        assert!(parse_machine_spec("warp-drive").is_err());
    }

    #[test]
    fn event_frames_are_single_lines_with_discriminators() {
        let evs = [
            ev_queued(1, 0, "gcc", "base", "abcd", "s-1"),
            ev_rejected(0, "bad\nname", "unknown workload"),
            ev_running(1),
            ev_done(1, true, Json::obj().field("ok", true)),
            ev_error(1, "abcd", "boom"),
            ev_shed(1, "gcc", 150),
            ev_cancelled(1),
            ev_span(1, "s-1", "gcc", "done", &[("queue", 10), ("run", 20)], 30),
            ev_metrics("# HELP x y\n# TYPE x counter\nx 1\n"),
            ev_protocol_error("bad line"),
        ];
        for ev in evs {
            let line = ev.to_string();
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            assert!(ev.get("event").and_then(Json::as_str).is_some());
        }
    }
}
