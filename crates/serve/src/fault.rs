//! Deterministic fault injection for the daemon.
//!
//! A [`FaultPlan`] names exact points at which the serving stack
//! misbehaves on purpose: worker panics, torn cache writes, forced
//! queue-full sheds, and slow or truncated client writes. Points are
//! *ordinals* — "the 2nd simulation attempt", "the 1st cache persist" —
//! counted by atomic counters, so a plan is reproducible even under a
//! racing worker pool: *some* attempt is the 2nd one, and exactly one
//! fault fires per listed ordinal.
//!
//! The plan is parsed from the `WIB_FAULTS` environment variable (or a
//! [`ServerOptions::faults`] string in tests). Grammar: comma-separated
//! `key=value` clauses, ordinal lists joined with `+`:
//!
//! ```text
//! WIB_FAULTS="seed=7,panic=1,tear=1,shed=2+3,slow=5,drop=4"
//!   seed=N    seed for jittered delays and backoff hints (default 0)
//!   panic=L   panic inside these simulation attempts (1-based ordinals)
//!   tear=L    crash these cache persists mid-write (torn temp, no rename)
//!   shed=L    force queue-full on these enqueue attempts
//!   slow=N    delay every client event write by a jittered 0..N ms
//!   drop=L    truncate these client event writes and kill the writer
//!   die=L     abort() the whole process on these job executions
//! ```
//!
//! `die` is the node-death fault for the distributed sweep fabric: the
//! L-th job a worker picks up `abort()`s the entire daemon (no unwind,
//! no drain — the coordinator sees a dead TCP peer). It only makes
//! sense for a daemon running as its own process; in-process test
//! servers must not arm it.
//!
//! The `seed` feeds [`wib_rng::StdRng`] *statelessly* — each jitter draw
//! seeds a fresh generator from `(seed, ordinal)` — so concurrent
//! threads never contend on RNG state and a given (seed, ordinal) pair
//! always yields the same delay, which is what makes the chaos gate's
//! assertions stable.
//!
//! [`ServerOptions::faults`]: crate::server::ServerOptions::faults

use std::sync::atomic::{AtomicU64, Ordering};

/// What to do to one client event write (see [`FaultPlan::next_client_write`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Deliver normally.
    None,
    /// Sleep this many milliseconds first (exercises write timeouts).
    Delay(u64),
    /// Write only a prefix of the frame, then fail the connection's
    /// writer (a peer that vanished mid-line).
    Truncate,
}

/// A parsed, counting fault-injection plan. A default plan injects
/// nothing and costs one relaxed atomic increment per instrumented point.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_at: Vec<u64>,
    tear_at: Vec<u64>,
    shed_at: Vec<u64>,
    drop_at: Vec<u64>,
    die_at: Vec<u64>,
    slow_write_ms: u64,
    sims: AtomicU64,
    cache_writes: AtomicU64,
    enqueues: AtomicU64,
    client_writes: AtomicU64,
    executions: AtomicU64,
}

impl FaultPlan {
    /// The inert plan: no faults, seed 0.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a `WIB_FAULTS` spec (see the module docs for the grammar).
    ///
    /// # Errors
    /// A description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` needs key=value"))?;
            let ordinals = || -> Result<Vec<u64>, String> {
                value
                    .split('+')
                    .map(|n| {
                        n.trim()
                            .parse::<u64>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("`{key}` wants 1-based ordinals, got `{n}`"))
                    })
                    .collect()
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("seed wants a number, got `{value}`"))?;
                }
                "panic" => plan.panic_at = ordinals()?,
                "tear" => plan.tear_at = ordinals()?,
                "shed" => plan.shed_at = ordinals()?,
                "drop" => plan.drop_at = ordinals()?,
                "die" => plan.die_at = ordinals()?,
                "slow" => {
                    plan.slow_write_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("slow wants milliseconds, got `{value}`"))?;
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// True if any injection point is armed (used to skip logging noise).
    pub fn is_active(&self) -> bool {
        !self.panic_at.is_empty()
            || !self.tear_at.is_empty()
            || !self.shed_at.is_empty()
            || !self.drop_at.is_empty()
            || !self.die_at.is_empty()
            || self.slow_write_ms > 0
    }

    /// Count one simulation attempt; true if it should panic.
    pub fn next_sim_panics(&self) -> bool {
        let n = self.sims.fetch_add(1, Ordering::Relaxed) + 1;
        self.panic_at.contains(&n)
    }

    /// Count one job execution; true if the whole process should
    /// `abort()` — node death, distinct from the per-job `panic` stream
    /// so the two compose. The caller does the aborting (and must be a
    /// real daemon process, never an in-process test server).
    pub fn next_execution_dies(&self) -> bool {
        let n = self.executions.fetch_add(1, Ordering::Relaxed) + 1;
        self.die_at.contains(&n)
    }

    /// Count one cache persist; true if it should crash mid-write.
    pub fn next_cache_write_tears(&self) -> bool {
        let n = self.cache_writes.fetch_add(1, Ordering::Relaxed) + 1;
        self.tear_at.contains(&n)
    }

    /// Count one enqueue attempt; true if it should be force-shed.
    pub fn next_enqueue_sheds(&self) -> bool {
        let n = self.enqueues.fetch_add(1, Ordering::Relaxed) + 1;
        self.shed_at.contains(&n)
    }

    /// Count one client event write and say how to (mis)deliver it.
    pub fn next_client_write(&self) -> WriteFault {
        let n = self.client_writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.drop_at.contains(&n) {
            return WriteFault::Truncate;
        }
        if self.slow_write_ms > 0 {
            return WriteFault::Delay(self.jitter_ms(n, self.slow_write_ms));
        }
        WriteFault::None
    }

    /// Deterministic jitter in `[0, bound]`: a fresh `wib_rng` generator
    /// seeded from `(plan seed, salt)`, so equal inputs always yield the
    /// same delay and no RNG state is shared across threads.
    pub fn jitter_ms(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let mut rng = wib_rng::StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e37_79b9));
        rng.random_range(0..=bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p = FaultPlan::parse("seed=7, panic=1+3, tear=2, shed=1, slow=5, drop=4").unwrap();
        assert!(p.is_active());
        assert_eq!(p.seed, 7);
        // Ordinal counting: attempts 1 and 3 panic, 2 does not.
        assert!(p.next_sim_panics());
        assert!(!p.next_sim_panics());
        assert!(p.next_sim_panics());
        assert!(!p.next_sim_panics());
        assert!(!p.next_cache_write_tears());
        assert!(p.next_cache_write_tears());
        assert!(p.next_enqueue_sheds());
        assert!(!p.next_enqueue_sheds());
        // Writes 1..3 delayed (slow=5), write 4 truncated.
        for _ in 0..3 {
            assert!(matches!(p.next_client_write(), WriteFault::Delay(ms) if ms <= 5));
        }
        assert_eq!(p.next_client_write(), WriteFault::Truncate);
    }

    #[test]
    fn empty_spec_is_inert_and_bad_specs_are_named() {
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(!FaultPlan::none().is_active());
        for bad in [
            "panic", "panic=0", "panic=x", "seed=z", "warp=1", "slow=ms", "die=0", "die=x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn die_ordinals_count_executions_independently_of_panics() {
        let p = FaultPlan::parse("die=2").unwrap();
        assert!(p.is_active());
        // The execution stream is its own counter: a panic on attempt 1
        // does not consume the die ordinal.
        assert!(!p.next_execution_dies());
        assert!(p.next_execution_dies());
        assert!(!p.next_execution_dies());
        assert!(!p.next_sim_panics());
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_salt() {
        let p = FaultPlan::parse("seed=42").unwrap();
        let q = FaultPlan::parse("seed=42").unwrap();
        assert_eq!(p.jitter_ms(3, 100), q.jitter_ms(3, 100));
        assert!(p.jitter_ms(3, 100) <= 100);
        assert_eq!(p.jitter_ms(9, 0), 0);
    }
}
