//! Content-addressed result cache.
//!
//! A job's identity is the FNV-1a digest of everything that determines
//! its (deterministic) output: the schema version, the workload name,
//! the suite scale (eval vs. tiny), the machine's canonical
//! [`spec_digest`], and the measurement protocol (warm-up and measured
//! instruction counts). Two submissions with the same digest *must*
//! produce byte-identical result documents — the simulator is
//! deterministic — so the cache can hand back the stored rendering
//! verbatim, and a resubmitted sweep point is free.
//!
//! Entries live in memory and, when a results directory is configured
//! (`WIB_RESULTS_DIR`), persist as `<dir>/cache/<digest>.json` so a
//! restarted daemon keeps its history. The directory is created
//! recursively on first use; persistence failures degrade to
//! memory-only operation rather than failing the job.
//!
//! [`spec_digest`]: MachineConfig::spec_digest

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use wib_core::{Json, MachineConfig};

/// Schema tag mixed into every cache key; bump on any result-format
/// change so stale on-disk entries miss instead of serving old shapes.
const KEY_SCHEMA: &str = "wib-serve/result-v1";

/// Introspection counters (see [`ResultCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries resident in memory.
    pub entries: usize,
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to a simulation.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The `cache` object of the daemon's introspection document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("entries", self.entries)
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("hit_rate", self.hit_rate())
    }
}

struct Inner {
    map: HashMap<String, Arc<String>>,
    hits: u64,
    misses: u64,
}

/// Thread-safe content-addressed store of rendered result documents.
pub struct ResultCache {
    /// `<results>/cache`, when persistence is enabled.
    dir: Option<PathBuf>,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache rooted at `results_dir` (persistence under
    /// `<results_dir>/cache/`), or memory-only when `None`.
    pub fn new(results_dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            dir: results_dir.map(|d| d.join("cache")),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The content address of one job: 16 hex digits over the canonical
    /// job description. Shares [`MachineConfig::spec_digest`] with the
    /// fuzzer's repro headers, so a repro names the cache identity of
    /// the config it ran on.
    pub fn key(
        workload: &str,
        cfg: &MachineConfig,
        insts: u64,
        warmup: u64,
        scale: &str,
    ) -> String {
        let canonical = format!(
            "{KEY_SCHEMA}\n{workload}\n{scale}\n{}\n{insts}\n{warmup}",
            cfg.spec_digest()
        );
        wib_core::fnv1a64_hex(canonical.as_bytes())
    }

    /// Look up a digest, falling back to the on-disk entry (which is
    /// loaded into memory). Counts a hit or miss either way.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(doc) = inner.map.get(key).cloned() {
            inner.hits += 1;
            return Some(doc);
        }
        if let Some(dir) = &self.dir {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("{key}.json"))) {
                // Guard against truncated/corrupt files: a cache entry
                // must parse, or we recompute.
                if Json::parse(text.trim_end()).is_ok() {
                    let doc = Arc::new(text.trim_end().to_string());
                    inner.map.insert(key.to_string(), Arc::clone(&doc));
                    inner.hits += 1;
                    return Some(doc);
                }
            }
        }
        inner.misses += 1;
        None
    }

    /// Store a rendered result document under `key` (memory, and disk
    /// when persistence is on). Returns the shared rendering. Lost
    /// store races are benign: determinism makes both renderings equal.
    pub fn put(&self, key: &str, doc: String) -> Arc<String> {
        let doc = Arc::new(doc);
        if let Some(dir) = &self.dir {
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{key}.json")), format!("{doc}\n")))
            {
                eprintln!("wib-serve: cache persistence disabled for {key}: {e}");
            }
        }
        self.inner
            .lock()
            .unwrap()
            .map
            .insert(key.to_string(), Arc::clone(&doc));
        doc
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wib_cache_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_content_addresses() {
        let base = MachineConfig::base_8way();
        let wib = MachineConfig::wib_2k();
        let k = ResultCache::key("gcc", &base, 1000, 100, "eval");
        assert_eq!(k, ResultCache::key("gcc", &base, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gzip", &base, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &wib, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 2000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 1000, 200, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 1000, 100, "tiny"));
        assert_eq!(k.len(), 16);
    }

    #[test]
    fn memory_hits_and_misses_are_counted() {
        let c = ResultCache::new(None);
        let key = "00112233deadbeef";
        assert!(c.get(key).is_none());
        c.put(key, "{\"x\":1}".into());
        assert_eq!(c.get(key).as_deref().map(String::as_str), Some("{\"x\":1}"));
        let s = c.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn persists_across_instances() {
        let dir = tmp("persist");
        let c1 = ResultCache::new(Some(dir.clone()));
        c1.put("aaaa000011112222", "{\"doc\":true}".into());
        // A fresh cache over the same directory finds the entry on disk.
        let c2 = ResultCache::new(Some(dir.clone()));
        assert_eq!(
            c2.get("aaaa000011112222").as_deref().map(String::as_str),
            Some("{\"doc\":true}")
        );
        assert_eq!(c2.stats().hits, 1);
        // Corrupt entries are ignored, not served.
        std::fs::write(dir.join("cache/bad0bad0bad0bad0.json"), "{truncated").unwrap();
        let c3 = ResultCache::new(Some(dir.clone()));
        assert!(c3.get("bad0bad0bad0bad0").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_directory_means_memory_only() {
        let c = ResultCache::new(None);
        c.put("ffff0000ffff0000", "{}".into());
        // Nothing written anywhere; a second memory-only cache misses.
        let c2 = ResultCache::new(None);
        assert!(c2.get("ffff0000ffff0000").is_none());
        assert_eq!(c.stats().entries, 1);
    }
}
