//! Content-addressed result cache with crash-safe persistence.
//!
//! A job's identity is the FNV-1a digest of everything that determines
//! its (deterministic) output: the schema version, the workload name,
//! the suite scale (eval vs. tiny), the machine's canonical
//! [`spec_digest`], and the measurement protocol (warm-up and measured
//! instruction counts). Two submissions with the same digest *must*
//! produce byte-identical result documents — the simulator is
//! deterministic — so the cache can hand back the stored rendering
//! verbatim, and a resubmitted sweep point is free.
//!
//! Entries live in memory and, when a results directory is configured
//! (`WIB_RESULTS_DIR`), persist as `<dir>/cache/<digest>.json`.
//!
//! # Crash safety
//!
//! A daemon can be `kill -9`ed (or lose power) at any byte of a cache
//! write, and the cache must never serve a torn entry afterwards. Every
//! persist therefore goes through the classic atomic-publish sequence:
//!
//! 1. write the full entry to `<digest>.json.tmp`,
//! 2. `fsync` the temp file,
//! 3. atomically `rename` it over `<digest>.json`,
//! 4. `fsync` the directory so the rename itself is durable.
//!
//! An entry file starts with a one-line generation header
//! (`wib-serve-cache/v2 <digest>`) followed by the document. Loads
//! reject anything whose header generation or digest does not match, or
//! whose document does not parse — truncation can only ever produce one
//! of those, so "parses with the right header" is the integrity check.
//! Orphaned `.tmp` files (a crash between steps 1 and 3) are scavenged
//! on startup and counted in [`CacheStats::scavenged`].
//!
//! Persistence failures degrade to memory-only operation rather than
//! failing the job; a [`FaultPlan`] can tear a write on purpose to prove
//! all of the above under test.
//!
//! [`spec_digest`]: MachineConfig::spec_digest

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use wib_core::{Counter, Gauge, Json, MachineConfig, Registry};

use crate::fault::FaultPlan;

/// Schema tag mixed into every cache key; bump on any result-format
/// change so stale on-disk entries miss instead of serving old shapes.
const KEY_SCHEMA: &str = "wib-serve/result-v1";

/// On-disk entry generation header. Bump the generation on any change to
/// the entry *file* format; older files then fail the header check and
/// are recomputed (their keys still match, so one recomputation each).
const GENERATION: &str = "wib-serve-cache/v2";

/// Introspection counters (see [`ResultCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries resident in memory.
    pub entries: usize,
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to a simulation.
    pub misses: u64,
    /// Orphaned `.tmp` files removed at startup (crash mid-publish).
    pub scavenged: u64,
    /// On-disk entries rejected at load time (bad header, torn document).
    pub rejected: u64,
    /// Persists that failed (I/O error or injected tear); the entry
    /// stayed memory-only.
    pub persist_failures: u64,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The `cache` object of the daemon's introspection document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("entries", self.entries)
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("hit_rate", self.hit_rate())
            .field("scavenged", self.scavenged)
            .field("rejected", self.rejected)
            .field("persist_failures", self.persist_failures)
    }
}

/// Thread-safe content-addressed store of rendered result documents.
///
/// Counters are registry-backed [`Counter`]/[`Gauge`] handles: the same
/// cells feed both [`ResultCache::stats`] (the `stats` snapshot) and the
/// Prometheus exposition — one code path, two read surfaces.
pub struct ResultCache {
    /// `<results>/cache`, when persistence is enabled.
    dir: Option<PathBuf>,
    faults: Arc<FaultPlan>,
    inner: Mutex<HashMap<String, Arc<String>>>,
    entries: Gauge,
    hits: Counter,
    misses: Counter,
    scavenged: Counter,
    rejected: Counter,
    persist_failures: Counter,
}

impl ResultCache {
    /// A cache rooted at `results_dir` (persistence under
    /// `<results_dir>/cache/`), or memory-only when `None`. Scavenges
    /// temp files orphaned by a crashed predecessor.
    pub fn new(results_dir: Option<PathBuf>) -> ResultCache {
        ResultCache::with_faults(results_dir, Arc::new(FaultPlan::none()))
    }

    /// [`ResultCache::new`] with a fault-injection plan attached (the
    /// daemon shares one plan across all its subsystems).
    pub fn with_faults(results_dir: Option<PathBuf>, faults: Arc<FaultPlan>) -> ResultCache {
        ResultCache::with_metrics(results_dir, faults, &Registry::new())
    }

    /// [`ResultCache::with_faults`] with the cache's counters registered
    /// in `registry` (a throwaway registry when the caller has none).
    pub fn with_metrics(
        results_dir: Option<PathBuf>,
        faults: Arc<FaultPlan>,
        registry: &Registry,
    ) -> ResultCache {
        let dir = results_dir.map(|d| d.join("cache"));
        let scavenged = registry.counter(
            "wib_serve_cache_scavenged_total",
            "Orphaned cache temp files removed at startup.",
        );
        scavenged.add(dir.as_deref().map_or(0, Self::scavenge_temps));
        ResultCache {
            dir,
            faults,
            inner: Mutex::new(HashMap::new()),
            entries: registry.gauge(
                "wib_serve_cache_entries",
                "Result-cache entries resident in memory.",
            ),
            hits: registry.counter(
                "wib_serve_cache_hits_total",
                "Result-cache lookups served from memory or disk.",
            ),
            misses: registry.counter(
                "wib_serve_cache_misses_total",
                "Result-cache lookups that fell through to a simulation.",
            ),
            scavenged,
            rejected: registry.counter(
                "wib_serve_cache_rejected_total",
                "On-disk cache entries that failed the integrity check.",
            ),
            persist_failures: registry.counter(
                "wib_serve_cache_persist_failures_total",
                "Cache persists that failed; the entry stayed memory-only.",
            ),
        }
    }

    /// Remove `*.tmp` leftovers from a crash between temp-write and
    /// rename. They are unpublished by construction — the rename never
    /// happened — so deleting them can never lose a committed entry.
    fn scavenge_temps(dir: &Path) -> u64 {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0; // no directory yet: nothing orphaned
        };
        let mut scavenged = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".tmp")
                && std::fs::remove_file(entry.path()).is_ok()
            {
                scavenged += 1;
            }
        }
        scavenged
    }

    /// The content address of one job: 16 hex digits over the canonical
    /// job description. Shares [`MachineConfig::spec_digest`] with the
    /// fuzzer's repro headers, so a repro names the cache identity of
    /// the config it ran on.
    pub fn key(
        workload: &str,
        cfg: &MachineConfig,
        insts: u64,
        warmup: u64,
        scale: &str,
    ) -> String {
        let canonical = format!(
            "{KEY_SCHEMA}\n{workload}\n{scale}\n{}\n{insts}\n{warmup}",
            cfg.spec_digest()
        );
        wib_core::fnv1a64_hex(canonical.as_bytes())
    }

    /// Validate one on-disk entry: generation header naming this key,
    /// then a parseable document. Returns the document text.
    fn validate_entry(key: &str, text: &str) -> Option<String> {
        let (header, doc) = text.split_once('\n')?;
        let expected = format!("{GENERATION} {key}");
        if header.trim_end() != expected {
            return None;
        }
        let doc = doc.trim_end();
        Json::parse(doc).ok()?;
        Some(doc.to_string())
    }

    /// Look up a digest, falling back to the on-disk entry (which is
    /// loaded into memory). Counts a hit or miss either way; entries
    /// that fail the integrity check count as `rejected` misses.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        self.lookup(key, true)
    }

    /// [`ResultCache::get`] without touching the hit/miss counters — the
    /// peer-serving path: a `cache_get` probe from a ring neighbor must
    /// not distort this node's own hit-rate telemetry. Integrity
    /// rejections are still counted.
    pub fn peek(&self, key: &str) -> Option<Arc<String>> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &str, count: bool) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(doc) = inner.get(key).cloned() {
            if count {
                self.hits.inc();
            }
            return Some(doc);
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{key}.json"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                match Self::validate_entry(key, &text) {
                    Some(doc) => {
                        let doc = Arc::new(doc);
                        inner.insert(key.to_string(), Arc::clone(&doc));
                        self.entries.set(inner.len() as u64);
                        if count {
                            self.hits.inc();
                        }
                        return Some(doc);
                    }
                    None => self.rejected.inc(),
                }
            }
        }
        if count {
            self.misses.inc();
        }
        None
    }

    /// The atomic-publish sequence (see the module docs). The injected
    /// `tear` fault simulates a crash between steps 1 and 3: a partial
    /// temp file is left behind and the rename never happens.
    fn persist(&self, dir: &Path, key: &str, doc: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{key}.json.tmp"));
        let path = dir.join(format!("{key}.json"));
        let payload = format!("{GENERATION} {key}\n{doc}\n");
        if self.faults.next_cache_write_tears() {
            // Crash mid-write: half the bytes, no fsync, no publish.
            let _ = std::fs::write(&tmp, &payload.as_bytes()[..payload.len() / 2]);
            return Err(std::io::Error::other("injected fault: torn cache write"));
        }
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(payload.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable. Failure here is acceptable —
        // worst case the entry vanishes on power loss and is recomputed.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Store a rendered result document under `key` (memory, and disk
    /// when persistence is on). Returns the shared rendering. Lost
    /// store races are benign: determinism makes both renderings equal.
    pub fn put(&self, key: &str, doc: String) -> Arc<String> {
        let doc = Arc::new(doc);
        let persist_failed = if let Some(dir) = &self.dir {
            match self.persist(dir, key, &doc) {
                Ok(()) => false,
                Err(e) => {
                    eprintln!("wib-serve: cache persistence failed for {key}: {e}");
                    true
                }
            }
        } else {
            false
        };
        let mut inner = self.inner.lock().unwrap();
        if persist_failed {
            self.persist_failures.inc();
        }
        inner.insert(key.to_string(), Arc::clone(&doc));
        self.entries.set(inner.len() as u64);
        doc
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.inner.lock().unwrap().len(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            scavenged: self.scavenged.get(),
            rejected: self.rejected.get(),
            persist_failures: self.persist_failures.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wib_cache_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn keys_are_content_addresses() {
        let base = MachineConfig::base_8way();
        let wib = MachineConfig::wib_2k();
        let k = ResultCache::key("gcc", &base, 1000, 100, "eval");
        assert_eq!(k, ResultCache::key("gcc", &base, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gzip", &base, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &wib, 1000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 2000, 100, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 1000, 200, "eval"));
        assert_ne!(k, ResultCache::key("gcc", &base, 1000, 100, "tiny"));
        assert_eq!(k.len(), 16);
    }

    #[test]
    fn memory_hits_and_misses_are_counted() {
        let c = ResultCache::new(None);
        let key = "00112233deadbeef";
        assert!(c.get(key).is_none());
        c.put(key, "{\"x\":1}".into());
        assert_eq!(c.get(key).as_deref().map(String::as_str), Some("{\"x\":1}"));
        let s = c.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn persists_across_instances() {
        let dir = tmp("persist");
        let c1 = ResultCache::new(Some(dir.clone()));
        c1.put("aaaa000011112222", "{\"doc\":true}".into());
        // No temp file survives a successful publish.
        assert!(!dir.join("cache/aaaa000011112222.json.tmp").exists());
        // A fresh cache over the same directory finds the entry on disk.
        let c2 = ResultCache::new(Some(dir.clone()));
        assert_eq!(
            c2.get("aaaa000011112222").as_deref().map(String::as_str),
            Some("{\"doc\":true}")
        );
        assert_eq!(c2.stats().hits, 1);
        // Corrupt entries are ignored, not served.
        std::fs::write(
            dir.join("cache/bad0bad0bad0bad0.json"),
            format!("{GENERATION} bad0bad0bad0bad0\n{{truncated"),
        )
        .unwrap();
        let c3 = ResultCache::new(Some(dir.clone()));
        assert!(c3.get("bad0bad0bad0bad0").is_none());
        assert_eq!(c3.stats().rejected, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_surface_in_a_shared_registry() {
        // The same cells back `stats()` and the exposition: no second
        // code path to drift.
        let r = Registry::new();
        let c = ResultCache::with_metrics(None, Arc::new(FaultPlan::none()), &r);
        assert!(c.get("0123456789abcdef").is_none());
        c.put("0123456789abcdef", "{}".into());
        assert!(c.get("0123456789abcdef").is_some());
        let exp = wib_core::Exposition::parse(&r.render());
        assert_eq!(exp.value("wib_serve_cache_hits_total"), Some(1.0));
        assert_eq!(exp.value("wib_serve_cache_misses_total"), Some(1.0));
        assert_eq!(exp.value("wib_serve_cache_entries"), Some(1.0));
        assert_eq!(exp.value("wib_serve_cache_scavenged_total"), Some(0.0));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn peek_serves_without_counting_hits_or_misses() {
        let c = ResultCache::new(None);
        assert!(c.peek("00112233deadbeef").is_none());
        c.put("00112233deadbeef", "{\"x\":1}".into());
        assert!(c.peek("00112233deadbeef").is_some());
        let s = c.stats();
        // Peer probes leave the node's own hit-rate telemetry alone.
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn no_directory_means_memory_only() {
        let c = ResultCache::new(None);
        c.put("ffff0000ffff0000", "{}".into());
        // Nothing written anywhere; a second memory-only cache misses.
        let c2 = ResultCache::new(None);
        assert!(c2.get("ffff0000ffff0000").is_none());
        assert_eq!(c.stats().entries, 1);
    }
}
