//! Crash-safety tests for the persistent result cache.
//!
//! Each test stages an on-disk state a crashed or corrupted daemon
//! could leave behind — a truncated entry, a stale generation header,
//! an orphaned temp file, a torn write over an older committed entry —
//! and asserts that a fresh [`ResultCache`] either serves a valid
//! document or cleanly treats the damage as a miss. At no point may
//! corruption be served back to a client.

use std::path::PathBuf;
use std::sync::Arc;

use wib_serve::{FaultPlan, ResultCache};

/// Fresh scratch directory (results root; the cache nests under
/// `<root>/cache/`).
fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wib_cache_crash_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn entry_path(root: &PathBuf, key: &str) -> PathBuf {
    root.join("cache").join(format!("{key}.json"))
}

const KEY: &str = "00000000deadbeef";
const DOC: &str = "{\"ipc\": 1.5}";

#[test]
fn a_committed_entry_survives_a_process_restart() {
    let root = scratch("restart");
    ResultCache::new(Some(root.clone())).put(KEY, DOC.to_string());

    // A second cache on the same directory models the restarted daemon.
    let revived = ResultCache::new(Some(root.clone()));
    let doc = revived.get(KEY).expect("committed entry must survive");
    assert_eq!(doc.as_str(), DOC);
    let s = revived.stats();
    assert_eq!((s.hits, s.misses, s.rejected), (1, 0, 0));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_truncated_entry_is_a_miss_not_garbage() {
    let root = scratch("truncated");
    ResultCache::new(Some(root.clone())).put(KEY, DOC.to_string());

    // Chop the committed file mid-document, as a dying filesystem might.
    let path = entry_path(&root, KEY);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text.as_bytes()[..text.len() - 5]).unwrap();

    let revived = ResultCache::new(Some(root.clone()));
    assert!(revived.get(KEY).is_none(), "truncated entry must not hit");
    let s = revived.stats();
    assert_eq!((s.hits, s.misses, s.rejected), (0, 1, 1));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_stale_generation_header_is_a_miss() {
    let root = scratch("generation");
    std::fs::create_dir_all(root.join("cache")).unwrap();

    // A valid document under an older cache generation: readable, but
    // the format contract has moved on, so it must be recomputed.
    std::fs::write(
        entry_path(&root, KEY),
        format!("wib-serve-cache/v1 {KEY}\n{DOC}\n"),
    )
    .unwrap();

    let cache = ResultCache::new(Some(root.clone()));
    assert!(cache.get(KEY).is_none(), "old generation must not hit");
    assert_eq!(cache.stats().rejected, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_header_naming_another_key_is_a_miss() {
    let root = scratch("wrong_key");
    std::fs::create_dir_all(root.join("cache")).unwrap();

    // Right generation, wrong identity — e.g. a file renamed by hand.
    std::fs::write(
        entry_path(&root, KEY),
        format!("wib-serve-cache/v2 ffffffff00000000\n{DOC}\n"),
    )
    .unwrap();

    let cache = ResultCache::new(Some(root.clone()));
    assert!(cache.get(KEY).is_none(), "mismatched key must not hit");
    assert_eq!(cache.stats().rejected, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn orphaned_temps_are_scavenged_and_committed_entries_are_not() {
    let root = scratch("scavenge");
    ResultCache::new(Some(root.clone())).put(KEY, DOC.to_string());

    // Two temp files orphaned by a crash between write and rename.
    let cache_dir = root.join("cache");
    std::fs::write(cache_dir.join("1111222233334444.json.tmp"), "partial").unwrap();
    std::fs::write(cache_dir.join("5555666677778888.json.tmp"), "").unwrap();

    let revived = ResultCache::new(Some(root.clone()));
    assert_eq!(revived.stats().scavenged, 2);
    let leftover: Vec<_> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        leftover,
        vec![format!("{KEY}.json")],
        "temps removed, committed entry kept"
    );
    assert!(revived.get(KEY).is_some(), "scavenging must not touch data");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_torn_write_never_clobbers_the_committed_entry() {
    let root = scratch("torn");
    ResultCache::new(Some(root.clone())).put(KEY, DOC.to_string());

    // A later write of the same key tears mid-temp-file (simulated
    // crash). The rename never happens, so the committed entry must be
    // untouched on disk.
    let faulty = ResultCache::with_faults(
        Some(root.clone()),
        Arc::new(FaultPlan::parse("seed=3,tear=1").unwrap()),
    );
    faulty.put(KEY, "{\"ipc\": 9.9}".to_string());
    assert_eq!(faulty.stats().persist_failures, 1);

    // The restarted daemon scavenges the torn temp and still serves the
    // original committed document.
    let revived = ResultCache::new(Some(root.clone()));
    assert_eq!(revived.stats().scavenged, 1, "torn temp left behind");
    let doc = revived.get(KEY).expect("committed entry survives the tear");
    assert_eq!(doc.as_str(), DOC);
    let _ = std::fs::remove_dir_all(&root);
}
