//! Fault-tolerance tests over a real loopback daemon.
//!
//! Each test arms a deterministic [`FaultPlan`] (via
//! `ServerOptions::faults`) or exercises a failure path directly —
//! panicking workers, deadlines on running jobs, cancellation mid-run,
//! overload shedding, watcher disconnects — and then proves the daemon
//! is still healthy: later jobs complete, counters account for what
//! happened, and `ServerHandle::join` returning shows no thread leaked.
//!
//! [`FaultPlan`]: wib_serve::FaultPlan

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use wib_core::Json;
use wib_serve::client::{self, SubmitOptions};
use wib_serve::server::{self};
use wib_serve::{JobRequest, JobStatus, ServerOptions};

const INSTS: u64 = 20_000;
const WARMUP: u64 = 2_000;

fn opts(workers: usize, queue_capacity: usize, faults: &str) -> ServerOptions {
    ServerOptions {
        workers,
        queue_capacity,
        tiny: true,
        results_dir: None,
        default_insts: INSTS,
        default_warmup: WARMUP,
        quiet: true,
        faults: if faults.is_empty() {
            None
        } else {
            Some(faults.to_string())
        },
        ..ServerOptions::default()
    }
}

fn job(workload: &str, spec: &str) -> JobRequest {
    JobRequest {
        workload: workload.to_string(),
        spec: spec.to_string(),
        insts: None,
        warmup: None,
        deadline_ms: None,
    }
}

fn stat(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats doc lacks {key}: {doc}"))
}

#[test]
fn a_bad_fault_spec_refuses_to_spawn() {
    let err = match server::spawn(opts(1, 4, "warp=1")) {
        Ok(_) => panic!("unknown fault kind must fail to spawn"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("warp"), "error names the clause");
}

#[test]
fn a_worker_panic_is_isolated_and_the_pool_survives() {
    // One worker; the first simulation attempt panics. The job must come
    // back as a structured `error` carrying the spec digest, and the
    // same worker must then complete both remaining jobs.
    let handle = server::spawn(opts(1, 8, "seed=1,panic=1")).unwrap();
    let addr = handle.addr().to_string();
    let jobs = vec![job("gzip", "base"), job("em3d", "base"), job("mst", "base")];
    let outcomes = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    assert_eq!(outcomes.len(), 3);
    let failed: Vec<_> = outcomes.iter().filter(|o| !o.succeeded()).collect();
    assert_eq!(failed.len(), 1, "exactly the injected panic fails");
    let JobStatus::Error(msg) = &failed[0].status else {
        panic!(
            "panicked job must be an Error outcome: {:?}",
            failed[0].status
        );
    };
    assert!(msg.contains("panicked"), "message names the panic: {msg}");
    assert!(
        !failed[0].digest.is_empty(),
        "error outcome keeps its digest"
    );

    // The daemon is healthy: a resubmission of the failed job succeeds
    // (the fault ordinal has passed) and the counters add up.
    let retry = client::submit(
        &addr,
        &[job(&failed[0].workload, "base")],
        None,
        None,
        None,
        false,
    )
    .expect("resubmit");
    assert!(retry[0].succeeded(), "resubmitted job completes");
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stat(&stats, "panicked"), 1);
    assert_eq!(stat(&stats, "errors"), 1);
    assert_eq!(stat(&stats, "completed"), 3);
    assert_eq!(
        stat(&stats, "worker_restarts"),
        0,
        "panic stayed inside job isolation"
    );
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn a_running_job_can_be_cancelled_within_one_epoch() {
    // A very long job on one worker; cancel it *after* it starts
    // running. The engine polls its token at epoch boundaries, so the
    // terminal `cancelled` event must arrive promptly.
    let handle = server::spawn(opts(1, 4, "")).unwrap();
    let addr = handle.addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    // ~2e8 instructions: minutes of simulation if not cancelled.
    w.write_all(
        b"{\"op\":\"submit\",\"jobs\":[{\"workload\":\"gzip\",\"spec\":\"base\",\
          \"insts\":200000000,\"warmup\":0}]}\n",
    )
    .unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    let mut job_id = 0;
    // Wait for the job to be *running*, then cancel it.
    loop {
        line.clear();
        r.read_line(&mut line).unwrap();
        let ev = Json::parse(line.trim()).unwrap();
        match ev.get("event").and_then(Json::as_str) {
            Some("queued") => job_id = ev.get("job").and_then(Json::as_u64).unwrap(),
            Some("running") => break,
            other => panic!("unexpected event before running: {other:?}"),
        }
    }
    let started = std::time::Instant::now();
    w.write_all(format!("{{\"op\":\"cancel\",\"job\":{job_id}}}\n").as_bytes())
        .unwrap();
    w.flush().unwrap();
    let mut saw_ack = false;
    let mut saw_terminal = false;
    while !(saw_ack && saw_terminal) {
        line.clear();
        r.read_line(&mut line).unwrap();
        let ev = Json::parse(line.trim()).unwrap();
        match ev.get("event").and_then(Json::as_str) {
            Some("cancel") => {
                assert_eq!(ev.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(
                    ev.get("state").and_then(Json::as_str),
                    Some("running"),
                    "ack must say the job was cancelled while running"
                );
                saw_ack = true;
            }
            Some("cancelled") => {
                assert_eq!(ev.get("job").and_then(Json::as_u64), Some(job_id));
                saw_terminal = true;
            }
            Some("interval") => {}
            Some("span") => {} // tracing record precedes the terminal event
            other => panic!("unexpected event after cancel: {other:?}"),
        }
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "cancellation must not wait for the full run"
    );
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stat(&stats, "cancelled"), 1);
    drop((w, r));
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn an_expired_deadline_fails_the_job_with_a_named_error() {
    // The same long job, but with a 1ms deadline (expired long before
    // the run's first epoch boundary): the run must abort there and come
    // back as a deadline error, while a deadline-free sibling completes
    // untouched.
    let handle = server::spawn(opts(1, 4, "")).unwrap();
    let addr = handle.addr().to_string();
    let mut doomed = job("gzip", "base");
    doomed.insts = Some(200_000_000);
    doomed.warmup = Some(0);
    doomed.deadline_ms = Some(1);
    let jobs = vec![doomed, job("em3d", "base")];
    let started = std::time::Instant::now();
    let outcomes = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "deadline must bound the batch wall-clock"
    );
    let JobStatus::Error(msg) = &outcomes[0].status else {
        panic!("deadline job must error: {:?}", outcomes[0].status);
    };
    assert!(msg.contains("deadline"), "error names the deadline: {msg}");
    assert!(msg.contains("1ms"), "error names the budget: {msg}");
    assert!(
        outcomes[1].succeeded(),
        "sibling without deadline completes"
    );
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stat(&stats, "deadline_expired"), 1);
    assert_eq!(stat(&stats, "errors"), 1);
    assert_eq!(stat(&stats, "panicked"), 0);
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn forced_sheds_report_backoff_and_retries_succeed() {
    // Inject queue-full on the first two enqueue attempts. The client's
    // retry loop must wait out the hint and land both jobs anyway.
    let handle = server::spawn(opts(1, 8, "seed=5,shed=1+2")).unwrap();
    let addr = handle.addr().to_string();
    let jobs = vec![job("gzip", "base"), job("em3d", "base")];
    let outcomes = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    assert!(outcomes.iter().all(client::JobOutcome::succeeded));
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stat(&stats, "shed"), 2);
    assert_eq!(stat(&stats, "completed"), 2);
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn with_no_retry_budget_a_shed_is_a_terminal_outcome() {
    let handle = server::spawn(opts(1, 8, "shed=1")).unwrap();
    let addr = handle.addr().to_string();
    let outcomes = client::submit_with(
        &addr,
        &[job("gzip", "base")],
        &SubmitOptions {
            retries: 0,
            ..SubmitOptions::default()
        },
    )
    .expect("submit");
    let JobStatus::Shed { retry_after_ms } = outcomes[0].status else {
        panic!("expected a shed outcome: {:?}", outcomes[0].status);
    };
    assert!(
        retry_after_ms >= 25,
        "hint carries the backoff: {retry_after_ms}"
    );
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn a_vanished_watcher_is_unregistered() {
    let handle = server::spawn(opts(1, 8, "")).unwrap();
    let addr = handle.addr().to_string();
    // Attach a watcher, confirm registration, then slam the connection.
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        w.write_all(b"{\"op\":\"watch\"}\n").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(stream);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("watching"));
        let stats = client::stats(&addr).expect("stats");
        assert_eq!(stat(&stats, "watchers"), 1);
        // Drop both halves: the peer is gone without a goodbye.
    }
    // The reader notices the close on its next tick and unregisters.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = client::stats(&addr).expect("stats");
        if stat(&stats, "watchers") == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never unregistered"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Jobs still complete with no watcher attached.
    let outcomes = client::submit(&addr, &[job("gzip", "base")], None, None, None, false).unwrap();
    assert!(outcomes[0].succeeded());
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn torn_cache_writes_and_scavenging_show_up_in_stats() {
    let dir = std::env::temp_dir().join(format!("wib_faults_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Plant an orphaned temp file from a "crashed predecessor".
    std::fs::create_dir_all(dir.join("cache")).unwrap();
    std::fs::write(dir.join("cache/deadbeef00000000.json.tmp"), b"half a doc").unwrap();
    let mut o = opts(1, 8, "tear=1");
    o.results_dir = Some(dir.clone());
    let handle = server::spawn(o).unwrap();
    let addr = handle.addr().to_string();
    // First job: its cache persist is torn (counted, memory-only), but
    // the client still gets a full result.
    let outcomes = client::submit(&addr, &[job("gzip", "base")], None, None, None, false).unwrap();
    assert!(outcomes[0].succeeded());
    let stats = client::stats(&addr).expect("stats");
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(stat(cache, "scavenged"), 1, "orphan temp was scavenged");
    assert_eq!(stat(cache, "persist_failures"), 1, "torn write was counted");
    assert!(
        !dir.join("cache/deadbeef00000000.json.tmp").exists(),
        "orphan temp must be deleted"
    );
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_now_cancels_running_jobs_quickly() {
    let handle = server::spawn(opts(1, 4, "")).unwrap();
    let addr = handle.addr().to_string();
    // Park a very long job on the single worker over a raw socket (the
    // helper client would block until terminal).
    let stream = TcpStream::connect(&addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    w.write_all(
        b"{\"op\":\"submit\",\"jobs\":[{\"workload\":\"gzip\",\"spec\":\"base\",\
          \"insts\":200000000,\"warmup\":0}]}\n",
    )
    .unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    loop {
        line.clear();
        r.read_line(&mut line).unwrap();
        if line.contains("\"running\"") {
            break;
        }
    }
    // `shutdown now` must trip the running job's token and return far
    // sooner than the run would have taken.
    let started = std::time::Instant::now();
    let reply = client::shutdown(&addr, false).expect("shutdown now");
    assert_eq!(reply.get("event").and_then(Json::as_str), Some("shutdown"));
    handle.join();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "shutdown now must not wait for a 2e8-instruction run"
    );
    drop((w, r));
}
