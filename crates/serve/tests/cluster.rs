//! End-to-end cluster tests: a real coordinator fronting real backend
//! daemons over loopback sockets.
//!
//! The invariants mirror the offline gate's cluster smoke stage:
//!
//! * a sweep submitted through the coordinator is byte-identical to the
//!   same sweep computed in-process;
//! * killing a backend re-routes its jobs to the survivor and the sweep
//!   still completes byte-identically;
//! * a node that misses locally serves its neighbor's cached result
//!   through cache peering instead of re-simulating;
//! * `cluster_stats` aggregates per-node counters through one merged
//!   registry.

use wib_core::Json;
use wib_serve::client;
use wib_serve::coord::{self, CoordOptions};
use wib_serve::protocol::parse_machine_spec;
use wib_serve::server::{self, build_catalog, compute_result};
use wib_serve::{HashRing, JobRequest, JobStatus, ResultCache, ServerOptions};

const INSTS: u64 = 20_000;
const WARMUP: u64 = 2_000;

fn tiny_server() -> server::ServerHandle {
    server::spawn(ServerOptions {
        workers: 2,
        queue_capacity: 16,
        tiny: true,
        results_dir: None,
        default_insts: INSTS,
        default_warmup: WARMUP,
        quiet: true,
        ..ServerOptions::default()
    })
    .expect("bind backend")
}

fn tiny_coord(backends: Vec<String>) -> coord::CoordHandle {
    coord::spawn(CoordOptions {
        backends,
        tiny: true,
        default_insts: INSTS,
        default_warmup: WARMUP,
        quiet: true,
        ..CoordOptions::default()
    })
    .expect("bind coordinator")
}

fn job(workload: &str, spec: &str) -> JobRequest {
    JobRequest {
        workload: workload.to_string(),
        spec: spec.to_string(),
        insts: None,
        warmup: None,
        deadline_ms: None,
    }
}

/// Assert every outcome is `Done` and byte-identical to the in-process
/// computation of the same point.
fn assert_byte_identical(outcomes: &[client::JobOutcome]) {
    let catalog = build_catalog(true);
    for o in outcomes {
        let JobStatus::Done { result, .. } = &o.status else {
            panic!("job {} did not finish: {:?}", o.workload, o.status);
        };
        let spec = result.get("spec").and_then(Json::as_str).unwrap();
        let cfg = wib_core::MachineConfig::from_spec(spec).unwrap();
        let local = compute_result(&catalog[&o.workload], &cfg, INSTS, WARMUP, "tiny");
        assert_eq!(
            result.to_string(),
            local.to_string(),
            "coordinator and in-process results diverge for {}",
            o.workload
        );
    }
}

#[test]
fn coordinator_sweep_is_byte_identical_to_local() {
    let b1 = tiny_server();
    let b2 = tiny_server();
    let (a1, a2) = (b1.addr().to_string(), b2.addr().to_string());
    let ch = tiny_coord(vec![a1, a2]);
    let coord_addr = ch.addr().to_string();

    let jobs = vec![
        job("gzip", "base"),
        job("em3d", "wib:w=256"),
        job("mst", "conv:iq=64"),
    ];
    let outcomes = client::submit(&coord_addr, &jobs, None, None, None, false).expect("submit");
    assert_eq!(outcomes.len(), 3);
    assert_byte_identical(&outcomes);

    // A cluster-wide drain: the coordinator shuts its backends down
    // first, then itself — all three joins returning is the leak proof.
    client::shutdown(&coord_addr, true).expect("cluster shutdown");
    b1.join();
    b2.join();
    ch.join();
}

#[test]
fn node_death_reroutes_jobs_to_the_survivor() {
    let b1 = tiny_server();
    let b2 = tiny_server();
    let (a1, a2) = (b1.addr().to_string(), b2.addr().to_string());

    // Rebuild the coordinator's ring to pick a job the victim (b2)
    // owns, so the death is guaranteed to be on the routed path.
    let mut ring = HashRing::new(64);
    ring.add(&a1);
    ring.add(&a2);
    let mut victim_job = None;
    'search: for workload in ["gzip", "em3d", "mst"] {
        for w in [16u32, 32, 64, 128, 256, 512, 1024, 2048] {
            let spec = format!("wib:w={w}");
            let cfg = parse_machine_spec(&spec).unwrap();
            let digest = ResultCache::key(workload, &cfg, INSTS, WARMUP, "tiny");
            if ring.primary(&digest) == Some(a2.as_str()) {
                victim_job = Some(job(workload, &spec));
                break 'search;
            }
        }
    }
    let victim_job = victim_job.expect("some candidate maps to the victim node");

    let ch = tiny_coord(vec![a1, a2]);
    let coord_addr = ch.addr().to_string();

    // Kill the victim *after* the coordinator seeded its ring, exactly
    // like a node dying mid-sweep.
    b2.shutdown(false);
    b2.join();

    let outcomes =
        client::submit(&coord_addr, &[victim_job], None, None, None, false).expect("submit");
    assert_eq!(outcomes.len(), 1);
    assert_byte_identical(&outcomes);

    let cs = client::cluster_stats(&coord_addr).expect("cluster_stats");
    assert_eq!(
        cs.get("node_deaths").and_then(Json::as_u64),
        Some(1),
        "the dead node must be detected exactly once: {cs}"
    );
    assert_eq!(cs.get("rerouted").and_then(Json::as_u64), Some(1));
    let alive = cs
        .get("nodes")
        .and_then(Json::as_arr)
        .map(|nodes| {
            nodes
                .iter()
                .filter(|n| n.get("alive").and_then(Json::as_bool) == Some(true))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(alive, 1, "exactly one node should survive: {cs}");

    client::shutdown(&coord_addr, true).expect("cluster shutdown");
    b1.join();
    ch.join();
}

#[test]
fn cache_peering_serves_a_neighbors_result_without_resimulating() {
    let b1 = tiny_server();
    let b2 = tiny_server();
    let (a1, a2) = (b1.addr().to_string(), b2.addr().to_string());

    // Warm node 1's cache directly.
    let jobs = [job("gzip", "base")];
    let first = client::submit(&a1, &jobs, None, None, None, false).expect("warm b1");
    let JobStatus::Done { cached, result } = &first[0].status else {
        panic!("warm-up job failed: {:?}", first[0].status);
    };
    assert!(!cached);

    // Tell node 2 that node 1 is its cache peer, then submit the same
    // point to node 2: it must come back cached (peer-served), with the
    // identical bytes, and node 2's stats must show the peer hit.
    client::set_peers(&a2, std::slice::from_ref(&a1)).expect("install peers");
    let second = client::submit(&a2, &jobs, None, None, None, false).expect("submit to b2");
    let JobStatus::Done {
        cached,
        result: peer_result,
    } = &second[0].status
    else {
        panic!("peered job failed: {:?}", second[0].status);
    };
    assert!(*cached, "a peer-served miss must be reported as cached");
    assert_eq!(result.to_string(), peer_result.to_string());

    let stats = client::stats(&a2).expect("stats");
    assert_eq!(stats.get("peer_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("peer_probes").and_then(Json::as_u64), Some(1));
    // The peer serve must not have distorted node 2's hit/miss counts:
    // the lookup was a miss, served remotely.
    let cache = stats.get("cache").expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(0));

    b1.shutdown(true);
    b2.shutdown(true);
    b1.join();
    b2.join();
}

#[test]
fn cluster_stats_aggregates_counters_across_nodes() {
    let b1 = tiny_server();
    let b2 = tiny_server();
    let (a1, a2) = (b1.addr().to_string(), b2.addr().to_string());
    let ch = tiny_coord(vec![a1, a2]);
    let coord_addr = ch.addr().to_string();

    let jobs = vec![
        job("gzip", "base"),
        job("em3d", "wib:w=256"),
        job("mst", "conv:iq=64"),
    ];
    let outcomes = client::submit(&coord_addr, &jobs, None, None, None, false).expect("submit");
    assert!(outcomes.iter().all(client::JobOutcome::succeeded));

    let cs = client::cluster_stats(&coord_addr).expect("cluster_stats");
    let cluster = cs.get("cluster").expect("aggregated cluster block");
    let val = |k: &str| cluster.get(k).and_then(Json::as_u64).unwrap_or(0);
    // Every per-node counter flows through the one merged registry: the
    // fleet executed exactly this batch, whichever nodes it landed on.
    assert_eq!(val("jobs_submitted"), 3, "merged submit count: {cluster}");
    assert_eq!(
        val("jobs_completed"),
        3,
        "merged completion count: {cluster}"
    );
    assert_eq!(val("cache_entries"), 3, "merged cache entries: {cluster}");
    assert_eq!(cs.get("completed").and_then(Json::as_u64), Some(3));

    // The merged exposition serves both fleets' families side by side.
    let text = client::metrics(&coord_addr).expect("merged metrics");
    assert!(
        text.contains("wib_coord_nodes"),
        "coordinator family missing"
    );
    assert!(
        text.contains("wib_serve_jobs_completed_total"),
        "backend family missing from merged exposition"
    );
    assert!(text.contains("wib_coord_jobs_routed_total"));

    client::shutdown(&coord_addr, true).expect("cluster shutdown");
    b1.join();
    b2.join();
    ch.join();
}
