//! End-to-end daemon tests over a real loopback socket.
//!
//! Each test spawns its own daemon on an ephemeral port with the tiny
//! suite and a reduced protocol so the whole file stays fast. The big
//! invariants checked here mirror the offline gate:
//!
//! * results streamed over TCP are byte-identical to `compute_result`
//!   run in-process;
//! * resubmitting a batch is served entirely from the cache;
//! * a drain shutdown completes every queued job and joins every
//!   thread (`ServerHandle::join` returning *is* that proof);
//! * cancellation and backpressure behave as documented.

use std::collections::HashMap;

use wib_core::Json;
use wib_serve::client;
use wib_serve::server::{self, build_catalog, compute_result};
use wib_serve::{JobRequest, JobStatus, ServerOptions};

const INSTS: u64 = 20_000;
const WARMUP: u64 = 2_000;

fn tiny_server(workers: usize, queue_capacity: usize) -> server::ServerHandle {
    server::spawn(ServerOptions {
        workers,
        queue_capacity,
        tiny: true,
        results_dir: None,
        default_insts: INSTS,
        default_warmup: WARMUP,
        quiet: true,
        ..ServerOptions::default()
    })
    .expect("bind loopback")
}

fn job(workload: &str, spec: &str) -> JobRequest {
    JobRequest {
        workload: workload.to_string(),
        spec: spec.to_string(),
        insts: None,
        warmup: None,
        deadline_ms: None,
    }
}

#[test]
fn daemon_results_match_in_process_byte_for_byte() {
    let handle = tiny_server(2, 16);
    let addr = handle.addr().to_string();
    let jobs = vec![
        job("gzip", "base"),
        job("em3d", "wib:w=256"),
        job("mst", "conv:iq=64"),
    ];
    let outcomes = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    assert_eq!(outcomes.len(), 3);

    let catalog = build_catalog(true);
    for o in &outcomes {
        let JobStatus::Done { cached, result } = &o.status else {
            panic!("job {} did not finish: {:?}", o.workload, o.status);
        };
        assert!(!cached, "first submission must simulate, not hit cache");
        let spec = result.get("spec").and_then(Json::as_str).unwrap();
        let cfg = wib_core::MachineConfig::from_spec(spec).unwrap();
        let local = compute_result(&catalog[&o.workload], &cfg, INSTS, WARMUP, "tiny");
        // The strongest equivalence we can ask for: the rendered
        // documents are identical characters.
        assert_eq!(
            result.to_string(),
            local.to_string(),
            "daemon and in-process results diverge for {}",
            o.workload
        );
        assert_eq!(
            result.get("digest").and_then(Json::as_str).unwrap(),
            o.digest
        );
    }

    // Same batch again: every job must be served from the cache with
    // the same bytes.
    let again = client::submit(&addr, &jobs, None, None, None, false).expect("resubmit");
    let first: HashMap<&str, &Json> = outcomes
        .iter()
        .map(|o| {
            let JobStatus::Done { result, .. } = &o.status else {
                unreachable!()
            };
            (o.workload.as_str(), result)
        })
        .collect();
    for o in &again {
        let JobStatus::Done { cached, result } = &o.status else {
            panic!("cached job {} did not finish", o.workload);
        };
        assert!(cached, "resubmitted job {} must be a cache hit", o.workload);
        assert_eq!(result.to_string(), first[o.workload.as_str()].to_string());
    }

    // The hit counter saw all three, and the introspection doc says so.
    let stats = client::stats(&addr).expect("stats");
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(6));

    let reply = client::shutdown(&addr, true).expect("shutdown");
    assert_eq!(reply.get("event").and_then(Json::as_str), Some("shutdown"));
    assert_eq!(reply.get("completed").and_then(Json::as_u64), Some(6));
    handle.join(); // would hang forever if any thread leaked
}

#[test]
fn equivalent_spec_spellings_share_one_cache_entry() {
    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    // Three spellings of the same machine: canonical grammar, CLI
    // shorthand, and shorthand with the same window size spelled out.
    let jobs = vec![job("gzip", "wib:w=2048")];
    let first = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    assert!(matches!(
        first[0].status,
        JobStatus::Done { cached: false, .. }
    ));
    for spelling in ["wib2k", "wib:2048"] {
        let o = client::submit(&addr, &[job("gzip", spelling)], None, None, None, false)
            .expect("submit alias")
            .remove(0);
        let JobStatus::Done { cached, .. } = o.status else {
            panic!("alias {spelling} failed");
        };
        assert!(cached, "spelling {spelling} must hit the canonical entry");
        assert_eq!(o.digest, first[0].digest);
    }
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn rejections_name_the_reason_and_leave_the_daemon_healthy() {
    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    let jobs = vec![
        job("no-such-benchmark", "base"),
        job("gzip", "wib:w=banana"),
        job("gzip", "base"), // the valid one still runs
    ];
    let outcomes = client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    let rejected: Vec<_> = outcomes
        .iter()
        .filter_map(|o| match &o.status {
            JobStatus::Rejected(reason) => Some((o.workload.as_str(), reason.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(rejected.len(), 2);
    assert!(rejected
        .iter()
        .any(|(w, r)| *w == "no-such-benchmark" && r.contains("unknown workload")));
    assert!(outcomes
        .iter()
        .any(|o| o.workload == "gzip" && o.succeeded()));
    client::ping(&addr).expect("daemon still answers after rejections");
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn queued_jobs_can_be_cancelled_and_unknown_ids_are_refused() {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;
    // One worker, so jobs after the first are definitely queued.
    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    let batch = concat!(
        "{\"op\":\"submit\",\"jobs\":[",
        "{\"workload\":\"gzip\",\"spec\":\"base\"},",
        "{\"workload\":\"em3d\",\"spec\":\"base\"},",
        "{\"workload\":\"mst\",\"spec\":\"base\"}]}\n"
    );
    w.write_all(batch.as_bytes()).unwrap();
    w.flush().unwrap();
    // Collect the three queued events (ids 1..=3).
    let mut line = String::new();
    let mut queued = Vec::new();
    while queued.len() < 3 {
        line.clear();
        r.read_line(&mut line).unwrap();
        let ev = Json::parse(line.trim()).unwrap();
        if ev.get("event").and_then(Json::as_str) == Some("queued") {
            queued.push(ev.get("job").and_then(Json::as_u64).unwrap());
        }
    }
    // Cancel the last queued job; expect ok:true.
    let cancel = format!("{{\"op\":\"cancel\",\"job\":{}}}\n", queued[2]);
    w.write_all(cancel.as_bytes()).unwrap();
    w.flush().unwrap();
    // Cancelling an unknown job id is refused.
    w.write_all(b"{\"op\":\"cancel\",\"job\":999}\n").unwrap();
    w.flush().unwrap();
    let mut saw_cancel_ok = false;
    let mut saw_cancel_unknown = false;
    let mut terminal = 0;
    let mut cancelled_job = 0;
    while terminal < 3 {
        line.clear();
        r.read_line(&mut line).unwrap();
        let ev = Json::parse(line.trim()).unwrap();
        match ev.get("event").and_then(Json::as_str) {
            Some("cancel") => {
                let ok = ev.get("ok").and_then(Json::as_bool).unwrap();
                match ev.get("job").and_then(Json::as_u64).unwrap() {
                    999 => {
                        assert!(!ok);
                        assert_eq!(ev.get("state").and_then(Json::as_str), Some("unknown"));
                        saw_cancel_unknown = true;
                    }
                    id => {
                        assert_eq!(id, queued[2]);
                        assert!(ok, "job queued behind a busy worker must be cancellable");
                        saw_cancel_ok = true;
                    }
                }
            }
            Some("done") => terminal += 1,
            Some("cancelled") => {
                cancelled_job = ev.get("job").and_then(Json::as_u64).unwrap();
                terminal += 1;
            }
            _ => {}
        }
    }
    assert!(saw_cancel_ok && saw_cancel_unknown);
    assert_eq!(cancelled_job, queued[2]);
    drop((w, r));
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn a_tiny_queue_still_completes_a_big_batch() {
    // Capacity 1 with 1 worker forces repeated overload sheds; the
    // client's retry-with-backoff loop must still land every job.
    let handle = tiny_server(1, 1);
    let addr = handle.addr().to_string();
    let jobs: Vec<JobRequest> = ["gzip", "em3d", "mst", "gzip", "em3d", "mst"]
        .iter()
        .map(|w| job(w, "base"))
        .collect();
    let outcomes =
        client::submit(&addr, &jobs, Some(5_000), Some(500), None, false).expect("submit");
    assert_eq!(outcomes.len(), 6);
    assert!(outcomes.iter().all(JobOutcomeExt::finished));
    // The second round of each workload hit the cache.
    let cached = outcomes
        .iter()
        .filter(|o| matches!(o.status, JobStatus::Done { cached: true, .. }))
        .count();
    assert_eq!(cached, 3);
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

trait JobOutcomeExt {
    fn finished(&self) -> bool;
}
impl JobOutcomeExt for wib_serve::JobOutcome {
    fn finished(&self) -> bool {
        matches!(self.status, JobStatus::Done { .. })
    }
}

#[test]
fn run_local_writes_the_same_files_submit_writes() {
    let out_remote = std::env::temp_dir().join(format!("wib_serve_remote_{}", std::process::id()));
    let out_local = std::env::temp_dir().join(format!("wib_serve_local_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_remote);
    let _ = std::fs::remove_dir_all(&out_local);

    let handle = tiny_server(2, 8);
    let addr = handle.addr().to_string();
    let jobs = vec![job("gzip", "base"), job("em3d", "wib:w=256")];
    client::submit(&addr, &jobs, None, None, Some(&out_remote), false).expect("submit");
    client::run_local(
        &jobs,
        Some(INSTS),
        Some(WARMUP),
        true,
        Some(&out_local),
        false,
    )
    .expect("run_local");

    let mut remote_files: Vec<_> = std::fs::read_dir(&out_remote)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    remote_files.sort();
    let mut local_files: Vec<_> = std::fs::read_dir(&out_local)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    local_files.sort();
    assert_eq!(
        remote_files, local_files,
        "file names (content addresses) differ"
    );
    assert_eq!(remote_files.len(), 2);
    for name in &remote_files {
        let a = std::fs::read(out_remote.join(name)).unwrap();
        let b = std::fs::read(out_local.join(name)).unwrap();
        assert_eq!(
            a, b,
            "result file {name} differs between daemon and local run"
        );
    }

    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&out_remote);
    let _ = std::fs::remove_dir_all(&out_local);
}

#[test]
fn watcher_sees_other_connections_jobs_and_the_farewell() {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;
    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    // Attach a watcher first.
    let wstream = TcpStream::connect(&addr).unwrap();
    let mut ww = BufWriter::new(wstream.try_clone().unwrap());
    ww.write_all(b"{\"op\":\"watch\"}\n").unwrap();
    ww.flush().unwrap();
    let mut wr = BufReader::new(wstream);
    let mut line = String::new();
    wr.read_line(&mut line).unwrap();
    assert!(line.contains("\"watching\""));
    // Run a job on a different connection.
    let outcomes = client::submit(
        &addr,
        &[job("gzip", "base")],
        Some(5_000),
        Some(500),
        None,
        false,
    )
    .unwrap();
    assert!(outcomes[0].succeeded());
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
    // The watcher stream must contain the job lifecycle and end with
    // the broadcast shutdown event before EOF.
    let mut events = Vec::new();
    loop {
        line.clear();
        if wr.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let ev = Json::parse(line.trim()).unwrap();
        events.push(ev.get("event").and_then(Json::as_str).unwrap().to_string());
    }
    assert!(events.contains(&"queued".to_string()), "events: {events:?}");
    assert!(events.contains(&"running".to_string()));
    assert!(events.contains(&"done".to_string()));
    assert_eq!(events.last().map(String::as_str), Some("shutdown"));
}

#[test]
fn cache_persists_across_daemon_restarts() {
    let dir = std::env::temp_dir().join(format!("wib_serve_persist_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || ServerOptions {
        workers: 1,
        queue_capacity: 4,
        tiny: true,
        results_dir: Some(dir.clone()),
        default_insts: 5_000,
        default_warmup: 500,
        quiet: true,
        ..ServerOptions::default()
    };
    let first = server::spawn(opts()).unwrap();
    let addr1 = first.addr().to_string();
    let o1 = client::submit(&addr1, &[job("gzip", "base")], None, None, None, false).unwrap();
    assert!(matches!(
        o1[0].status,
        JobStatus::Done { cached: false, .. }
    ));
    client::shutdown(&addr1, true).unwrap();
    first.join();
    // A brand-new daemon over the same results dir serves the job from
    // the on-disk entry without simulating.
    let second = server::spawn(opts()).unwrap();
    let addr2 = second.addr().to_string();
    let o2 = client::submit(&addr2, &[job("gzip", "base")], None, None, None, false).unwrap();
    let JobStatus::Done { cached, result } = &o2[0].status else {
        panic!("restart run failed");
    };
    assert!(cached, "restarted daemon must hit the persisted cache");
    let JobStatus::Done { result: r1, .. } = &o1[0].status else {
        unreachable!()
    };
    assert_eq!(result.to_string(), r1.to_string());
    client::shutdown(&addr2, true).unwrap();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_report_version_and_monotonic_uptime() {
    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    let first = client::stats(&addr).expect("stats");
    assert_eq!(
        first.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "stats must carry the crate version"
    );
    let t0 = first
        .get("uptime_ms")
        .and_then(Json::as_u64)
        .expect("uptime_ms");
    std::thread::sleep(std::time::Duration::from_millis(20));
    let second = client::stats(&addr).expect("stats again");
    let t1 = second.get("uptime_ms").and_then(Json::as_u64).unwrap();
    assert!(t1 >= t0 + 10, "uptime must advance: {t0} -> {t1}");
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn span_stage_durations_telescope_to_the_total() {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    let handle = tiny_server(1, 8);
    let addr = handle.addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut w = BufWriter::new(stream.try_clone().unwrap());
    let mut r = BufReader::new(stream);
    w.write_all(b"{\"op\":\"submit\",\"jobs\":[{\"workload\":\"gzip\",\"spec\":\"base\"}]}\n")
        .unwrap();
    w.flush().unwrap();
    let mut line = String::new();
    let mut span_id = String::new();
    let mut saw_span = false;
    loop {
        line.clear();
        r.read_line(&mut line).unwrap();
        let ev = Json::parse(line.trim()).unwrap();
        match ev.get("event").and_then(Json::as_str) {
            Some("queued") => {
                span_id = ev
                    .get("span")
                    .and_then(Json::as_str)
                    .expect("queued event carries the span id")
                    .to_string();
                assert!(!span_id.is_empty());
            }
            Some("running") | Some("interval") => {}
            Some("span") => {
                saw_span = true;
                assert_eq!(
                    ev.get("span").and_then(Json::as_str),
                    Some(span_id.as_str()),
                    "span id must match the one minted at submit"
                );
                assert_eq!(ev.get("workload").and_then(Json::as_str), Some("gzip"));
                assert_eq!(ev.get("outcome").and_then(Json::as_str), Some("done"));
                let total = ev.get("total_us").and_then(Json::as_u64).unwrap();
                let stages = ev.get("stages").and_then(Json::as_arr).unwrap();
                let names: Vec<&str> = stages
                    .iter()
                    .map(|s| s.get("stage").and_then(Json::as_str).unwrap())
                    .collect();
                assert_eq!(
                    names,
                    ["queue", "cache", "run", "finish"],
                    "a simulated job passes through every stage"
                );
                // The acceptance criterion: back-to-back stage marks
                // from one monotonic clock sum *exactly* to the
                // end-to-end latency — no drift, no double-counting.
                let sum: u64 = stages
                    .iter()
                    .map(|s| s.get("us").and_then(Json::as_u64).unwrap())
                    .sum();
                assert_eq!(sum, total, "stage durations must telescope");
            }
            Some("done") => break,
            other => panic!("unexpected event: {other:?}"),
        }
    }
    assert!(saw_span, "span record must precede the terminal event");

    // The same latencies roll into the scraped histograms.
    let text = client::metrics(&addr).expect("metrics");
    let exp = wib_core::Exposition::parse(&text);
    let wait = exp
        .histogram("wib_serve_queue_wait_us")
        .expect("queue-wait family");
    assert_eq!(wait.count, 1, "one job -> one queue-wait observation");
    let run = exp.histogram("wib_serve_run_us").expect("run-time family");
    assert_eq!(run.count, 1, "one job -> one run-time observation");
    assert_eq!(
        exp.value_labeled(
            "wib_serve_job_us_count",
            &[("workload", "gzip"), ("outcome", "done")]
        ),
        Some(1.0),
        "end-to-end histogram is labelled by workload and outcome"
    );
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}

#[test]
fn metrics_exposition_tracks_jobs_and_cache_hits() {
    let handle = tiny_server(2, 16);
    let addr = handle.addr().to_string();
    let jobs = vec![job("gzip", "base"), job("mst", "base")];
    client::submit(&addr, &jobs, None, None, None, false).expect("submit");
    client::submit(&addr, &jobs, None, None, None, false).expect("resubmit");

    let text = client::metrics(&addr).expect("metrics");
    assert!(
        text.contains("# TYPE wib_serve_jobs_completed_total counter"),
        "exposition carries TYPE lines:\n{text}"
    );
    assert!(
        text.contains("# HELP wib_serve_queue_wait_us"),
        "exposition carries HELP lines:\n{text}"
    );
    let exp = wib_core::Exposition::parse(&text);
    assert_eq!(exp.value("wib_serve_jobs_submitted_total"), Some(4.0));
    assert_eq!(exp.value("wib_serve_jobs_completed_total"), Some(4.0));
    assert_eq!(exp.value("wib_serve_cache_misses_total"), Some(2.0));
    assert_eq!(
        exp.value("wib_serve_cache_hits_total"),
        Some(2.0),
        "resubmitted batch is served from cache"
    );
    assert_eq!(exp.value("wib_serve_workers"), Some(2.0));
    assert_eq!(exp.value("wib_serve_job_panics_total"), Some(0.0));
    // Cache hits skip simulation: the run-time histogram saw only the
    // two real runs, the hit-latency histogram only the two hits.
    assert_eq!(exp.histogram("wib_serve_run_us").map(|h| h.count), Some(2));
    assert_eq!(
        exp.histogram("wib_serve_cache_hit_us").map(|h| h.count),
        Some(2)
    );
    // The engine self-profile surfaced through the same registry.
    assert!(
        exp.value("wib_engine_profiled_cycles_total").unwrap_or(0.0) > 0.0,
        "sampled engine profiling must record cycles:\n{text}"
    );
    client::shutdown(&addr, true).expect("shutdown");
    handle.join();
}
