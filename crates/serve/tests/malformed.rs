//! Client hardening against malformed daemon event streams.
//!
//! These tests play the *server's* role with a hand-rolled loopback
//! listener so they can emit frames a healthy daemon never would, and
//! pin the two client-side bugfixes:
//!
//! * a `queued`/`rejected` event with no `index` must be a protocol
//!   error, not a silent attribution to frame slot 0 (which would cross
//!   job identities on retry);
//! * a `shed` event with no `retry_after_ms` hint must still back off
//!   at least the client's floor, never hot-loop at 0 ms.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

use wib_serve::client;
use wib_serve::{JobRequest, ServeError};

fn job() -> JobRequest {
    JobRequest {
        workload: "gzip".to_string(),
        spec: "base".to_string(),
        insts: None,
        warmup: None,
        deadline_ms: None,
    }
}

#[test]
fn queued_event_without_index_is_a_protocol_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).expect("read submit frame");
        let mut w = stream;
        // A queued event with every identity field but no `index`.
        writeln!(
            w,
            r#"{{"event":"queued","job":1,"workload":"gzip","spec":"base","digest":"d1"}}"#
        )
        .unwrap();
        w.flush().unwrap();
    });

    let err = client::submit(&addr, &[job()], None, None, None, false)
        .expect_err("a frame with no index must fail the submission");
    assert!(
        matches!(err, ServeError::Protocol(_)),
        "expected a protocol error, got {err:?}"
    );
    assert!(
        format!("{err}").contains("index"),
        "the error must name the missing field: {err}"
    );
    server.join().unwrap();
}

#[test]
fn shed_without_retry_hint_still_backs_off_at_least_the_floor() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first submit");
        writeln!(
            w,
            r#"{{"event":"queued","job":1,"index":0,"workload":"gzip","spec":"base","digest":"d1"}}"#
        )
        .unwrap();
        // Shed with no retry_after_ms at all: the buggy client would
        // resubmit after 0 ms.
        writeln!(w, r#"{{"event":"shed","job":1}}"#).unwrap();
        w.flush().unwrap();
        let shed_at = Instant::now();
        line.clear();
        reader.read_line(&mut line).expect("read the retry submit");
        let waited = shed_at.elapsed();
        writeln!(
            w,
            r#"{{"event":"queued","job":2,"index":0,"workload":"gzip","spec":"base","digest":"d1"}}"#
        )
        .unwrap();
        writeln!(
            w,
            r#"{{"event":"done","job":2,"cached":false,"result":{{"ok":true}}}}"#
        )
        .unwrap();
        w.flush().unwrap();
        waited
    });

    let outcomes =
        client::submit(&addr, &[job()], None, None, None, false).expect("submit with one shed");
    assert!(outcomes[0].succeeded(), "retry must complete the job");
    let waited = server.join().unwrap();
    assert!(
        waited >= Duration::from_millis(25),
        "client resubmitted after only {waited:?}; the backoff floor is 25ms"
    );
}
