//! Translation lookaside buffer timing model.
//!
//! Translation is flat (virtual == physical) in this simulator; the TLB
//! exists purely to charge the paper's 30-cycle miss penalty on first
//! touch of a page and to keep a bounded working set of recent pages.

use crate::cache::{AccessKind, Cache, CacheConfig};

/// TLB geometry and penalty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Cycles added to an access that misses.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// The paper's TLB: 128 entries, 4-way, 4 KB pages, 30-cycle penalty.
    pub fn isca2002() -> TlbConfig {
        TlbConfig {
            entries: 128,
            assoc: 4,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

/// A TLB, implemented as a page-granularity tag cache.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
    miss_penalty: u64,
}

impl Tlb {
    /// Build an empty TLB.
    ///
    /// # Panics
    /// Panics if the geometry is not a power-of-two split (see
    /// [`Cache::new`]).
    pub fn new(cfg: TlbConfig) -> Tlb {
        let cache_cfg = CacheConfig {
            name: "TLB".to_string(),
            size_bytes: cfg.entries * cfg.page_bytes,
            assoc: cfg.assoc,
            line_bytes: cfg.page_bytes,
            hit_latency: 0,
        };
        Tlb {
            inner: Cache::new(cache_cfg),
            miss_penalty: cfg.miss_penalty,
        }
    }

    /// Translate `addr`: returns the extra cycles charged (0 on hit).
    pub fn translate(&mut self, addr: u32) -> u64 {
        if self.inner.access(addr, AccessKind::Read).hit {
            0
        } else {
            self.miss_penalty
        }
    }

    /// True if the page containing `addr` is mapped (no state change).
    pub fn probe(&self, addr: u32) -> bool {
        self.inner.probe(addr)
    }

    /// Total translations performed.
    pub fn accesses(&self) -> u64 {
        self.inner.stats().accesses
    }

    /// Translations that missed.
    pub fn misses(&self) -> u64 {
        self.inner.stats().misses
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_pays_penalty() {
        let mut t = Tlb::new(TlbConfig::isca2002());
        assert_eq!(t.translate(0x1000), 30);
        assert_eq!(t.translate(0x1ffc), 0); // same page
        assert_eq!(t.translate(0x2000), 30); // next page
        assert_eq!(t.accesses(), 3);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn capacity_eviction() {
        let cfg = TlbConfig {
            entries: 4,
            assoc: 4,
            page_bytes: 4096,
            miss_penalty: 30,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..5u32 {
            t.translate(p * 4096);
        }
        // Page 0 was LRU and must have been evicted.
        assert!(!t.probe(0));
        assert_eq!(t.translate(0), 30);
    }

    #[test]
    fn probe_is_pure() {
        let mut t = Tlb::new(TlbConfig::isca2002());
        t.translate(0x5000);
        let before = (t.accesses(), t.misses());
        assert!(t.probe(0x5000));
        assert_eq!((t.accesses(), t.misses()), before);
    }
}
