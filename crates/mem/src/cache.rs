//! Set-associative cache timing model.
//!
//! Tags only — architectural data lives elsewhere. Write-back,
//! write-allocate, true-LRU replacement (the associativities here are
//! small, so a monotonic-counter LRU is exact and cheap).

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in stats dumps (e.g. `"L1D"`).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Ways per set.
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Hit latency in cycles (load-to-use).
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 32 KB, 4-way, 64 B-line, 2-cycle cache (the paper's L1).
    pub fn l1_32k(name: &str) -> CacheConfig {
        CacheConfig {
            name: name.to_string(),
            size_bytes: 32 * 1024,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// A 256 KB, 4-way, 64 B-line, 10-cycle unified cache (the paper's L2).
    pub fn l2_256k() -> CacheConfig {
        CacheConfig {
            name: "L2".to_string(),
            size_bytes: 256 * 1024,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 10,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load or instruction fetch.
    Read,
    /// A store (marks the line dirty).
    Write,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (line not present).
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses per access (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} writebacks",
            self.accesses,
            self.misses,
            100.0 * self.miss_ratio(),
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    lru: u64,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room.
    pub evicted_dirty: Option<u32>,
}

/// A set-associative, write-back, write-allocate cache (timing only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    /// Panics unless line size, set count and associativity are powers of
    /// two and the geometry divides evenly.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.assoc >= 1);
        let sets = cfg.num_sets();
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert_eq!(
            sets * cfg.assoc * cfg.line_bytes,
            cfg.size_bytes,
            "geometry must divide"
        );
        Cache {
            lines: vec![Line::default(); (sets * cfg.assoc) as usize],
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (used after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Line-aligned address for `addr`.
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.set_shift) & self.set_mask
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.set_shift >> self.set_mask.count_ones()
    }

    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let start = (set * self.cfg.assoc) as usize;
        start..start + self.cfg.assoc as usize
    }

    /// True if the line containing `addr` is present (no state change).
    pub fn probe(&self, addr: u32) -> bool {
        let tag = self.tag_of(addr);
        self.lines[self.set_range(self.set_of(addr))]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Access the line containing `addr`, allocating on miss.
    pub fn access(&mut self, addr: u32, kind: AccessKind) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let range = self.set_range(set);
        let tick = self.tick;

        // Hit?
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.lru = tick;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            return AccessOutcome {
                hit: true,
                evicted_dirty: None,
            };
        }

        // Miss: pick the invalid or least-recently-used way.
        self.stats.misses += 1;
        let victim_idx = self.lines[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("assoc >= 1");
        let num_sets_bits = self.set_mask.count_ones();
        let victim = &mut self.lines[range.start + victim_idx];
        let evicted_dirty = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(((victim.tag << num_sets_bits) | set) << self.set_shift)
        } else {
            None
        };
        *victim = Line {
            valid: true,
            dirty: kind == AccessKind::Write,
            tag,
            lru: tick,
        };
        AccessOutcome {
            hit: false,
            evicted_dirty,
        }
    }

    /// Invalidate every line (no writebacks are modeled).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16B lines = 64 bytes.
        Cache::new(CacheConfig {
            name: "tiny".into(),
            size_bytes: 64,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x10f, AccessKind::Read).hit); // same line
        assert!(!c.access(0x110, AccessKind::Read).hit); // next line, other set
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut c = tiny();
        // Three conflicting lines in set 0 (stride = 32 bytes for 2 sets x 16B).
        c.access(0x000, AccessKind::Read);
        c.access(0x020, AccessKind::Read);
        c.access(0x000, AccessKind::Read); // touch A so B is LRU
        c.access(0x040, AccessKind::Read); // evicts B
        assert!(c.probe(0x000));
        assert!(!c.probe(0x020));
        assert!(c.probe(0x040));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write);
        c.access(0x020, AccessKind::Read);
        let out = c.access(0x040, AccessKind::Read); // evicts dirty 0x000
        assert_eq!(out.evicted_dirty, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction reports none.
        let out = c.access(0x060, AccessKind::Read);
        assert_eq!(out.evicted_dirty, None);
    }

    #[test]
    fn writeback_address_reconstruction() {
        let mut c = tiny();
        // Set 1 line (addr bit 4 set), dirty.
        c.access(0x0190, AccessKind::Write);
        c.access(0x0030, AccessKind::Read);
        let out = c.access(0x0050, AccessKind::Write);
        // The evicted line must be the 0x190 line, exactly aligned.
        assert_eq!(out.evicted_dirty, Some(0x0190));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        let before = c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x400));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write);
        c.flush();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn paper_geometries() {
        let l1 = CacheConfig::l1_32k("L1D");
        assert_eq!(l1.num_sets(), 128);
        let l2 = CacheConfig::l2_256k();
        assert_eq!(l2.num_sets(), 1024);
        let _ = Cache::new(l1);
        let _ = Cache::new(l2);
    }

    #[test]
    fn stats_display_and_ratio() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert!(c.stats().to_string().contains("50.00%"));
        c.reset_stats();
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }
}
