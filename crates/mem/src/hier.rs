//! The full memory hierarchy: L1I + L1D + unified L2 + DRAM, with
//! MSHR-style merging of outstanding misses.
//!
//! Latencies follow the paper's Table 1: a hit in a level costs that
//! level's latency *in total* (L1 = 2, L2 = 10, memory = 250), plus the TLB
//! penalty when the page is not mapped. Outstanding misses to the same
//! line merge: the second access is ready when the first fill returns,
//! without issuing a new memory transaction. Lines are installed at access
//! time; the MSHR table supplies the correct readiness for every access
//! that lands on a line still in flight.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats};
use crate::tlb::{Tlb, TlbConfig};
use std::collections::HashMap;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierConfig {
    /// Level-one instruction cache.
    pub l1i: CacheConfig,
    /// Level-one data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Total latency of a DRAM access, in cycles.
    pub mem_latency: u64,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl HierConfig {
    /// The paper's Table 1 memory system.
    pub fn isca2002_base() -> HierConfig {
        HierConfig {
            l1i: CacheConfig::l1_32k("L1I"),
            l1d: CacheConfig::l1_32k("L1D"),
            l2: CacheConfig::l2_256k(),
            mem_latency: 250,
            itlb: TlbConfig::isca2002(),
            dtlb: TlbConfig::isca2002(),
        }
    }
}

/// Timing outcome of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Cycle at which the value is available (loads) or the line is owned
    /// (stores).
    pub ready_at: u64,
    /// Whether the access hit in the L1 data cache.
    pub l1_hit: bool,
    /// Whether the line had to go to DRAM (L2 miss, not merged).
    pub to_memory: bool,
    /// Whether the miss merged into an already outstanding line fill
    /// (MSHR hit: no new memory transaction, but the access still waits
    /// out the fill).
    pub mshr_merged: bool,
}

impl DataAccess {
    /// Latency relative to the access cycle.
    pub fn latency(&self, now: u64) -> u64 {
        self.ready_at.saturating_sub(now)
    }
}

/// Aggregated hierarchy statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierStats {
    /// Loads + stores that reached the L1D.
    pub data_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses (from either L1).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Misses merged into an already-outstanding line fill.
    pub mshr_merges: u64,
}

impl HierStats {
    /// L1 data-cache miss ratio.
    pub fn l1d_miss_ratio(&self) -> f64 {
        ratio(self.l1d_misses, self.data_accesses)
    }

    /// Local L2 miss ratio (L2 misses / L2 accesses), as in the paper's
    /// Table 2.
    pub fn l2_local_miss_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The L1I/L1D/L2/DRAM timing stack.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    mem_latency: u64,
    /// Outstanding line fills: line address -> fill completion cycle.
    ///
    /// Cleaned **lazily**: completed fills linger until the periodic
    /// [`MemoryHierarchy::maybe_drain`] sweep (or an exact-count query)
    /// removes them, so the per-access path never scans the table. Every
    /// read goes through [`MemoryHierarchy::live_fill`], which filters
    /// stale entries by comparing against `now`.
    inflight: HashMap<u32, u64>,
    /// Accesses since the last stale-fill sweep.
    accesses_since_drain: u32,
    stats: HierStats,
}

impl MemoryHierarchy {
    /// Build an empty (cold) hierarchy.
    pub fn new(cfg: HierConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            mem_latency: cfg.mem_latency,
            inflight: HashMap::new(),
            accesses_since_drain: 0,
            stats: HierStats::default(),
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> HierStats {
        self.stats
    }

    /// Per-cache statistics `(l1i, l1d, l2)`.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }

    /// Reset all statistics (after warm-up), keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = HierStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    fn drain_completed(&mut self, now: u64) {
        self.inflight.retain(|_, ready| *ready > now);
    }

    /// Amortized stale-fill sweep: a full [`HashMap::retain`] scan per
    /// access would dominate miss-heavy runs (the WIB keeps dozens of
    /// fills in flight), so completed entries are only swept every 1024
    /// accesses and ignored in between via [`MemoryHierarchy::live_fill`].
    fn maybe_drain(&mut self, now: u64) {
        self.accesses_since_drain += 1;
        if self.accesses_since_drain >= 1024 {
            self.accesses_since_drain = 0;
            self.drain_completed(now);
        }
    }

    /// The fill in flight for `line` at `now`, ignoring stale entries the
    /// lazy sweep has not removed yet.
    fn live_fill(&self, line: u32, now: u64) -> Option<u64> {
        self.inflight
            .get(&line)
            .copied()
            .filter(|&ready| ready > now)
    }

    /// If the line holding `addr` is still being filled at `now`, when it
    /// arrives.
    pub fn inflight_ready(&self, addr: u32, now: u64) -> Option<u64> {
        self.live_fill(self.l1d.line_addr(addr), now)
    }

    /// Fetch the instruction at `pc`: returns the cycle the bytes are
    /// available.
    pub fn inst_fetch(&mut self, pc: u32, now: u64) -> u64 {
        self.maybe_drain(now);
        let tlb_extra = self.itlb.translate(pc);
        let line = self.l1i.line_addr(pc);
        let l1 = self.l1i.access(pc, AccessKind::Read);
        let base_ready = if l1.hit {
            now + self.l1i.config().hit_latency
        } else {
            self.stats.l2_accesses += 1;
            let l2 = self.l2.access(pc, AccessKind::Read);
            if l2.hit {
                now + self.l2.config().hit_latency
            } else {
                self.stats.l2_misses += 1;
                let ready = now + self.mem_latency;
                if self.live_fill(line, now).is_none() {
                    // Overwrites a stale (completed) fill, if any; a live
                    // one is kept, matching the old `or_insert`.
                    self.inflight.insert(line, ready);
                }
                ready
            }
        };
        let merged = self.live_fill(line, now).unwrap_or(0);
        base_ready.max(merged) + tlb_extra
    }

    /// Perform a data access (load or store) at cycle `now`.
    ///
    /// Stores allocate and dirty the line but the caller decides whether
    /// their latency matters (committed stores retire into a write buffer).
    pub fn data_access(&mut self, addr: u32, kind: AccessKind, now: u64) -> DataAccess {
        self.maybe_drain(now);
        self.stats.data_accesses += 1;
        let tlb_extra = self.dtlb.translate(addr);
        let line = self.l1d.line_addr(addr);
        let l1 = self.l1d.access(addr, kind);
        let mut to_memory = false;
        let mut mshr_merged = false;
        let base_ready = if l1.hit {
            now + self.l1d.config().hit_latency
        } else {
            self.stats.l1d_misses += 1;
            self.stats.l2_accesses += 1;
            let l2 = self.l2.access(addr, AccessKind::Read);
            if l2.hit {
                now + self.l2.config().hit_latency
            } else {
                self.stats.l2_misses += 1;
                match self.live_fill(line, now) {
                    Some(ready) => {
                        // A fill for this line is already on its way.
                        self.stats.mshr_merges += 1;
                        self.stats.l2_misses -= 1; // merged, not a new transaction
                        self.stats.l2_accesses -= 1;
                        mshr_merged = true;
                        ready
                    }
                    None => {
                        to_memory = true;
                        let ready = now + self.mem_latency;
                        self.inflight.insert(line, ready);
                        ready
                    }
                }
            }
        };
        // Even an L1 "hit" on a line still in flight waits for the fill.
        let merged = self.live_fill(line, now).unwrap_or(0);
        let ready_at = base_ready.max(merged) + tlb_extra;
        DataAccess {
            ready_at,
            l1_hit: l1.hit,
            to_memory,
            mshr_merged,
        }
    }

    /// Warm the data-side hierarchy with `addr` without collecting stats
    /// (used during fast-forward). Timing state (MSHRs) is untouched.
    pub fn warm_data(&mut self, addr: u32, kind: AccessKind) {
        self.dtlb.translate(addr);
        let l1 = self.l1d.access(addr, kind);
        if !l1.hit {
            self.l2.access(addr, AccessKind::Read);
        }
    }

    /// Warm the instruction-side hierarchy with `pc` (fast-forward).
    pub fn warm_inst(&mut self, pc: u32) {
        self.itlb.translate(pc);
        let l1 = self.l1i.access(pc, AccessKind::Read);
        if !l1.hit {
            self.l2.access(pc, AccessKind::Read);
        }
    }

    /// Number of line fills currently outstanding at `now`.
    pub fn inflight_fills(&mut self, now: u64) -> usize {
        self.drain_completed(now);
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierConfig::isca2002_base())
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = hier();
        let a = h.data_access(0x10_0000, AccessKind::Read, 100);
        assert!(!a.l1_hit);
        assert!(a.to_memory);
        // 250 DRAM + 30 TLB fill.
        assert_eq!(a.ready_at, 100 + 250 + 30);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = hier();
        h.data_access(0x10_0000, AccessKind::Read, 0);
        // Wait past fill completion, then re-access.
        let a = h.data_access(0x10_0000, AccessKind::Read, 300);
        assert!(a.l1_hit);
        assert_eq!(a.ready_at, 302);
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut h = hier();
        let first = h.data_access(0x10_0000, AccessKind::Read, 0);
        // Second access to the same line, 10 cycles later, while in flight:
        // it "hits" in L1 (line installed) but data arrives with the fill.
        let second = h.data_access(0x10_0004, AccessKind::Read, 10);
        assert_eq!(second.ready_at, first.ready_at - 30); // no second TLB fill
        assert!(!second.to_memory);
        assert_eq!(h.stats().mshr_merges, 0); // merged via install, not MSHR path
    }

    #[test]
    fn independent_lines_overlap() {
        let mut h = hier();
        let a = h.data_access(0x10_0000, AccessKind::Read, 0);
        let b = h.data_access(0x20_0000, AccessKind::Read, 1);
        // Both are full-latency DRAM accesses that overlap in time.
        assert_eq!(a.ready_at, 280);
        assert_eq!(b.ready_at, 1 + 280);
        assert_eq!(h.inflight_fills(2), 2);
        assert_eq!(h.inflight_fills(10_000), 0);
    }

    #[test]
    fn l2_hit_latency() {
        let mut h = hier();
        // Fill a line, then evict it from L1 by sweeping one L1 set.
        h.data_access(0x40_0000, AccessKind::Read, 0);
        // L1: 32KB 4-way 64B lines -> 128 sets, set stride 8KB.
        for i in 1..=4u32 {
            h.data_access(0x40_0000 + i * 8192, AccessKind::Read, 1000 + i as u64);
        }
        assert_eq!(h.stats().l1d_misses, 5);
        let a = h.data_access(0x40_0000, AccessKind::Read, 10_000);
        assert!(!a.l1_hit);
        assert!(!a.to_memory); // still in L2
        assert_eq!(a.ready_at, 10_000 + 10);
    }

    #[test]
    fn inst_fetch_paths() {
        let mut h = hier();
        let cold = h.inst_fetch(0x1000, 0);
        assert_eq!(cold, 250 + 30);
        let warm = h.inst_fetch(0x1004, 1000);
        assert_eq!(warm, 1002);
    }

    #[test]
    fn warmup_does_not_count_stats() {
        let mut h = hier();
        h.warm_data(0x9000, AccessKind::Read);
        h.warm_inst(0x1000);
        h.reset_stats();
        assert_eq!(h.stats().data_accesses, 0);
        // After warming, the access is a hit with short latency.
        let a = h.data_access(0x9000, AccessKind::Read, 50);
        assert!(a.l1_hit);
        assert_eq!(a.ready_at, 52);
    }

    #[test]
    fn stats_ratios() {
        let mut h = hier();
        h.data_access(0x10_0000, AccessKind::Read, 0);
        h.data_access(0x10_0000, AccessKind::Read, 1000);
        let s = h.stats();
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.l1d_misses, 1);
        assert!((s.l1d_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.l2_local_miss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn store_dirties_and_costs_same_path() {
        let mut h = hier();
        let w = h.data_access(0x50_0000, AccessKind::Write, 0);
        assert!(w.to_memory);
        let (_, l1d, _) = h.cache_stats();
        assert_eq!(l1d.misses, 1);
    }
}
