//! Memory-system *timing* models for the WIB simulator.
//!
//! Architectural data lives in `wib_isa::mem::PagedMemory`; this crate
//! models only *when* an access completes:
//!
//! - [`cache::Cache`]: set-associative, write-back/write-allocate, LRU,
//!   timing-only (tags, no data).
//! - [`tlb::Tlb`]: translation lookaside buffer with a fixed miss penalty.
//! - [`hier::MemoryHierarchy`]: the paper's L1I/L1D/L2/DRAM stack with
//!   MSHR-style merging of outstanding misses to the same line, so
//!   memory-level parallelism behaves like real hardware.
//!
//! The paper's base machine (Table 1): 32 KB 4-way L1s with 2-cycle
//! latency, a 256 KB 4-way unified L2 at 10 cycles, 250-cycle DRAM, and a
//! 128-entry 4-way TLB with a 30-cycle miss penalty — see
//! [`hier::HierConfig::isca2002_base`].

pub mod cache;
pub mod hier;
pub mod tlb;

pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use hier::{DataAccess, HierConfig, MemoryHierarchy};
pub use tlb::{Tlb, TlbConfig};
