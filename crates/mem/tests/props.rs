//! Property tests: the set-associative cache against a naive reference
//! model (per-set LRU lists).

use proptest::prelude::*;
use std::collections::VecDeque;
use wib_mem::cache::{AccessKind, Cache, CacheConfig};

/// Naive reference: per-set LRU list of (tag, dirty).
struct RefCache {
    sets: Vec<VecDeque<(u32, bool)>>,
    assoc: usize,
    line: u32,
    num_sets: u32,
}

impl RefCache {
    fn new(num_sets: u32, assoc: usize, line: u32) -> RefCache {
        RefCache { sets: vec![VecDeque::new(); num_sets as usize], assoc, line, num_sets }
    }

    fn access(&mut self, addr: u32, write: bool) -> (bool, Option<u32>) {
        let line_addr = addr / self.line;
        let set = (line_addr % self.num_sets) as usize;
        let tag = line_addr / self.num_sets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).expect("present");
            s.push_front((t, d || write));
            return (true, None);
        }
        let mut evicted = None;
        if s.len() == self.assoc {
            let (t, d) = s.pop_back().expect("full");
            if d {
                evicted = Some((t * self.num_sets + set as u32) * self.line);
            }
        }
        s.push_front((tag, write));
        (false, evicted)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_lru(
        ops in prop::collection::vec((0u32..0x4000, any::<bool>()), 1..400)
    ) {
        let cfg = CacheConfig {
            name: "t".into(),
            size_bytes: 512,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(16, 2, 16);
        for (addr, write) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(addr, kind);
            let (ref_hit, ref_evicted) = reference.access(addr, write);
            prop_assert_eq!(out.hit, ref_hit, "hit mismatch at {:#x}", addr);
            prop_assert_eq!(out.evicted_dirty, ref_evicted, "writeback mismatch at {:#x}", addr);
        }
    }

    #[test]
    fn probe_agrees_with_access_history(
        ops in prop::collection::vec(0u32..0x1000, 1..100),
        probe_addr in 0u32..0x1000,
    ) {
        let cfg = CacheConfig {
            name: "t".into(),
            size_bytes: 256,
            assoc: 4,
            line_bytes: 32,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(2, 4, 32);
        for addr in ops {
            cache.access(addr, AccessKind::Read);
            reference.access(addr, false);
        }
        let line_addr = probe_addr / 32;
        let set = (line_addr % 2) as usize;
        let tag = line_addr / 2;
        let expected = reference.sets[set].iter().any(|&(t, _)| t == tag);
        prop_assert_eq!(cache.probe(probe_addr), expected);
    }
}
