//! Randomized property tests: the set-associative cache against a naive
//! reference model (per-set LRU lists), driven by fixed-seed random op
//! streams so the suite is deterministic and fully offline.

use std::collections::VecDeque;
use wib_mem::cache::{AccessKind, Cache, CacheConfig};
use wib_rng::StdRng;

/// Naive reference: per-set LRU list of (tag, dirty).
struct RefCache {
    sets: Vec<VecDeque<(u32, bool)>>,
    assoc: usize,
    line: u32,
    num_sets: u32,
}

impl RefCache {
    fn new(num_sets: u32, assoc: usize, line: u32) -> RefCache {
        RefCache {
            sets: vec![VecDeque::new(); num_sets as usize],
            assoc,
            line,
            num_sets,
        }
    }

    fn access(&mut self, addr: u32, write: bool) -> (bool, Option<u32>) {
        let line_addr = addr / self.line;
        let set = (line_addr % self.num_sets) as usize;
        let tag = line_addr / self.num_sets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).expect("present");
            s.push_front((t, d || write));
            return (true, None);
        }
        let mut evicted = None;
        if s.len() == self.assoc {
            let (t, d) = s.pop_back().expect("full");
            if d {
                evicted = Some((t * self.num_sets + set as u32) * self.line);
            }
        }
        s.push_front((tag, write));
        (false, evicted)
    }
}

#[test]
fn cache_matches_reference_lru() {
    let mut r = StdRng::seed_from_u64(0xca_c4e_0001);
    for _ in 0..128 {
        let cfg = CacheConfig {
            name: "t".into(),
            size_bytes: 512,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(16, 2, 16);
        let n = r.random_range(1..400);
        for _ in 0..n {
            let addr: u32 = r.random_range(0..0x4000);
            let write: bool = r.random();
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = cache.access(addr, kind);
            let (ref_hit, ref_evicted) = reference.access(addr, write);
            assert_eq!(out.hit, ref_hit, "hit mismatch at {addr:#x}");
            assert_eq!(
                out.evicted_dirty, ref_evicted,
                "writeback mismatch at {addr:#x}"
            );
        }
    }
}

#[test]
fn probe_agrees_with_access_history() {
    let mut r = StdRng::seed_from_u64(0xca_c4e_0002);
    for _ in 0..128 {
        let cfg = CacheConfig {
            name: "t".into(),
            size_bytes: 256,
            assoc: 4,
            line_bytes: 32,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(2, 4, 32);
        let n = r.random_range(1..100);
        for _ in 0..n {
            let addr: u32 = r.random_range(0..0x1000);
            cache.access(addr, AccessKind::Read);
            reference.access(addr, false);
        }
        let probe_addr: u32 = r.random_range(0..0x1000);
        let line_addr = probe_addr / 32;
        let set = (line_addr % 2) as usize;
        let tag = line_addr / 2;
        let expected = reference.sets[set].iter().any(|&(t, _)| t == tag);
        assert_eq!(cache.probe(probe_addr), expected);
    }
}
