//! Linked program images: code plus initialized data segments.

use crate::inst::Inst;
use crate::mem::Memory;

/// A fully linked program: encoded code at `code_base` plus any number of
/// initialized data segments, ready to be loaded into a [`Memory`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Address of the first instruction word.
    pub code_base: u32,
    /// Encoded instruction words, contiguous from `code_base`.
    pub code: Vec<u32>,
    /// Initialized data segments `(start_address, bytes)`.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Entry point (defaults to `code_base`).
    pub entry: u32,
}

impl Program {
    /// Load code and data into `mem`.
    pub fn load_into<M: Memory>(&self, mem: &mut M) {
        let mut code_bytes = Vec::with_capacity(self.code.len() * 4);
        for word in &self.code {
            code_bytes.extend_from_slice(&word.to_le_bytes());
        }
        mem.write_block(self.code_base, &code_bytes);
        for (base, bytes) in &self.data {
            mem.write_block(*base, bytes);
        }
    }

    /// Number of instructions in the code segment.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the program has no code.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// One past the last code address.
    pub fn code_end(&self) -> u32 {
        self.code_base.wrapping_add(4 * self.code.len() as u32)
    }

    /// Decode the instruction at `pc`, if it falls inside the code segment.
    pub fn decode_at(&self, pc: u32) -> Option<Inst> {
        if pc < self.code_base || pc >= self.code_end() || !pc.is_multiple_of(4) {
            return None;
        }
        Inst::decode(self.code[((pc - self.code_base) / 4) as usize])
    }

    /// Disassemble the whole code segment, one `(addr, text)` pair per word.
    pub fn disassemble(&self) -> Vec<(u32, String)> {
        self.code
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let addr = self.code_base + 4 * i as u32;
                let text = match Inst::decode(*w) {
                    Some(inst) => inst.to_string(),
                    None => format!(".word {w:#010x}"),
                };
                (addr, text)
            })
            .collect()
    }

    /// Total bytes of initialized data.
    pub fn data_bytes(&self) -> usize {
        self.data.iter().map(|(_, b)| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::mem::PagedMemory;

    fn tiny() -> Program {
        Program {
            code_base: 0x1000,
            code: vec![
                Inst {
                    op: Opcode::Addi,
                    rd: 1,
                    rs1: 0,
                    rs2: 0,
                    imm: 7,
                }
                .encode(),
                Inst {
                    op: Opcode::Halt,
                    rd: 0,
                    rs1: 0,
                    rs2: 0,
                    imm: 0,
                }
                .encode(),
            ],
            data: vec![(0x8000, vec![1, 2, 3])],
            entry: 0x1000,
        }
    }

    #[test]
    fn load_and_decode() {
        let p = tiny();
        let mut m = PagedMemory::new();
        p.load_into(&mut m);
        assert_eq!(Inst::decode(m.read_u32(0x1000)).unwrap().op, Opcode::Addi);
        assert_eq!(m.read_u8(0x8002), 3);
        assert_eq!(p.decode_at(0x1004).unwrap().op, Opcode::Halt);
        assert!(p.decode_at(0x1008).is_none());
        assert!(p.decode_at(0x0ffc).is_none());
        assert!(p.decode_at(0x1002).is_none());
    }

    #[test]
    fn geometry() {
        let p = tiny();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.code_end(), 0x1008);
        assert_eq!(p.data_bytes(), 3);
    }

    #[test]
    fn disassembly() {
        let d = tiny().disassemble();
        assert_eq!(d[0], (0x1000, "addi r1, r0, 7".to_string()));
        assert_eq!(d[1].1, "halt");
    }
}
