//! The byte-addressed memory interface shared by the reference interpreter
//! and the detailed simulator.
//!
//! Unwritten memory reads as zero, which keeps wrong-path loads (after a
//! branch misprediction) well defined without any fault machinery.

/// Byte-addressable 32-bit memory.
///
/// Multi-byte accessors are little-endian and have default implementations
/// in terms of the byte accessors; implementors may override them for
/// speed. Addresses wrap modulo 2^32.
pub trait Memory {
    /// Read one byte. Unwritten locations read as zero.
    fn read_u8(&self, addr: u32) -> u8;

    /// Write one byte.
    fn write_u8(&mut self, addr: u32, value: u8);

    /// Read a little-endian `u32`.
    fn read_u32(&self, addr: u32) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32));
        }
        u32::from_le_bytes(bytes)
    }

    /// Write a little-endian `u32`.
    fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read a little-endian `u64`.
    fn read_u64(&self, addr: u32) -> u64 {
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr.wrapping_add(4)) as u64;
        lo | (hi << 32)
    }

    /// Write a little-endian `u64`.
    fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Read `width` bytes (1, 4 or 8) as raw zero-extended bits.
    ///
    /// # Panics
    /// Panics on an unsupported width.
    fn read_bits(&self, addr: u32, width: u32) -> u64 {
        match width {
            1 => self.read_u8(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Write the low `width` bytes (1, 4 or 8) of `bits`.
    ///
    /// # Panics
    /// Panics on an unsupported width.
    fn write_bits(&mut self, addr: u32, width: u32, bits: u64) {
        match width {
            1 => self.write_u8(addr, bits as u8),
            4 => self.write_u32(addr, bits as u32),
            8 => self.write_u64(addr, bits),
            w => panic!("unsupported access width {w}"),
        }
    }

    /// Write a contiguous block of bytes starting at `addr` (bulk image
    /// loading).
    fn write_block(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }
}

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, paged memory: only touched 4 KB pages are allocated.
#[derive(Debug, Default, Clone)]
pub struct PagedMemory {
    pages: std::collections::HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl PagedMemory {
    /// Create an empty memory (all bytes read as zero).
    pub fn new() -> PagedMemory {
        PagedMemory::default()
    }

    /// Number of 4 KB pages currently allocated.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }
}

impl Memory for PagedMemory {
    fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    fn read_u32(&self, addr: u32) -> u32 {
        // Fast path for the overwhelmingly common aligned in-page case.
        if addr & 3 == 0 {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let off = (addr as usize) & (PAGE_SIZE - 1);
                return u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
            }
            return 0;
        }
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32));
        }
        u32::from_le_bytes(bytes)
    }

    fn write_u32(&mut self, addr: u32, value: u32) {
        // One page-table lookup for the aligned in-page case instead of
        // four (every committed store lands here via `write_bits`).
        if addr & 3 == 0 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            let off = (addr as usize) & (PAGE_SIZE - 1);
            page[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    fn read_u64(&self, addr: u32) -> u64 {
        if addr & 7 == 0 {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                let off = (addr as usize) & (PAGE_SIZE - 1);
                return u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
            }
            return 0;
        }
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr.wrapping_add(4)) as u64;
        lo | (hi << 32)
    }

    fn write_u64(&mut self, addr: u32, value: u64) {
        if addr & 7 == 0 {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            let off = (addr as usize) & (PAGE_SIZE - 1);
            page[off..off + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    fn write_block(&mut self, addr: u32, bytes: &[u8]) {
        // One page-table lookup per touched 4 KB page.
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr.wrapping_add(off as u32);
            let start = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - start).min(bytes.len() - off);
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[start..start + n].copy_from_slice(&bytes[off..off + n]);
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill() {
        let m = PagedMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xdead_bee0), 0);
        assert_eq!(m.read_u64(12), 0);
    }

    #[test]
    fn round_trips() {
        let mut m = PagedMemory::new();
        m.write_u32(0x1000, 0xdead_beef);
        assert_eq!(m.read_u32(0x1000), 0xdead_beef);
        assert_eq!(m.read_u8(0x1000), 0xef); // little-endian
        m.write_u64(0x2000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x2000), 0x0123_4567_89ab_cdef);
        m.write_u8(0x3000, 0x5a);
        assert_eq!(m.read_u8(0x3000), 0x5a);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PagedMemory::new();
        m.write_u32(0x1ffe, 0xaabb_ccdd);
        assert_eq!(m.read_u32(0x1ffe), 0xaabb_ccdd);
        assert_eq!(m.pages_allocated(), 2);
    }

    #[test]
    fn width_dispatch() {
        let mut m = PagedMemory::new();
        m.write_bits(0x100, 1, 0xfff); // only low byte stored
        assert_eq!(m.read_bits(0x100, 1), 0xff);
        m.write_bits(0x200, 8, u64::MAX);
        assert_eq!(m.read_bits(0x200, 8), u64::MAX);
        assert_eq!(m.read_bits(0x200, 4), 0xffff_ffff);
    }

    #[test]
    fn address_wraparound() {
        let mut m = PagedMemory::new();
        m.write_u32(u32::MAX - 1, 0x1122_3344);
        assert_eq!(m.read_u32(u32::MAX - 1), 0x1122_3344);
        assert_eq!(m.read_u8(1), 0x11); // wrapped high byte
    }
}
