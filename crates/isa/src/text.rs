//! A textual assembler: parse assembly source into a [`Program`].
//!
//! The syntax mirrors the disassembler's output plus a few directives:
//!
//! ```text
//! # comments run to end of line (';' works too)
//! .org 0x1000            # code base (default 0x1000)
//!
//! start:
//!     li   r1, 0x20000   # pseudo: expands to lui/ori or addi
//!     lw   r2, 8(r1)     # loads/stores use offset(base)
//!     addi r2, r2, 1
//!     sw   r2, 8(r1)
//!     bne  r2, r0, start
//!     halt
//!
//! .data 0x20000          # switch to a data segment at the address
//!     .u32  1, 2, 3
//!     .f64  1.5, -2.0
//!     .byte 0xff, 7
//!     .zero 64           # 64 zero bytes
//! ```
//!
//! # Example
//!
//! ```
//! use wib_isa::text::parse_program;
//! use wib_isa::interp::Interpreter;
//!
//! let program = parse_program("
//!     li r1, 10
//! top:
//!     addi r2, r2, 3
//!     addi r1, r1, -1
//!     bne r1, r0, top
//!     halt
//! ")?;
//! let mut interp = Interpreter::new(&program);
//! interp.run(1000).unwrap();
//! assert_eq!(interp.int_reg(wib_isa::reg::R2), 30);
//! # Ok::<(), wib_isa::text::TextAsmError>(())
//! ```

use crate::asm::ProgramBuilder;
use crate::program::Program;
use crate::reg::ArchReg;
use std::fmt;

/// A parse or assembly failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TextAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextAsmError {}

fn err(line: usize, message: impl Into<String>) -> TextAsmError {
    TextAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, TextAsmError> {
    let t = tok.trim();
    match t {
        "sp" => return Ok(crate::reg::SP),
        "ra" => return Ok(crate::reg::RA),
        "zero" => return Ok(ArchReg::ZERO),
        _ => {}
    }
    let (class, num) = t
        .split_at_checked(1)
        .ok_or_else(|| err(line, format!("expected a register, got `{t}`")))?;
    let idx: u8 = num
        .parse()
        .map_err(|_| err(line, format!("expected a register, got `{t}`")))?;
    if idx >= 32 {
        return Err(err(line, format!("register index out of range in `{t}`")));
    }
    match class {
        "r" => Ok(ArchReg::int(idx)),
        "f" => Ok(ArchReg::fp(idx)),
        _ => Err(err(line, format!("expected a register, got `{t}`"))),
    }
}

fn parse_int(tok: &str, line: usize) -> Result<i64, TextAsmError> {
    let t = tok.trim().replace('_', "");
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest.to_string()),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| err(line, format!("expected a number, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// `offset(base)` operand of loads/stores.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, ArchReg), TextAsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected `offset(base)`, got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(err(line, format!("expected `offset(base)`, got `{t}`")));
    }
    let off = if open == 0 {
        0
    } else {
        parse_int(&t[..open], line)? as i32
    };
    let base = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((off, base))
}

/// Strip comments, returning the significant text.
fn significant(line: &str) -> &str {
    let end = line.find(['#', ';']).unwrap_or(line.len());
    line[..end].trim()
}

enum Section {
    Code,
    Data { base: u32, bytes: Vec<u8> },
}

/// Parse assembly source into a linked [`Program`].
///
/// # Errors
/// Returns the first syntax, operand, or label error with its line number.
pub fn parse_program(source: &str) -> Result<Program, TextAsmError> {
    // Scan for an `.org` before building (the builder is constructed with
    // its code base).
    let mut org: u32 = 0x1000;
    for (i, raw) in source.lines().enumerate() {
        let line = significant(raw);
        if let Some(rest) = line.strip_prefix(".org") {
            org = parse_int(rest, i + 1)? as u32;
            break;
        }
        if !line.is_empty() && !line.starts_with('.') {
            break; // code began without .org
        }
    }
    let mut b = ProgramBuilder::new(org);
    let mut section = Section::Code;
    let mut data_segments: Vec<(u32, Vec<u8>)> = Vec::new();

    for (i, raw) in source.lines().enumerate() {
        let ln = i + 1;
        let mut line = significant(raw);
        if line.is_empty() {
            continue;
        }
        // Labels (possibly followed by an instruction on the same line).
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(ln, format!("bad label `{label}`")));
            }
            if !matches!(section, Section::Code) {
                return Err(err(ln, "labels are only allowed in code"));
            }
            b.label(label);
            line = rest[1..].trim();
            if line.is_empty() {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix(".data") {
            if let Section::Data { base, bytes } = section {
                data_segments.push((base, bytes));
            }
            section = Section::Data {
                base: parse_int(rest, ln)? as u32,
                bytes: Vec::new(),
            };
            continue;
        }
        if line.starts_with(".org") {
            continue; // handled in the pre-scan
        }
        if let Section::Data { bytes, .. } = &mut section {
            let (dir, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            match dir {
                ".u32" => {
                    for tok in rest.split(',') {
                        bytes.extend_from_slice(&(parse_int(tok, ln)? as u32).to_le_bytes());
                    }
                }
                ".f64" => {
                    for tok in rest.split(',') {
                        let v: f64 = tok
                            .trim()
                            .parse()
                            .map_err(|_| err(ln, format!("expected a float, got `{tok}`")))?;
                        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                ".byte" => {
                    for tok in rest.split(',') {
                        bytes.push(parse_int(tok, ln)? as u8);
                    }
                }
                ".zero" => {
                    let n = parse_int(rest, ln)? as usize;
                    bytes.extend(std::iter::repeat_n(0u8, n));
                }
                other => return Err(err(ln, format!("unknown data directive `{other}`"))),
            }
            continue;
        }

        // An instruction.
        let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let ops: Vec<&str> = if rest.trim().is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        emit(&mut b, mnemonic, &ops, ln)?;
    }
    if let Section::Data { base, bytes } = section {
        data_segments.push((base, bytes));
    }
    let mut program = b.finish().map_err(|e| err(0, format!("link error: {e}")))?;
    program.data.extend(data_segments);
    Ok(program)
}

fn emit(
    b: &mut ProgramBuilder,
    mnemonic: &str,
    ops: &[&str],
    ln: usize,
) -> Result<(), TextAsmError> {
    let argc = |n: usize| -> Result<(), TextAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                ln,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let reg = |k: usize| parse_reg(ops[k], ln);
    let imm = |k: usize| parse_int(ops[k], ln).map(|v| v as i32);

    match mnemonic {
        "nop" => {
            argc(0)?;
            b.nop();
        }
        "halt" => {
            argc(0)?;
            b.halt();
        }
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
        | "fadd" | "fsub" | "fmul" | "fdiv" => {
            argc(3)?;
            let (d, a, c) = (reg(0)?, reg(1)?, reg(2)?);
            match mnemonic {
                "add" => b.add(d, a, c),
                "sub" => b.sub(d, a, c),
                "mul" => b.mul(d, a, c),
                "and" => b.and(d, a, c),
                "or" => b.or(d, a, c),
                "xor" => b.xor(d, a, c),
                "sll" => b.sll(d, a, c),
                "srl" => b.srl(d, a, c),
                "sra" => b.sra(d, a, c),
                "slt" => b.slt(d, a, c),
                "sltu" => b.sltu(d, a, c),
                "fadd" => b.fadd(d, a, c),
                "fsub" => b.fsub(d, a, c),
                "fmul" => b.fmul(d, a, c),
                _ => b.fdiv(d, a, c),
            };
        }
        "addi" | "andi" | "ori" | "xori" | "slti" | "slli" | "srli" | "srai" => {
            argc(3)?;
            let (d, a, v) = (reg(0)?, reg(1)?, imm(2)?);
            match mnemonic {
                "addi" => b.addi(d, a, v),
                "andi" => b.andi(d, a, v),
                "ori" => b.ori(d, a, v),
                "xori" => b.xori(d, a, v),
                "slti" => b.slti(d, a, v),
                "slli" => b.slli(d, a, v),
                "srli" => b.srli(d, a, v),
                _ => b.srai(d, a, v),
            };
        }
        "li" => {
            argc(2)?;
            let d = reg(0)?;
            b.li(d, parse_int(ops[1], ln)? as u32);
        }
        "lui" => {
            argc(2)?;
            let d = reg(0)?;
            b.lui(d, parse_int(ops[1], ln)? as u32);
        }
        "mv" => {
            argc(2)?;
            b.mv(reg(0)?, reg(1)?);
        }
        "lw" | "lbu" | "fld" => {
            argc(2)?;
            let d = reg(0)?;
            let (off, base) = parse_mem_operand(ops[1], ln)?;
            match mnemonic {
                "lw" => b.lw(d, base, off),
                "lbu" => b.lbu(d, base, off),
                _ => b.fld(d, base, off),
            };
        }
        "sw" | "sb" | "fsd" => {
            argc(2)?;
            let s = reg(0)?;
            let (off, base) = parse_mem_operand(ops[1], ln)?;
            match mnemonic {
                "sw" => b.sw(s, base, off),
                "sb" => b.sb(s, base, off),
                _ => b.fsd(s, base, off),
            };
        }
        "beq" | "bne" | "blt" | "bge" => {
            argc(3)?;
            let (a, c) = (reg(0)?, reg(1)?);
            let target = ops[2];
            match mnemonic {
                "beq" => b.beq(a, c, target),
                "bne" => b.bne(a, c, target),
                "blt" => b.blt(a, c, target),
                _ => b.bge(a, c, target),
            };
        }
        "j" => {
            argc(1)?;
            b.j(ops[0]);
        }
        "jal" => {
            argc(1)?;
            b.jal(ops[0]);
        }
        "jr" => {
            argc(1)?;
            b.jr(reg(0)?);
        }
        "jalr" => {
            argc(2)?;
            b.jalr(reg(0)?, reg(1)?);
        }
        "ret" => {
            argc(0)?;
            b.ret();
        }
        "fsqrt" => {
            argc(2)?;
            b.fsqrt(reg(0)?, reg(1)?);
        }
        "fneg" => {
            argc(2)?;
            b.fneg(reg(0)?, reg(1)?);
        }
        "fmov" => {
            argc(2)?;
            b.fmov(reg(0)?, reg(1)?);
        }
        "cvtif" => {
            argc(2)?;
            b.cvtif(reg(0)?, reg(1)?);
        }
        "cvtfi" => {
            argc(2)?;
            b.cvtfi(reg(0)?, reg(1)?);
        }
        "feq" | "flt" | "fle" => {
            argc(3)?;
            let (d, a, c) = (reg(0)?, reg(1)?, reg(2)?);
            match mnemonic {
                "feq" => b.feq(d, a, c),
                "flt" => b.flt(d, a, c),
                _ => b.fle(d, a, c),
            };
        }
        other => return Err(err(ln, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::reg::*;

    fn run(src: &str) -> Interpreter {
        let p = parse_program(src).expect("parses");
        let mut i = Interpreter::new(&p);
        i.run(100_000).expect("runs");
        i
    }

    #[test]
    fn loop_with_labels() {
        let i = run("
            li r1, 5
        top: addi r2, r2, 10
            addi r1, r1, -1
            bne r1, r0, top
            halt
        ");
        assert_eq!(i.int_reg(R2), 50);
    }

    #[test]
    fn memory_and_data_sections() {
        let i = run("
            .org 0x2000
            li r1, 0x9000
            lw r2, 4(r1)
            addi r2, r2, 1
            sw r2, (r1)
            lw r3, (r1)
            halt
            .data 0x9000
            .u32 0, 41
        ");
        assert_eq!(i.int_reg(R3), 42);
    }

    #[test]
    fn fp_and_directives() {
        let i = run("
            li r1, 0x9000
            fld f1, (r1)
            fld f2, 8(r1)
            fmul f3, f1, f2
            cvtfi r2, f3
            halt
            .data 0x9000
            .f64 2.5, 4.0
        ");
        assert_eq!(i.int_reg(R2), 10);
    }

    #[test]
    fn calls_and_aliases() {
        let i = run("
            li sp, 0xf000
            jal leaf
            addi r2, r2, 1
            halt
        leaf:
            addi r2, r2, 10
            ret
        ");
        assert_eq!(i.int_reg(R2), 11);
    }

    #[test]
    fn byte_and_zero_directives() {
        let i = run("
            li r1, 0x9000
            lbu r2, 3(r1)
            lbu r3, 4(r1)
            halt
            .data 0x9000
            .byte 1, 2, 3, 0xff
            .zero 4
        ");
        assert_eq!(i.int_reg(R2), 0xff);
        assert_eq!(i.int_reg(R3), 0);
    }

    #[test]
    fn comments_and_blank_lines() {
        let i = run("
            # a comment
            li r1, 7   ; trailing comment
            halt
        ");
        assert_eq!(i.int_reg(R1), 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_program("addi r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = parse_program("addi r1, r2, banana\n").unwrap_err();
        assert!(e.message.contains("banana"));

        let e = parse_program("lw r1, r2\n").unwrap_err();
        assert!(e.message.contains("offset(base)"));

        let e = parse_program("add r97, r1, r2\n").unwrap_err();
        assert!(e.message.contains("r97"));

        let e = parse_program("j nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn round_trips_with_the_disassembler() {
        // Disassembled text of simple instructions reparses to identical
        // words.
        let src = "
            addi r1, r0, 7
            add r2, r1, r1
            lw r3, -16(r2)
            fadd f1, f2, f3
            halt
        ";
        let p1 = parse_program(src).unwrap();
        let text: String = p1
            .disassemble()
            .iter()
            .map(|(_, t)| format!("{t}\n"))
            .collect();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.code, p2.code);
    }
}
