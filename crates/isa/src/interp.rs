//! Architectural reference interpreter.
//!
//! Executes programs one instruction at a time with no timing model. The
//! detailed pipeline simulator is validated against this interpreter: both
//! must commit the identical sequence of architectural register and memory
//! updates (co-simulation).

use crate::exec;
use crate::inst::Inst;
use crate::mem::{Memory, PagedMemory};
use crate::program::Program;
use crate::reg::{ArchReg, RegClass, NUM_FP_REGS, NUM_INT_REGS};
use std::fmt;

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction was executed.
    Halted,
    /// The instruction budget given to [`Interpreter::run`] was exhausted.
    BudgetExhausted,
}

/// Errors during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The word at `pc` does not decode to a valid instruction.
    InvalidInstruction {
        /// Faulting program counter.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::InvalidInstruction { pc, word } => {
                write!(f, "invalid instruction {word:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// A memory access performed by one interpreted instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u32,
    /// Access width in bytes (1, 4 or 8).
    pub width: u32,
    /// True for stores.
    pub is_store: bool,
}

/// What one [`Interpreter::step`] did (used for cache warm-up and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// PC of the executed instruction.
    pub pc: u32,
    /// Memory access performed, if the instruction was a load or store.
    pub mem: Option<MemAccess>,
}

/// The architectural state and stepping engine.
#[derive(Debug, Clone)]
pub struct Interpreter {
    pc: u32,
    int_regs: [u32; NUM_INT_REGS],
    fp_regs: [f64; NUM_FP_REGS],
    mem: PagedMemory,
    halted: bool,
    retired: u64,
}

impl Interpreter {
    /// Load `program` into a fresh memory and set the PC to its entry.
    pub fn new(program: &Program) -> Interpreter {
        let mut mem = PagedMemory::new();
        program.load_into(&mut mem);
        Interpreter {
            pc: program.entry,
            int_regs: [0; NUM_INT_REGS],
            fp_regs: [0.0; NUM_FP_REGS],
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// True once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far (`halt` included).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Read an integer register.
    ///
    /// # Panics
    /// Panics if `r` is not an integer register.
    pub fn int_reg(&self, r: ArchReg) -> u32 {
        assert_eq!(r.class(), RegClass::Int);
        self.int_regs[r.index() as usize]
    }

    /// Read a floating-point register.
    ///
    /// # Panics
    /// Panics if `r` is not a floating-point register.
    pub fn fp_reg(&self, r: ArchReg) -> f64 {
        assert_eq!(r.class(), RegClass::Fp);
        self.fp_regs[r.index() as usize]
    }

    /// Raw bits of any architectural register (used by co-simulation).
    pub fn reg_bits(&self, r: ArchReg) -> u64 {
        match r.class() {
            RegClass::Int => self.int_regs[r.index() as usize] as u64,
            RegClass::Fp => self.fp_regs[r.index() as usize].to_bits(),
        }
    }

    /// The backing memory.
    pub fn memory(&self) -> &PagedMemory {
        &self.mem
    }

    /// Mutable access to the backing memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut PagedMemory {
        &mut self.mem
    }

    fn read_src(&self, r: Option<ArchReg>) -> u64 {
        match r {
            Some(r) => self.reg_bits(r),
            None => 0,
        }
    }

    fn write_dest(&mut self, r: ArchReg, bits: u64) {
        match r.class() {
            RegClass::Int => self.int_regs[r.index() as usize] = bits as u32,
            RegClass::Fp => self.fp_regs[r.index() as usize] = f64::from_bits(bits),
        }
    }

    /// Execute one instruction and report what it did.
    ///
    /// Does nothing once halted (and reports no memory access).
    ///
    /// # Errors
    /// Returns [`InterpError::InvalidInstruction`] if the PC points at a
    /// word that does not decode.
    pub fn step(&mut self) -> Result<StepInfo, InterpError> {
        let pc = self.pc;
        if self.halted {
            return Ok(StepInfo { pc, mem: None });
        }
        let word = self.mem.read_u32(self.pc);
        let inst =
            Inst::decode(word).ok_or(InterpError::InvalidInstruction { pc: self.pc, word })?;
        let [s1, s2] = inst.sources();
        let a = self.read_src(s1);
        let b = self.read_src(s2);
        let mut next_pc = pc.wrapping_add(4);
        let mut mem_access = None;

        if inst.is_halt() {
            self.halted = true;
        } else if inst.is_cond_branch() {
            if exec::branch_taken(&inst, a, b) {
                next_pc = exec::control_target(&inst, pc, a);
            }
        } else if inst.is_control() {
            next_pc = exec::control_target(&inst, pc, a);
            if let Some(dest) = inst.dest() {
                let link = exec::alu_result(&inst, a, b, pc).expect("calls link");
                self.write_dest(dest, link);
            }
        } else if inst.is_load() {
            let addr = exec::effective_address(&inst, a);
            let bits = self.mem.read_bits(addr, inst.mem_width());
            if let Some(dest) = inst.dest() {
                self.write_dest(dest, bits);
            }
            mem_access = Some(MemAccess {
                addr,
                width: inst.mem_width(),
                is_store: false,
            });
        } else if inst.is_store() {
            let addr = exec::effective_address(&inst, a);
            self.mem.write_bits(addr, inst.mem_width(), b);
            mem_access = Some(MemAccess {
                addr,
                width: inst.mem_width(),
                is_store: true,
            });
        } else if let Some(result) = exec::alu_result(&inst, a, b, pc) {
            if let Some(dest) = inst.dest() {
                self.write_dest(dest, result);
            }
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(StepInfo {
            pc,
            mem: mem_access,
        })
    }

    /// Run until `halt` or until `budget` instructions have retired.
    ///
    /// # Errors
    /// Propagates [`InterpError`] from [`Interpreter::step`].
    pub fn run(&mut self, budget: u64) -> Result<StopReason, InterpError> {
        for _ in 0..budget {
            if self.halted {
                return Ok(StopReason::Halted);
            }
            self.step()?;
        }
        Ok(if self.halted {
            StopReason::Halted
        } else {
            StopReason::BudgetExhausted
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::reg::*;

    fn run(b: ProgramBuilder) -> Interpreter {
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(100_000).unwrap(), StopReason::Halted);
        i
    }

    #[test]
    fn arithmetic_loop() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 10);
        b.li(R2, 0);
        b.label("loop");
        b.add(R2, R2, R1);
        b.addi(R1, R1, -1);
        b.bne(R1, R0, "loop");
        b.halt();
        let i = run(b);
        assert_eq!(i.int_reg(R2), 55);
        assert_eq!(i.int_reg(R1), 0);
    }

    #[test]
    fn memory_round_trip() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 0x8000);
        b.li(R2, 0xdead);
        b.sw(R2, R1, 0);
        b.lw(R3, R1, 0);
        b.sb(R2, R1, 8);
        b.lbu(R4, R1, 8);
        b.halt();
        let i = run(b);
        assert_eq!(i.int_reg(R3), 0xdead);
        assert_eq!(i.int_reg(R4), 0xad);
    }

    #[test]
    fn fp_pipeline() {
        let mut b = ProgramBuilder::new(0x1000);
        b.data_f64(0x8000, &[2.0, 8.0]);
        b.li(R1, 0x8000);
        b.fld(F1, R1, 0);
        b.fld(F2, R1, 8);
        b.fmul(F3, F1, F2); // 16
        b.fsqrt(F4, F3); // 4
        b.fadd(F5, F4, F1); // 6
        b.fsd(F5, R1, 16);
        b.fld(F6, R1, 16);
        b.cvtfi(R2, F6);
        b.halt();
        let i = run(b);
        assert_eq!(i.fp_reg(F5), 6.0);
        assert_eq!(i.int_reg(R2), 6);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new(0x1000);
        b.li(R1, 1);
        b.jal("func");
        b.addi(R1, R1, 100); // executed after return
        b.halt();
        b.label("func");
        b.addi(R1, R1, 10);
        b.ret();
        let i = run(b);
        assert_eq!(i.int_reg(R1), 111);
    }

    #[test]
    fn indirect_jump_table() {
        let mut b = ProgramBuilder::new(0x1000);
        // Jump through a register to a computed target.
        b.li(R2, 0);
        b.li(R1, 0); // patched below via label math: use data table instead
                     // Store the address of "target" into memory, load and jr.
        b.li(R3, 0x9000);
        b.lw(R4, R3, 0);
        b.jr(R4);
        b.addi(R2, R2, 1); // skipped
        b.label("target");
        b.addi(R2, R2, 2);
        b.halt();
        let p = {
            let mut p = b.finish().unwrap();
            // Find "target" address: instruction index 8 in stream? Compute from
            // disassembly: locate the `addi r2, r2, +2`.
            let target = p
                .disassemble()
                .iter()
                .find(|(_, t)| t == "addi r2, r2, 2")
                .map(|(a, _)| *a)
                .unwrap();
            p.data.push((0x9000, target.to_le_bytes().to_vec()));
            p
        };
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.int_reg(R2), 2);
    }

    #[test]
    fn budget_exhaustion() {
        let mut b = ProgramBuilder::new(0);
        b.label("spin");
        b.j("spin");
        let p = b.finish().unwrap();
        let mut i = Interpreter::new(&p);
        assert_eq!(i.run(10).unwrap(), StopReason::BudgetExhausted);
        assert_eq!(i.retired(), 10);
        assert!(!i.is_halted());
    }

    #[test]
    fn r0_is_immutable() {
        let mut b = ProgramBuilder::new(0);
        b.addi(R0, R0, 99);
        b.halt();
        let i = run(b);
        assert_eq!(i.int_reg(R0), 0);
    }

    #[test]
    fn invalid_instruction_reported() {
        let p = Program {
            code_base: 0,
            code: vec![0xffff_ffff],
            data: vec![],
            entry: 0,
        };
        let mut i = Interpreter::new(&p);
        assert_eq!(
            i.step().unwrap_err(),
            InterpError::InvalidInstruction {
                pc: 0,
                word: 0xffff_ffff
            }
        );
    }
}
