//! A minimal 32-bit RISC instruction set used by the WIB simulator.
//!
//! The ISA is deliberately small (a DLX/MIPS-style load-store machine with
//! 32 integer and 32 floating-point registers) but complete enough to write
//! the pointer-chasing, streaming and branchy kernels that the ISCA 2002
//! WIB paper evaluates. The crate provides:
//!
//! - [`Opcode`] / [`Inst`]: decoded instruction form with binary
//!   encode/decode ([`Inst::encode`], [`Inst::decode`]),
//! - [`exec`]: the single source of truth for ALU semantics, shared by the
//!   reference interpreter and the detailed pipeline model so that
//!   co-simulation agrees by construction,
//! - [`asm::ProgramBuilder`]: a label-resolving assembler used by the
//!   workload generators,
//! - [`interp::Interpreter`]: an architectural reference interpreter used
//!   as the oracle in co-simulation tests.
//!
//! # Example
//!
//! ```
//! use wib_isa::asm::ProgramBuilder;
//! use wib_isa::interp::Interpreter;
//! use wib_isa::reg;
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! b.addi(reg::R1, reg::R0, 5);
//! b.addi(reg::R2, reg::R0, 0);
//! b.label("loop");
//! b.add(reg::R2, reg::R2, reg::R1);
//! b.addi(reg::R1, reg::R1, -1);
//! b.bne(reg::R1, reg::R0, "loop");
//! b.halt();
//! let prog = b.finish().unwrap();
//!
//! let mut interp = Interpreter::new(&prog);
//! interp.run(1_000).unwrap();
//! assert_eq!(interp.int_reg(reg::R2), 15); // 5+4+3+2+1
//! ```

pub mod asm;
pub mod exec;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod program;
pub mod reg;
pub mod text;

pub use inst::{FuKind, Inst, Opcode};
pub use program::Program;
pub use reg::ArchReg;
