//! Architectural registers.
//!
//! The machine has 32 integer registers (`r0`..`r31`, with `r0` hardwired
//! to zero) and 32 floating-point registers (`f0`..`f31`). Internally a
//! register is a flat index `0..64` so the rename machinery can treat both
//! classes uniformly.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total architectural registers across both classes.
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// Register class: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file (32-bit values).
    Int,
    /// Floating-point register file (64-bit IEEE values).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a flat index over both register classes.
///
/// Indices `0..32` name integer registers, `32..64` floating-point
/// registers. Use [`ArchReg::int`] / [`ArchReg::fp`] to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The hardwired-zero integer register `r0`.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Integer register `r{i}`.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub const fn int(i: u8) -> ArchReg {
        assert!(i < NUM_INT_REGS as u8);
        ArchReg(i)
    }

    /// Floating-point register `f{i}`.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub const fn fp(i: u8) -> ArchReg {
        assert!(i < NUM_FP_REGS as u8);
        ArchReg(NUM_INT_REGS as u8 + i)
    }

    /// Reconstruct from a flat index (`0..64`).
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    pub const fn from_flat(i: u8) -> ArchReg {
        assert!(i < NUM_ARCH_REGS as u8);
        ArchReg(i)
    }

    /// The flat index (`0..64`).
    pub const fn flat(self) -> u8 {
        self.0
    }

    /// The register class this register belongs to.
    pub const fn class(self) -> RegClass {
        if self.0 < NUM_INT_REGS as u8 {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The class-local index (`0..32`).
    pub const fn index(self) -> u8 {
        self.0 % NUM_INT_REGS as u8
    }

    /// True for `r0`, whose value is always zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index()),
            RegClass::Fp => write!(f, "f{}", self.index()),
        }
    }
}

macro_rules! int_regs {
    ($($name:ident = $i:expr),* $(,)?) => {
        $(#[doc = concat!("Integer register `r", stringify!($i), "`.")]
          pub const $name: ArchReg = ArchReg::int($i);)*
    };
}

macro_rules! fp_regs {
    ($($name:ident = $i:expr),* $(,)?) => {
        $(#[doc = concat!("Floating-point register `f", stringify!($i), "`.")]
          pub const $name: ArchReg = ArchReg::fp($i);)*
    };
}

int_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
}

fp_regs! {
    F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
    F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14,
    F15 = 15, F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21,
    F22 = 22, F23 = 23, F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28,
    F29 = 29, F30 = 30, F31 = 31,
}

/// Conventional stack pointer (`r30`).
pub const SP: ArchReg = R30;
/// Conventional return-address register (`r31`), the target of `jal`.
pub const RA: ArchReg = R31;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_round_trip() {
        for i in 0..NUM_ARCH_REGS as u8 {
            let r = ArchReg::from_flat(i);
            assert_eq!(r.flat(), i);
        }
    }

    #[test]
    fn classes_and_indices() {
        assert_eq!(ArchReg::int(5).class(), RegClass::Int);
        assert_eq!(ArchReg::fp(5).class(), RegClass::Fp);
        assert_eq!(ArchReg::fp(5).index(), 5);
        assert_eq!(ArchReg::fp(5).flat(), 37);
        assert_eq!(ArchReg::int(31).index(), 31);
    }

    #[test]
    fn zero_register() {
        assert!(ArchReg::ZERO.is_zero());
        assert!(!R1.is_zero());
        assert!(!F0.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(R3.to_string(), "r3");
        assert_eq!(F7.to_string(), "f7");
        assert_eq!(RA.to_string(), "r31");
    }

    #[test]
    #[should_panic]
    fn int_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }
}
