//! Instruction formats, opcodes and binary encoding.
//!
//! Every instruction is one 32-bit word:
//!
//! ```text
//!  31      26 25   21 20   16 15   11 10        0
//! +----------+-------+-------+-------+-----------+
//! |  opcode  |  rd   |  rs1  |  rs2  |  (unused) |   R-type
//! +----------+-------+-------+-------+-----------+
//! |  opcode  |  rd   |  rs1  |      imm16        |   I-type (signed)
//! +----------+-------+-------+-------------------+
//! |  opcode  |           off26 (signed)          |   J-type
//! +----------+-----------------------------------+
//! ```
//!
//! Conditional branches are I-type; the 16-bit immediate is a signed
//! *instruction* offset relative to `pc + 4`. `j`/`jal` carry a signed
//! 26-bit instruction offset relative to `pc + 4`.

use crate::reg::{ArchReg, RegClass};
use std::fmt;

/// Functional-unit class an instruction executes on (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// 1-cycle integer ALU (8 units).
    IntAlu,
    /// 7-cycle pipelined integer multiplier (2 units).
    IntMul,
    /// 4-cycle pipelined FP adder (4 units).
    FpAdd,
    /// 4-cycle pipelined FP multiplier (2 units).
    FpMul,
    /// 12-cycle non-pipelined FP divider (2 units).
    FpDiv,
    /// 24-cycle non-pipelined FP square-root unit (2 units).
    FpSqrt,
    /// Load/store pipeline (address generation + D-cache port).
    Mem,
}

macro_rules! opcodes {
    ($($name:ident = $code:expr),* $(,)?) => {
        /// Operation codes. Discriminants are the binary encoding's opcode field.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(#[allow(missing_docs)] $name = $code,)*
        }

        impl Opcode {
            /// Decode an opcode field value.
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $($code => Some(Opcode::$name),)*
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    Nop = 0,
    Halt = 1,
    // Integer register-register ALU.
    Add = 2, Sub = 3, Mul = 4, And = 5, Or = 6, Xor = 7,
    Sll = 8, Srl = 9, Sra = 10, Slt = 11, Sltu = 12,
    // Integer register-immediate ALU.
    Addi = 16, Andi = 17, Ori = 18, Xori = 19, Slti = 20,
    Slli = 21, Srli = 22, Srai = 23, Lui = 24,
    // Memory.
    Lw = 28, Lbu = 29, Sw = 30, Sb = 31, Fld = 32, Fsd = 33,
    // Control.
    Beq = 36, Bne = 37, Blt = 38, Bge = 39,
    J = 42, Jal = 43, Jr = 44, Jalr = 45,
    // Floating point.
    Fadd = 48, Fsub = 49, Fmul = 50, Fdiv = 51, Fsqrt = 52, Fneg = 53,
    Cvtif = 54, Cvtfi = 55, Feq = 56, Flt = 57, Fle = 58, Fmov = 59,
}

impl Opcode {
    /// The functional unit class this opcode issues to.
    pub fn fu_kind(self) -> FuKind {
        use Opcode::*;
        match self {
            Mul => FuKind::IntMul,
            Fadd | Fsub | Fneg | Cvtif | Cvtfi | Feq | Flt | Fle | Fmov => FuKind::FpAdd,
            Fmul => FuKind::FpMul,
            Fdiv => FuKind::FpDiv,
            Fsqrt => FuKind::FpSqrt,
            Lw | Lbu | Sw | Sb | Fld | Fsd => FuKind::Mem,
            _ => FuKind::IntAlu,
        }
    }
}

/// A decoded instruction.
///
/// `rd`, `rs1`, `rs2` are class-local indices (`0..32`); the class of each
/// field is implied by the opcode (see [`Inst::dest`] and [`Inst::sources`]).
/// `imm` holds the sign-extended immediate (I-type) or jump offset (J-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register field.
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate / offset (sign-extended).
    pub imm: i32,
}

impl Inst {
    /// A canonical `nop`.
    pub const NOP: Inst = Inst {
        op: Opcode::Nop,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
    };

    /// Encode into a 32-bit instruction word.
    ///
    /// # Panics
    /// Panics if a register field is out of range or the immediate does not
    /// fit its field (16 bits for I-type, 26 bits for J-type). The assembler
    /// validates offsets before calling this.
    pub fn encode(&self) -> u32 {
        assert!(
            self.rd < 32 && self.rs1 < 32 && self.rs2 < 32,
            "register field out of range"
        );
        let op = (self.op as u32) << 26;
        if self.is_jump_direct() {
            assert!(
                self.imm >= -(1 << 25) && self.imm < (1 << 25),
                "jump offset {} out of 26-bit range",
                self.imm
            );
            return op | ((self.imm as u32) & 0x03ff_ffff);
        }
        let base = op | ((self.rd as u32) << 21) | ((self.rs1 as u32) << 16);
        if self.uses_imm() {
            assert!(
                self.imm >= i16::MIN as i32 && self.imm <= u16::MAX as i32,
                "immediate {} out of 16-bit range",
                self.imm
            );
            base | ((self.imm as u32) & 0xffff)
        } else {
            base | ((self.rs2 as u32) << 11)
        }
    }

    /// Decode a 32-bit instruction word. Returns `None` for an invalid
    /// opcode field (the pipeline treats undecodable words as `nop`s, which
    /// matters on wrong-path fetches into data).
    pub fn decode(word: u32) -> Option<Inst> {
        let op = Opcode::from_code((word >> 26) as u8)?;
        let mut inst = Inst {
            op,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        };
        if inst.is_jump_direct() {
            // Sign-extend the 26-bit offset.
            let off = (word & 0x03ff_ffff) as i32;
            inst.imm = (off << 6) >> 6;
            return Some(inst);
        }
        inst.rd = ((word >> 21) & 0x1f) as u8;
        inst.rs1 = ((word >> 16) & 0x1f) as u8;
        if inst.uses_imm() {
            inst.imm = (word & 0xffff) as u16 as i16 as i32;
        } else {
            inst.rs2 = ((word >> 11) & 0x1f) as u8;
        }
        Some(inst)
    }

    /// True if the encoding uses the 16-bit immediate field (I-type).
    pub fn uses_imm(&self) -> bool {
        use Opcode::*;
        matches!(
            self.op,
            Addi | Andi
                | Ori
                | Xori
                | Slti
                | Slli
                | Srli
                | Srai
                | Lui
                | Lw
                | Lbu
                | Sw
                | Sb
                | Fld
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Jalr
        )
    }

    /// True for `j`/`jal` (26-bit direct jumps).
    pub fn is_jump_direct(&self) -> bool {
        matches!(self.op, Opcode::J | Opcode::Jal)
    }

    /// True for `jr`/`jalr` (register-indirect jumps).
    pub fn is_jump_indirect(&self) -> bool {
        matches!(self.op, Opcode::Jr | Opcode::Jalr)
    }

    /// True for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(
            self.op,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge
        )
    }

    /// True for any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.is_cond_branch() || self.is_jump_direct() || self.is_jump_indirect()
    }

    /// True for subroutine calls (they push the return address on the RAS).
    pub fn is_call(&self) -> bool {
        matches!(self.op, Opcode::Jal | Opcode::Jalr)
    }

    /// True for subroutine returns (`jr r31`); they pop the RAS.
    pub fn is_return(&self) -> bool {
        self.op == Opcode::Jr && self.rs1 == 31
    }

    /// True for loads (int or fp).
    pub fn is_load(&self) -> bool {
        matches!(self.op, Opcode::Lw | Opcode::Lbu | Opcode::Fld)
    }

    /// True for stores (int or fp).
    pub fn is_store(&self) -> bool {
        matches!(self.op, Opcode::Sw | Opcode::Sb | Opcode::Fsd)
    }

    /// True for any memory operation.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Access width in bytes for memory operations, 0 otherwise.
    pub fn mem_width(&self) -> u32 {
        match self.op {
            Opcode::Lbu | Opcode::Sb => 1,
            Opcode::Lw | Opcode::Sw => 4,
            Opcode::Fld | Opcode::Fsd => 8,
            _ => 0,
        }
    }

    /// True for `halt`.
    pub fn is_halt(&self) -> bool {
        self.op == Opcode::Halt
    }

    /// The functional unit class this instruction issues to.
    pub fn fu_kind(&self) -> FuKind {
        self.op.fu_kind()
    }

    /// True if this instruction dispatches to the floating-point issue
    /// queue (by FU class), per the paper's split int/fp queues.
    pub fn is_fp_queue(&self) -> bool {
        matches!(
            self.fu_kind(),
            FuKind::FpAdd | FuKind::FpMul | FuKind::FpDiv | FuKind::FpSqrt
        )
    }

    /// The architectural destination register, if any.
    pub fn dest(&self) -> Option<ArchReg> {
        use Opcode::*;
        let reg = match self.op {
            Nop | Halt | Sw | Sb | Fsd | Beq | Bne | Blt | Bge | J | Jr => return None,
            Jal => ArchReg::int(31),
            Jalr => ArchReg::int(self.rd),
            Fld | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fneg | Cvtif | Fmov => ArchReg::fp(self.rd),
            Cvtfi | Feq | Flt | Fle => ArchReg::int(self.rd),
            _ => ArchReg::int(self.rd),
        };
        if reg.is_zero() {
            None // writes to r0 are discarded
        } else {
            Some(reg)
        }
    }

    /// The architectural source registers (up to two).
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        use Opcode::*;
        fn nz(r: ArchReg) -> Option<ArchReg> {
            // r0 reads are free: treat as no dependence.
            if r.is_zero() {
                None
            } else {
                Some(r)
            }
        }
        let int1 = nz(ArchReg::int(self.rs1));
        let int2 = nz(ArchReg::int(self.rs2));
        let fp1 = Some(ArchReg::fp(self.rs1));
        let fp2 = Some(ArchReg::fp(self.rs2));
        match self.op {
            Nop | Halt | J | Jal | Lui => [None, None],
            Add | Sub | Mul | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => [int1, int2],
            Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai => [int1, None],
            Lw | Lbu | Fld => [int1, None],
            // Stores: rs1 is the base address, rd field holds the data reg.
            Sw | Sb => [int1, nz(ArchReg::int(self.rd))],
            Fsd => [int1, Some(ArchReg::fp(self.rd))],
            Beq | Bne | Blt | Bge => [int1, nz(ArchReg::int(self.rd))],
            Jr | Jalr => [int1, None],
            Fadd | Fsub | Fmul | Fdiv | Feq | Flt | Fle => [fp1, fp2],
            Fsqrt | Fneg | Fmov => [fp1, None],
            Cvtif => [int1, None],
            Cvtfi => [fp1, None],
        }
    }

    /// The register class of the value a memory op moves, for loads/stores.
    pub fn mem_class(&self) -> Option<RegClass> {
        match self.op {
            Opcode::Lw | Opcode::Lbu | Opcode::Sw | Opcode::Sb => Some(RegClass::Int),
            Opcode::Fld | Opcode::Fsd => Some(RegClass::Fp),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let o = format!("{:?}", self.op).to_lowercase();
        match self.op {
            Nop | Halt => write!(f, "{o}"),
            J | Jal => write!(f, "{o} {:+}", self.imm),
            Jr => write!(f, "{o} r{}", self.rs1),
            Jalr => write!(f, "{o} r{}, r{}", self.rd, self.rs1),
            Beq | Bne | Blt | Bge => write!(f, "{o} r{}, r{}, {:+}", self.rs1, self.rd, self.imm),
            Lw | Lbu => write!(f, "{o} r{}, {}(r{})", self.rd, self.imm, self.rs1),
            Fld => write!(f, "{o} f{}, {}(r{})", self.rd, self.imm, self.rs1),
            Sw | Sb => write!(f, "{o} r{}, {}(r{})", self.rd, self.imm, self.rs1),
            Fsd => write!(f, "{o} f{}, {}(r{})", self.rd, self.imm, self.rs1),
            Lui => write!(f, "{o} r{}, {:#x}", self.rd, self.imm),
            _ if self.uses_imm() => write!(f, "{o} r{}, r{}, {}", self.rd, self.rs1, self.imm),
            Fadd | Fsub | Fmul | Fdiv => {
                write!(f, "{o} f{}, f{}, f{}", self.rd, self.rs1, self.rs2)
            }
            Fsqrt | Fneg | Fmov => write!(f, "{o} f{}, f{}", self.rd, self.rs1),
            Cvtif => write!(f, "{o} f{}, r{}", self.rd, self.rs1),
            Cvtfi => write!(f, "{o} r{}, f{}", self.rd, self.rs1),
            Feq | Flt | Fle => write!(f, "{o} r{}, f{}, f{}", self.rd, self.rs1, self.rs2),
            _ => write!(f, "{o} r{}, r{}, r{}", self.rd, self.rs1, self.rs2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    fn all_opcodes() -> Vec<Opcode> {
        (0u8..64).filter_map(Opcode::from_code).collect()
    }

    #[test]
    fn opcode_round_trip() {
        for op in all_opcodes() {
            assert_eq!(Opcode::from_code(op as u8), Some(op));
        }
    }

    #[test]
    fn encode_decode_round_trip_all_ops() {
        for op in all_opcodes() {
            let mut inst = Inst {
                op,
                rd: 3,
                rs1: 7,
                rs2: 11,
                imm: -12,
            };
            if inst.uses_imm() {
                inst.rs2 = 0;
            } else {
                inst.imm = 0; // R-type has no immediate field
            }
            if inst.is_jump_direct() {
                inst.rd = 0;
                inst.rs1 = 0;
                inst.rs2 = 0;
                inst.imm = -123456;
            }
            let decoded = Inst::decode(inst.encode()).expect("decodes");
            assert_eq!(decoded, inst, "round trip failed for {op:?}");
        }
    }

    #[test]
    fn immediate_sign_extension() {
        let inst = Inst {
            op: Opcode::Addi,
            rd: 1,
            rs1: 2,
            rs2: 0,
            imm: -1,
        };
        let decoded = Inst::decode(inst.encode()).unwrap();
        assert_eq!(decoded.imm, -1);
        let inst = Inst {
            op: Opcode::Addi,
            rd: 1,
            rs1: 2,
            rs2: 0,
            imm: 0x7fff,
        };
        assert_eq!(Inst::decode(inst.encode()).unwrap().imm, 0x7fff);
    }

    #[test]
    fn jump_offset_sign_extension() {
        let inst = Inst {
            op: Opcode::J,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: -(1 << 25),
        };
        assert_eq!(Inst::decode(inst.encode()).unwrap().imm, -(1 << 25));
        let inst = Inst {
            op: Opcode::Jal,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: (1 << 25) - 1,
        };
        assert_eq!(Inst::decode(inst.encode()).unwrap().imm, (1 << 25) - 1);
    }

    #[test]
    fn invalid_opcode_decodes_to_none() {
        assert!(Inst::decode(0xffff_ffff).is_none());
        assert!(Inst::decode(63 << 26).is_none());
    }

    #[test]
    fn zero_register_writes_discarded() {
        let inst = Inst {
            op: Opcode::Add,
            rd: 0,
            rs1: 1,
            rs2: 2,
            imm: 0,
        };
        assert_eq!(inst.dest(), None);
    }

    #[test]
    fn store_sources_include_data_register() {
        let sw = Inst {
            op: Opcode::Sw,
            rd: 5,
            rs1: 6,
            rs2: 0,
            imm: 8,
        };
        assert_eq!(sw.sources(), [Some(reg::R6), Some(reg::R5)]);
        let fsd = Inst {
            op: Opcode::Fsd,
            rd: 2,
            rs1: 6,
            rs2: 0,
            imm: 8,
        };
        assert_eq!(fsd.sources(), [Some(reg::R6), Some(reg::F2)]);
    }

    #[test]
    fn fp_zero_register_is_a_real_dependence() {
        // Only integer r0 is hardwired; f0 is a normal register.
        let fadd = Inst {
            op: Opcode::Fadd,
            rd: 1,
            rs1: 0,
            rs2: 0,
            imm: 0,
        };
        assert_eq!(fadd.sources(), [Some(reg::F0), Some(reg::F0)]);
        assert_eq!(fadd.dest(), Some(reg::F1));
    }

    #[test]
    fn classification() {
        let jr_ra = Inst {
            op: Opcode::Jr,
            rd: 0,
            rs1: 31,
            rs2: 0,
            imm: 0,
        };
        assert!(jr_ra.is_return() && jr_ra.is_jump_indirect() && !jr_ra.is_call());
        let jal = Inst {
            op: Opcode::Jal,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 4,
        };
        assert!(jal.is_call() && jal.is_jump_direct());
        assert_eq!(jal.dest(), Some(reg::RA));
        let fld = Inst {
            op: Opcode::Fld,
            rd: 1,
            rs1: 2,
            rs2: 0,
            imm: 0,
        };
        assert!(fld.is_load() && fld.is_mem() && !fld.is_fp_queue());
        assert_eq!(fld.mem_width(), 8);
        let fdiv = Inst {
            op: Opcode::Fdiv,
            rd: 1,
            rs1: 2,
            rs2: 3,
            imm: 0,
        };
        assert_eq!(fdiv.fu_kind(), FuKind::FpDiv);
        assert!(fdiv.is_fp_queue());
    }

    #[test]
    fn display_smoke() {
        let inst = Inst {
            op: Opcode::Lw,
            rd: 4,
            rs1: 5,
            rs2: 0,
            imm: -16,
        };
        assert_eq!(inst.to_string(), "lw r4, -16(r5)");
        let b = Inst {
            op: Opcode::Bne,
            rd: 2,
            rs1: 1,
            rs2: 0,
            imm: -3,
        };
        assert_eq!(b.to_string(), "bne r1, r2, -3");
    }
}
