//! Single source of truth for instruction semantics.
//!
//! Both the reference interpreter ([`crate::interp`]) and the detailed
//! pipeline model evaluate instruction results through these functions, so
//! architectural co-simulation cannot diverge on arithmetic: any mismatch
//! found by the integration tests is a genuine pipeline-bookkeeping bug
//! (forwarding, renaming, squash, ordering).
//!
//! Values are carried as raw `u64` bits: integer results occupy the low 32
//! bits (zero-extended); floating-point results are `f64::to_bits`.

use crate::inst::{Inst, Opcode};

/// Interpret raw operand bits as a 32-bit unsigned integer.
#[inline]
pub fn as_u32(bits: u64) -> u32 {
    bits as u32
}

/// Interpret raw operand bits as an `f64`.
#[inline]
pub fn as_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Pack a 32-bit integer result into raw bits.
#[inline]
pub fn from_u32(v: u32) -> u64 {
    v as u64
}

/// Pack an `f64` result into raw bits.
#[inline]
pub fn from_f64(v: f64) -> u64 {
    v.to_bits()
}

/// Compute the result of a non-memory, non-control instruction.
///
/// `a` and `b` are the raw bits of the first and second source operands
/// (zero where the instruction has fewer sources). For `jal`/`jalr` the
/// result is the return address, so `pc` is required.
///
/// Returns `None` for instructions that produce no register value.
pub fn alu_result(inst: &Inst, a: u64, b: u64, pc: u32) -> Option<u64> {
    use Opcode::*;
    let ia = as_u32(a);
    let ib = as_u32(b);
    let fa = as_f64(a);
    let fb = as_f64(b);
    let imm = inst.imm;
    let r = match inst.op {
        Add => from_u32(ia.wrapping_add(ib)),
        Sub => from_u32(ia.wrapping_sub(ib)),
        Mul => from_u32(ia.wrapping_mul(ib)),
        And => from_u32(ia & ib),
        Or => from_u32(ia | ib),
        Xor => from_u32(ia ^ ib),
        Sll => from_u32(ia.wrapping_shl(ib & 31)),
        Srl => from_u32(ia.wrapping_shr(ib & 31)),
        Sra => from_u32(((ia as i32).wrapping_shr(ib & 31)) as u32),
        Slt => from_u32(((ia as i32) < (ib as i32)) as u32),
        Sltu => from_u32((ia < ib) as u32),
        Addi => from_u32(ia.wrapping_add(imm as u32)),
        Andi => from_u32(ia & (imm as u32 & 0xffff)),
        Ori => from_u32(ia | (imm as u32 & 0xffff)),
        Xori => from_u32(ia ^ (imm as u32 & 0xffff)),
        Slti => from_u32(((ia as i32) < imm) as u32),
        Slli => from_u32(ia.wrapping_shl(imm as u32 & 31)),
        Srli => from_u32(ia.wrapping_shr(imm as u32 & 31)),
        Srai => from_u32(((ia as i32).wrapping_shr(imm as u32 & 31)) as u32),
        Lui => from_u32((imm as u32 & 0xffff) << 16),
        Jal | Jalr => from_u32(pc.wrapping_add(4)),
        Fadd => from_f64(fa + fb),
        Fsub => from_f64(fa - fb),
        Fmul => from_f64(fa * fb),
        Fdiv => from_f64(fa / fb),
        Fsqrt => from_f64(fa.sqrt()),
        Fneg => from_f64(-fa),
        Fmov => from_f64(fa),
        Cvtif => from_f64(ia as i32 as f64),
        Cvtfi => from_u32(fa as i64 as u32),
        Feq => from_u32((fa == fb) as u32),
        Flt => from_u32((fa < fb) as u32),
        Fle => from_u32((fa <= fb) as u32),
        Nop | Halt | Lw | Lbu | Sw | Sb | Fld | Fsd | Beq | Bne | Blt | Bge | J | Jr => {
            return None
        }
    };
    Some(r)
}

/// Evaluate a conditional branch: `a`/`b` are the raw bits of the two
/// compared integer registers (`rs1`, `rd` fields).
///
/// # Panics
/// Panics if `inst` is not a conditional branch.
pub fn branch_taken(inst: &Inst, a: u64, b: u64) -> bool {
    let ia = as_u32(a);
    let ib = as_u32(b);
    match inst.op {
        Opcode::Beq => ia == ib,
        Opcode::Bne => ia != ib,
        Opcode::Blt => (ia as i32) < (ib as i32),
        Opcode::Bge => (ia as i32) >= (ib as i32),
        _ => panic!("branch_taken on non-branch {:?}", inst.op),
    }
}

/// Effective address of a memory operation (`rs1 + imm`).
#[inline]
pub fn effective_address(inst: &Inst, base_bits: u64) -> u32 {
    as_u32(base_bits).wrapping_add(inst.imm as u32)
}

/// The target of a control-transfer instruction.
///
/// `a` is the raw bits of `rs1` (for indirect jumps). For conditional
/// branches this is the *taken* target.
///
/// # Panics
/// Panics if `inst` is not a control instruction.
pub fn control_target(inst: &Inst, pc: u32, a: u64) -> u32 {
    if inst.is_jump_indirect() {
        as_u32(a) & !3
    } else if inst.is_jump_direct() || inst.is_cond_branch() {
        pc.wrapping_add(4)
            .wrapping_add((inst.imm as u32).wrapping_mul(4))
    } else {
        panic!("control_target on non-control {:?}", inst.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(op: Opcode) -> Inst {
        Inst {
            op,
            rd: 1,
            rs1: 2,
            rs2: 3,
            imm: 0,
        }
    }

    #[test]
    fn integer_wrapping() {
        let r = alu_result(&inst(Opcode::Add), from_u32(u32::MAX), from_u32(1), 0).unwrap();
        assert_eq!(as_u32(r), 0);
        let r = alu_result(&inst(Opcode::Mul), from_u32(1 << 31), from_u32(2), 0).unwrap();
        assert_eq!(as_u32(r), 0);
    }

    #[test]
    fn signed_vs_unsigned_compares() {
        let minus1 = from_u32(-1i32 as u32);
        let one = from_u32(1);
        let slt = alu_result(&inst(Opcode::Slt), minus1, one, 0).unwrap();
        assert_eq!(as_u32(slt), 1);
        let sltu = alu_result(&inst(Opcode::Sltu), minus1, one, 0).unwrap();
        assert_eq!(as_u32(sltu), 0);
    }

    #[test]
    fn shift_amounts_masked() {
        let r = alu_result(&inst(Opcode::Sll), from_u32(1), from_u32(33), 0).unwrap();
        assert_eq!(as_u32(r), 2);
        let sra = Inst {
            op: Opcode::Srai,
            rd: 1,
            rs1: 2,
            rs2: 0,
            imm: 4,
        };
        let r = alu_result(&sra, from_u32(0x8000_0000), 0, 0).unwrap();
        assert_eq!(as_u32(r), 0xf800_0000);
    }

    #[test]
    fn lui_builds_upper_bits() {
        let lui = Inst {
            op: Opcode::Lui,
            rd: 1,
            rs1: 0,
            rs2: 0,
            imm: 0x1234,
        };
        assert_eq!(as_u32(alu_result(&lui, 0, 0, 0).unwrap()), 0x1234_0000);
    }

    #[test]
    fn fp_ops() {
        let r = alu_result(&inst(Opcode::Fadd), from_f64(1.5), from_f64(2.25), 0).unwrap();
        assert_eq!(as_f64(r), 3.75);
        let r = alu_result(&inst(Opcode::Fsqrt), from_f64(9.0), 0, 0).unwrap();
        assert_eq!(as_f64(r), 3.0);
        let r = alu_result(&inst(Opcode::Cvtif), from_u32(-3i32 as u32), 0, 0).unwrap();
        assert_eq!(as_f64(r), -3.0);
        let r = alu_result(&inst(Opcode::Cvtfi), from_f64(-3.7), 0, 0).unwrap();
        assert_eq!(as_u32(r) as i32, -3);
    }

    #[test]
    fn branches() {
        assert!(branch_taken(&inst(Opcode::Beq), from_u32(4), from_u32(4)));
        assert!(!branch_taken(&inst(Opcode::Bne), from_u32(4), from_u32(4)));
        assert!(branch_taken(
            &inst(Opcode::Blt),
            from_u32(-5i32 as u32),
            from_u32(3)
        ));
        assert!(branch_taken(&inst(Opcode::Bge), from_u32(3), from_u32(3)));
    }

    #[test]
    fn targets() {
        let b = Inst {
            op: Opcode::Beq,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: -2,
        };
        assert_eq!(control_target(&b, 100, 0), 100 + 4 - 8);
        let j = Inst {
            op: Opcode::J,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 10,
        };
        assert_eq!(control_target(&j, 0, 0), 44);
        let jr = Inst {
            op: Opcode::Jr,
            rd: 0,
            rs1: 31,
            rs2: 0,
            imm: 0,
        };
        assert_eq!(control_target(&jr, 0, from_u32(0x2002)), 0x2000);
    }

    #[test]
    fn return_address() {
        let jal = Inst {
            op: Opcode::Jal,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 5,
        };
        assert_eq!(as_u32(alu_result(&jal, 0, 0, 0x1000).unwrap()), 0x1004);
    }

    #[test]
    fn effective_addresses_wrap() {
        let lw = Inst {
            op: Opcode::Lw,
            rd: 1,
            rs1: 2,
            rs2: 0,
            imm: -4,
        };
        assert_eq!(effective_address(&lw, from_u32(0)), u32::MAX - 3);
    }
}
