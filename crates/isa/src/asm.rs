//! A small label-resolving assembler.
//!
//! [`ProgramBuilder`] is the API the workload generators use to emit
//! machine code: one method per mnemonic, string labels with forward
//! references, and helpers for laying out initialized data.
//!
//! ```
//! use wib_isa::asm::ProgramBuilder;
//! use wib_isa::reg::*;
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(R1, 10);
//! b.label("top");
//! b.addi(R1, R1, -1);
//! b.bne(R1, R0, "top");
//! b.halt();
//! let prog = b.finish()?;
//! assert_eq!(prog.len(), 4); // small `li` is a single addi
//! # Ok::<(), wib_isa::asm::AsmError>(())
//! ```

use crate::inst::{Inst, Opcode};
use crate::program::Program;
use crate::reg::{ArchReg, RegClass};
use std::collections::HashMap;
use std::fmt;

/// Errors produced when finishing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of the 16-bit instruction-offset range.
    BranchOutOfRange { label: String, offset: i64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(
                    f,
                    "branch to `{label}` out of range (offset {offset} instructions)"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    Branch16,
    Jump26,
}

/// Incrementally builds a [`Program`].
///
/// Register arguments are checked for the correct class at emit time
/// (`debug_assert`), catching kernel-generator bugs early.
#[derive(Debug)]
pub struct ProgramBuilder {
    code_base: u32,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, FixupKind)>,
    data: Vec<(u32, Vec<u8>)>,
    error: Option<AsmError>,
}

impl ProgramBuilder {
    /// Start a program whose first instruction lives at `code_base`
    /// (must be 4-byte aligned).
    ///
    /// # Panics
    /// Panics if `code_base` is not 4-byte aligned.
    pub fn new(code_base: u32) -> ProgramBuilder {
        assert_eq!(code_base % 4, 0, "code base must be word aligned");
        ProgramBuilder {
            code_base,
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            error: None,
        }
    }

    /// Define `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.insts.len())
            .is_some()
        {
            self.error
                .get_or_insert(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Address the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.code_base + 4 * self.insts.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Append a raw decoded instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Add an initialized data segment.
    pub fn data_bytes(&mut self, base: u32, bytes: &[u8]) -> &mut Self {
        self.data.push((base, bytes.to_vec()));
        self
    }

    /// Add initialized little-endian `u32` data.
    pub fn data_u32(&mut self, base: u32, words: &[u32]) -> &mut Self {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data.push((base, bytes));
        self
    }

    /// Add initialized `f64` data.
    pub fn data_f64(&mut self, base: u32, values: &[f64]) -> &mut Self {
        let bytes: Vec<u8> = values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.data.push((base, bytes));
        self
    }

    /// Resolve all labels and produce the program.
    ///
    /// # Errors
    /// Returns an error for undefined or duplicate labels and for branch
    /// targets out of encoding range.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        for (at, label, kind) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            // Offsets are in instructions relative to pc + 4.
            let offset = target as i64 - (*at as i64 + 1);
            let fits = match kind {
                FixupKind::Branch16 => offset >= i16::MIN as i64 && offset <= i16::MAX as i64,
                FixupKind::Jump26 => (-(1 << 25)..(1 << 25)).contains(&offset),
            };
            if !fits {
                return Err(AsmError::BranchOutOfRange {
                    label: label.clone(),
                    offset,
                });
            }
            self.insts[*at].imm = offset as i32;
        }
        Ok(Program {
            code_base: self.code_base,
            code: self.insts.iter().map(Inst::encode).collect(),
            data: self.data,
            entry: self.code_base,
        })
    }

    fn rrr(&mut self, op: Opcode, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            imm: 0,
        })
    }

    fn rri(&mut self, op: Opcode, rd: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: 0,
            imm,
        })
    }

    fn branch(&mut self, op: Opcode, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.fixups
            .push((self.insts.len(), label.to_string(), FixupKind::Branch16));
        // Branch compares rs1 (rs1 field) with rs2 (rd field).
        self.emit(Inst {
            op,
            rd: rs2.index(),
            rs1: rs1.index(),
            rs2: 0,
            imm: 0,
        })
    }
}

macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident [$c:ident]),* $(,)?) => {
        impl ProgramBuilder {
            $($(#[$doc])*
            pub fn $name(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
                debug_assert!(rd.class() == RegClass::$c && rs1.class() == RegClass::$c
                    && rs2.class() == RegClass::$c, "wrong register class for {}", stringify!($name));
                self.rrr(Opcode::$op, rd, rs1, rs2)
            })*
        }
    };
}

rrr_ops! {
    /// `rd = rs1 + rs2` (wrapping).
    add => Add [Int],
    /// `rd = rs1 - rs2` (wrapping).
    sub => Sub [Int],
    /// `rd = rs1 * rs2` (low 32 bits).
    mul => Mul [Int],
    /// Bitwise AND.
    and => And [Int],
    /// Bitwise OR.
    or => Or [Int],
    /// Bitwise XOR.
    xor => Xor [Int],
    /// Logical left shift by `rs2 & 31`.
    sll => Sll [Int],
    /// Logical right shift by `rs2 & 31`.
    srl => Srl [Int],
    /// Arithmetic right shift by `rs2 & 31`.
    sra => Sra [Int],
    /// Signed set-less-than.
    slt => Slt [Int],
    /// Unsigned set-less-than.
    sltu => Sltu [Int],
    /// FP add.
    fadd => Fadd [Fp],
    /// FP subtract.
    fsub => Fsub [Fp],
    /// FP multiply.
    fmul => Fmul [Fp],
    /// FP divide.
    fdiv => Fdiv [Fp],
}

macro_rules! rri_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $($(#[$doc])*
            pub fn $name(&mut self, rd: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
                debug_assert!(rd.class() == RegClass::Int && rs1.class() == RegClass::Int,
                    "wrong register class for {}", stringify!($name));
                self.rri(Opcode::$op, rd, rs1, imm)
            })*
        }
    };
}

rri_ops! {
    /// `rd = rs1 + imm` (wrapping).
    addi => Addi,
    /// `rd = rs1 & zext(imm16)`.
    andi => Andi,
    /// `rd = rs1 | zext(imm16)`.
    ori => Ori,
    /// `rd = rs1 ^ zext(imm16)`.
    xori => Xori,
    /// Signed set-less-than immediate.
    slti => Slti,
    /// Left shift by constant.
    slli => Slli,
    /// Logical right shift by constant.
    srli => Srli,
    /// Arithmetic right shift by constant.
    srai => Srai,
}

impl ProgramBuilder {
    /// `rd = imm16 << 16`.
    pub fn lui(&mut self, rd: ArchReg, imm16: u32) -> &mut Self {
        debug_assert!(imm16 <= 0xffff);
        self.rri(Opcode::Lui, rd, ArchReg::ZERO, imm16 as i32)
    }

    /// Load a full 32-bit constant (`lui` + `ori`, or a single `addi` when
    /// the value fits in a signed 16-bit immediate).
    pub fn li(&mut self, rd: ArchReg, value: u32) -> &mut Self {
        let v = value as i32;
        if (i16::MIN as i32..=i16::MAX as i32).contains(&v) {
            return self.addi(rd, ArchReg::ZERO, v);
        }
        self.lui(rd, value >> 16);
        if value & 0xffff != 0 {
            self.ori(rd, rd, (value & 0xffff) as i32);
        }
        self
    }

    /// Copy an integer register.
    pub fn mv(&mut self, rd: ArchReg, rs: ArchReg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Load word: `rd = mem32[rs1 + imm]`.
    pub fn lw(&mut self, rd: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int && rs1.class() == RegClass::Int);
        self.rri(Opcode::Lw, rd, rs1, imm)
    }

    /// Load byte unsigned: `rd = zext(mem8[rs1 + imm])`.
    pub fn lbu(&mut self, rd: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int && rs1.class() == RegClass::Int);
        self.rri(Opcode::Lbu, rd, rs1, imm)
    }

    /// Store word: `mem32[rs1 + imm] = rdata`.
    pub fn sw(&mut self, rdata: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(rdata.class() == RegClass::Int && rs1.class() == RegClass::Int);
        self.rri(Opcode::Sw, rdata, rs1, imm)
    }

    /// Store byte: `mem8[rs1 + imm] = rdata & 0xff`.
    pub fn sb(&mut self, rdata: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(rdata.class() == RegClass::Int && rs1.class() == RegClass::Int);
        self.rri(Opcode::Sb, rdata, rs1, imm)
    }

    /// Load FP double: `fd = mem64[rs1 + imm]`.
    pub fn fld(&mut self, fd: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(fd.class() == RegClass::Fp && rs1.class() == RegClass::Int);
        self.rri(Opcode::Fld, fd, rs1, imm)
    }

    /// Store FP double: `mem64[rs1 + imm] = fdata`.
    pub fn fsd(&mut self, fdata: ArchReg, rs1: ArchReg, imm: i32) -> &mut Self {
        debug_assert!(fdata.class() == RegClass::Fp && rs1.class() == RegClass::Int);
        self.rri(Opcode::Fsd, fdata, rs1, imm)
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.branch(Opcode::Beq, rs1, rs2, label)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bne, rs1, rs2, label)
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.branch(Opcode::Blt, rs1, rs2, label)
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: ArchReg, rs2: ArchReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bge, rs1, rs2, label)
    }

    /// Unconditional direct jump.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.fixups
            .push((self.insts.len(), label.to_string(), FixupKind::Jump26));
        self.emit(Inst {
            op: Opcode::J,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Call: jump and link `r31`.
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.fixups
            .push((self.insts.len(), label.to_string(), FixupKind::Jump26));
        self.emit(Inst {
            op: Opcode::Jal,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Indirect jump to `rs1`.
    pub fn jr(&mut self, rs1: ArchReg) -> &mut Self {
        debug_assert!(rs1.class() == RegClass::Int);
        self.emit(Inst {
            op: Opcode::Jr,
            rd: 0,
            rs1: rs1.index(),
            rs2: 0,
            imm: 0,
        })
    }

    /// Return: `jr r31`.
    pub fn ret(&mut self) -> &mut Self {
        self.jr(crate::reg::RA)
    }

    /// Indirect call: jump to `rs1`, link into `rd`.
    pub fn jalr(&mut self, rd: ArchReg, rs1: ArchReg) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int && rs1.class() == RegClass::Int);
        self.emit(Inst {
            op: Opcode::Jalr,
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: 0,
            imm: 0,
        })
    }

    /// FP square root.
    pub fn fsqrt(&mut self, fd: ArchReg, fs: ArchReg) -> &mut Self {
        debug_assert!(fd.class() == RegClass::Fp && fs.class() == RegClass::Fp);
        self.rri(Opcode::Fsqrt, fd, fs, 0)
    }

    /// FP negate.
    pub fn fneg(&mut self, fd: ArchReg, fs: ArchReg) -> &mut Self {
        debug_assert!(fd.class() == RegClass::Fp && fs.class() == RegClass::Fp);
        self.rri(Opcode::Fneg, fd, fs, 0)
    }

    /// FP register copy.
    pub fn fmov(&mut self, fd: ArchReg, fs: ArchReg) -> &mut Self {
        debug_assert!(fd.class() == RegClass::Fp && fs.class() == RegClass::Fp);
        self.rri(Opcode::Fmov, fd, fs, 0)
    }

    /// Convert integer to FP: `fd = (f64) rs1`.
    pub fn cvtif(&mut self, fd: ArchReg, rs1: ArchReg) -> &mut Self {
        debug_assert!(fd.class() == RegClass::Fp && rs1.class() == RegClass::Int);
        self.rri(Opcode::Cvtif, fd, rs1, 0)
    }

    /// Convert FP to integer (truncating): `rd = (i32) fs1`.
    pub fn cvtfi(&mut self, rd: ArchReg, fs1: ArchReg) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int && fs1.class() == RegClass::Fp);
        self.rri(Opcode::Cvtfi, rd, fs1, 0)
    }

    /// FP compare equal into an integer register.
    pub fn feq(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int);
        self.emit(Inst {
            op: Opcode::Feq,
            rd: rd.index(),
            rs1: fs1.index(),
            rs2: fs2.index(),
            imm: 0,
        })
    }

    /// FP compare less-than into an integer register.
    pub fn flt(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int);
        self.emit(Inst {
            op: Opcode::Flt,
            rd: rd.index(),
            rs1: fs1.index(),
            rs2: fs2.index(),
            imm: 0,
        })
    }

    /// FP compare less-or-equal into an integer register.
    pub fn fle(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        debug_assert!(rd.class() == RegClass::Int);
        self.emit(Inst {
            op: Opcode::Fle,
            rd: rd.index(),
            rs1: fs1.index(),
            rs2: fs2.index(),
            imm: 0,
        })
    }

    /// No-operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::NOP)
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst {
            op: Opcode::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn backward_and_forward_branches() {
        let mut b = ProgramBuilder::new(0);
        b.label("start");
        b.beq(R1, R0, "end"); // forward
        b.addi(R1, R1, -1);
        b.j("start"); // backward
        b.label("end");
        b.halt();
        let p = b.finish().unwrap();
        let beq = Inst::decode(p.code[0]).unwrap();
        assert_eq!(beq.imm, 2); // skips 2 instructions
        let j = Inst::decode(p.code[2]).unwrap();
        assert_eq!(j.imm, -3);
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new(0);
        b.j("nowhere");
        assert_eq!(
            b.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new(0);
        b.label("x");
        b.nop();
        b.label("x");
        assert_eq!(
            b.finish().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn li_expansion() {
        let mut b = ProgramBuilder::new(0);
        b.li(R1, 7); // addi
        b.li(R2, 0x12340000); // lui only
        b.li(R3, 0x12345678); // lui + ori
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 4);
        let i0 = Inst::decode(p.code[0]).unwrap();
        assert_eq!((i0.op, i0.imm), (Opcode::Addi, 7));
        assert_eq!(Inst::decode(p.code[1]).unwrap().op, Opcode::Lui);
        assert_eq!(Inst::decode(p.code[3]).unwrap().op, Opcode::Ori);
    }

    #[test]
    fn store_encodes_data_in_rd_field() {
        let mut b = ProgramBuilder::new(0);
        b.sw(R5, R6, 12);
        let p = b.finish().unwrap();
        let i = Inst::decode(p.code[0]).unwrap();
        assert_eq!((i.rd, i.rs1, i.imm), (5, 6, 12));
    }

    #[test]
    fn data_helpers() {
        let mut b = ProgramBuilder::new(0);
        b.nop();
        b.data_u32(0x100, &[1, 2]);
        b.data_f64(0x200, &[1.5]);
        b.data_bytes(0x300, &[9]);
        let p = b.finish().unwrap();
        assert_eq!(p.data.len(), 3);
        assert_eq!(p.data_bytes(), 8 + 8 + 1);
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new(0x1000);
        assert_eq!(b.here(), 0x1000);
        b.nop().nop();
        assert_eq!(b.here(), 0x1008);
        assert_eq!(b.len(), 2);
    }
}
