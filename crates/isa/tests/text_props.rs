//! Randomized property tests: the textual assembler round-trips the
//! disassembler's output for arbitrary (non-control) instructions, and
//! random source never panics the parser. Fixed seeds keep the suite
//! deterministic and offline.

use wib_isa::inst::{Inst, Opcode};
use wib_isa::text::parse_program;
use wib_rng::StdRng;

// Everything except control flow (whose disassembly prints raw offsets,
// not labels) and nop/halt handled separately.
const STRAIGHTLINE: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Addi,
    Opcode::Slti,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Lw,
    Opcode::Lbu,
    Opcode::Sw,
    Opcode::Sb,
    Opcode::Fld,
    Opcode::Fsd,
    Opcode::Fadd,
    Opcode::Fsub,
    Opcode::Fmul,
    Opcode::Fdiv,
    Opcode::Fsqrt,
    Opcode::Fneg,
    Opcode::Fmov,
    Opcode::Cvtif,
    Opcode::Cvtfi,
    Opcode::Feq,
    Opcode::Flt,
    Opcode::Fle,
];

fn random_straightline_inst(r: &mut StdRng) -> Inst {
    let op = STRAIGHTLINE[r.random_range(0..STRAIGHTLINE.len())];
    let (rd, rs1, rs2) = (
        r.random_range(0u8..32),
        r.random_range(0u8..32),
        r.random_range(0u8..32),
    );
    let imm: i16 = r.random();
    let mut inst = Inst {
        op,
        rd,
        rs1,
        rs2,
        imm: imm as i32,
    };
    if inst.uses_imm() {
        inst.rs2 = 0;
    } else {
        inst.imm = 0;
    }
    // Single-source instructions leave the rs2 field zero (the canonical
    // encoding the assembler produces).
    if matches!(
        op,
        Opcode::Fsqrt | Opcode::Fneg | Opcode::Fmov | Opcode::Cvtif | Opcode::Cvtfi
    ) {
        inst.rs2 = 0;
    }
    inst
}

/// disassemble -> parse -> encode is the identity on straight-line
/// instructions.
#[test]
fn disassembly_reparses_identically() {
    let mut r = StdRng::seed_from_u64(0x7e27_0001);
    for _ in 0..256 {
        let n = r.random_range(1..20);
        let insts: Vec<Inst> = (0..n).map(|_| random_straightline_inst(&mut r)).collect();
        let source: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let program = parse_program(&source).expect("disassembly is valid assembly");
        assert_eq!(program.code.len(), insts.len());
        for (word, inst) in program.code.iter().zip(&insts) {
            assert_eq!(*word, inst.encode(), "mismatch for `{inst}`");
        }
    }
}

/// Arbitrary text never panics the parser (errors are fine).
#[test]
fn parser_never_panics() {
    let mut r = StdRng::seed_from_u64(0x7e27_0002);
    for _ in 0..512 {
        let len = r.random_range(0..200usize);
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline — the space the parser sees.
                if r.random_range(0..12) == 0 {
                    '\n'
                } else {
                    r.random_range(0x20u8..0x7f) as char
                }
            })
            .collect();
        let _ = parse_program(&src);
    }
}
