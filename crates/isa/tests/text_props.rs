//! Property tests: the textual assembler round-trips the disassembler's
//! output for arbitrary (non-control) instructions, and random source
//! never panics the parser.

use proptest::prelude::*;
use wib_isa::inst::{Inst, Opcode};
use wib_isa::text::parse_program;

fn arb_straightline_inst() -> impl Strategy<Value = Inst> {
    // Everything except control flow (whose disassembly prints raw
    // offsets, not labels) and nop/halt handled separately.
    let ops = vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Addi,
        Opcode::Slti,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Lw,
        Opcode::Lbu,
        Opcode::Sw,
        Opcode::Sb,
        Opcode::Fld,
        Opcode::Fsd,
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fsqrt,
        Opcode::Fneg,
        Opcode::Fmov,
        Opcode::Cvtif,
        Opcode::Cvtfi,
        Opcode::Feq,
        Opcode::Flt,
        Opcode::Fle,
    ];
    (prop::sample::select(ops), 0u8..32, 0u8..32, 0u8..32, any::<i16>()).prop_map(
        |(op, rd, rs1, rs2, imm)| {
            let mut inst = Inst { op, rd, rs1, rs2, imm: imm as i32 };
            if inst.uses_imm() {
                inst.rs2 = 0;
            } else {
                inst.imm = 0;
            }
            // Single-source instructions leave the rs2 field zero (the
            // canonical encoding the assembler produces).
            if matches!(op, Opcode::Fsqrt | Opcode::Fneg | Opcode::Fmov | Opcode::Cvtif
                | Opcode::Cvtfi)
            {
                inst.rs2 = 0;
            }
            inst
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// disassemble -> parse -> encode is the identity on straight-line
    /// instructions.
    #[test]
    fn disassembly_reparses_identically(insts in prop::collection::vec(arb_straightline_inst(), 1..20)) {
        let source: String = insts
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let program = parse_program(&source).expect("disassembly is valid assembly");
        prop_assert_eq!(program.code.len(), insts.len());
        for (word, inst) in program.code.iter().zip(&insts) {
            prop_assert_eq!(*word, inst.encode(), "mismatch for `{}`", inst);
        }
    }

    /// Arbitrary text never panics the parser (errors are fine).
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let _ = parse_program(&src);
    }
}
