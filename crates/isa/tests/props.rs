//! Randomized property tests: instruction encoding and assembler
//! invariants, driven by a fixed-seed deterministic generator so the
//! suite runs fully offline and reproduces exactly.

use wib_isa::inst::{Inst, Opcode};
use wib_rng::StdRng;

fn random_opcode(r: &mut StdRng) -> Opcode {
    loop {
        if let Some(op) = Opcode::from_code(r.random_range(0u8..64)) {
            return op;
        }
    }
}

fn random_inst(r: &mut StdRng) -> Inst {
    let op = random_opcode(r);
    let (rd, rs1, rs2) = (
        r.random_range(0u8..32),
        r.random_range(0u8..32),
        r.random_range(0u8..32),
    );
    let raw: i32 = r.random();
    let mut inst = Inst {
        op,
        rd,
        rs1,
        rs2,
        imm: 0,
    };
    if inst.is_jump_direct() {
        inst.rd = 0;
        inst.rs1 = 0;
        inst.rs2 = 0;
        inst.imm = (raw << 6) >> 6; // 26-bit signed
    } else if inst.uses_imm() {
        inst.rs2 = 0;
        inst.imm = raw as i16 as i32; // 16-bit signed
    }
    inst
}

#[test]
fn encode_decode_round_trips() {
    let mut r = StdRng::seed_from_u64(0x15a_0001);
    for _ in 0..2048 {
        let inst = random_inst(&mut r);
        let decoded = Inst::decode(inst.encode()).expect("valid instruction decodes");
        assert_eq!(decoded, inst);
    }
}

#[test]
fn decode_never_panics() {
    // Arbitrary bits either decode or don't; no panic, and a decoded
    // instruction re-encodes to a word that decodes identically.
    let mut r = StdRng::seed_from_u64(0x15a_0002);
    for _ in 0..4096 {
        let word: u32 = r.random();
        if let Some(inst) = Inst::decode(word) {
            let again = Inst::decode(inst.encode()).expect("canonical form decodes");
            assert_eq!(again, inst);
        }
    }
}

#[test]
fn sources_and_dest_are_in_range() {
    let mut r = StdRng::seed_from_u64(0x15a_0003);
    for _ in 0..2048 {
        let inst = random_inst(&mut r);
        if let Some(d) = inst.dest() {
            assert!(d.flat() < 64);
            assert!(!d.is_zero());
        }
        for s in inst.sources().into_iter().flatten() {
            assert!(s.flat() < 64);
        }
    }
}

#[test]
fn display_is_nonempty() {
    let mut r = StdRng::seed_from_u64(0x15a_0004);
    for _ in 0..1024 {
        assert!(!random_inst(&mut r).to_string().is_empty());
    }
}

#[test]
fn alu_results_are_deterministic() {
    let mut r = StdRng::seed_from_u64(0x15a_0005);
    for _ in 0..256 {
        let inst = random_inst(&mut r);
        let (a, b): (u64, u64) = (r.random(), r.random());
        let pc: u32 = r.random();
        let x = wib_isa::exec::alu_result(&inst, a, b, pc);
        let y = wib_isa::exec::alu_result(&inst, a, b, pc);
        // f64 NaNs must produce identical bit patterns run to run (the
        // co-simulation checker depends on this).
        assert_eq!(x, y);
    }
}
