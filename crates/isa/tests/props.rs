//! Property tests: instruction encoding and assembler invariants.

use proptest::prelude::*;
use wib_isa::inst::{Inst, Opcode};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0u8..64).prop_filter_map("valid opcode", Opcode::from_code)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_opcode(), 0u8..32, 0u8..32, 0u8..32, any::<i32>()).prop_map(|(op, rd, rs1, rs2, raw)| {
        let mut inst = Inst { op, rd, rs1, rs2, imm: 0 };
        if inst.is_jump_direct() {
            inst.rd = 0;
            inst.rs1 = 0;
            inst.rs2 = 0;
            inst.imm = (raw << 6) >> 6; // 26-bit signed
        } else if inst.uses_imm() {
            inst.rs2 = 0;
            inst.imm = raw as i16 as i32; // 16-bit signed
        }
        inst
    })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in arb_inst()) {
        let decoded = Inst::decode(inst.encode()).expect("valid instruction decodes");
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Arbitrary bits either decode or don't; no panic, and a decoded
        // instruction re-encodes to a word that decodes identically.
        if let Some(inst) = Inst::decode(word) {
            let again = Inst::decode(inst.encode()).expect("canonical form decodes");
            prop_assert_eq!(again, inst);
        }
    }

    #[test]
    fn sources_and_dest_are_in_range(inst in arb_inst()) {
        if let Some(d) = inst.dest() {
            prop_assert!(d.flat() < 64);
            prop_assert!(!d.is_zero());
        }
        for s in inst.sources().into_iter().flatten() {
            prop_assert!(s.flat() < 64);
        }
    }

    #[test]
    fn display_is_nonempty(inst in arb_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu_results_are_deterministic(
        inst in arb_inst(),
        a in any::<u64>(),
        b in any::<u64>(),
        pc in any::<u32>(),
    ) {
        let x = wib_isa::exec::alu_result(&inst, a, b, pc);
        let y = wib_isa::exec::alu_result(&inst, a, b, pc);
        // f64 NaNs must produce identical bit patterns run to run (the
        // co-simulation checker depends on this).
        prop_assert_eq!(x, y);
    }
}
