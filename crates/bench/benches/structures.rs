//! Micro-benchmarks of the simulator's hot structures: cache access, TLB
//! translation, branch prediction, WIB insert/extract cycles, issue-queue
//! wakeup, and LSQ forwarding. Uses the in-repo `timer` harness (no
//! external bench framework) so everything builds offline.

use std::hint::black_box;
use wib_bench::timer::Harness;
use wib_bpred::dir::{CombinedPredictor, DirConfig};
use wib_core::iq::{IqEntry, IssueQueue, SrcStatus};
use wib_core::lsq::LoadStoreQueue;
use wib_core::types::{PhysReg, SrcRef};
use wib_core::wib::Wib;
use wib_core::{SelectionPolicy, WibOrganization};
use wib_isa::reg::RegClass;
use wib_mem::cache::{AccessKind, Cache, CacheConfig};
use wib_mem::tlb::{Tlb, TlbConfig};

fn bench_cache(h: &Harness) {
    {
        let mut cache = Cache::new(CacheConfig::l1_32k("L1D"));
        // Warm one line.
        cache.access(0x1000, AccessKind::Read);
        h.bench("cache/l1d_hit_stream", || {
            black_box(cache.access(black_box(0x1000), AccessKind::Read));
        });
    }
    {
        let mut cache = Cache::new(CacheConfig::l1_32k("L1D"));
        let mut addr = 0u32;
        h.bench("cache/l1d_miss_stream", || {
            addr = addr.wrapping_add(64);
            black_box(cache.access(black_box(addr), AccessKind::Read));
        });
    }
}

fn bench_tlb(h: &Harness) {
    let mut tlb = Tlb::new(TlbConfig::isca2002());
    tlb.translate(0x5000);
    h.bench("tlb/hit", || {
        black_box(tlb.translate(black_box(0x5000)));
    });
}

fn bench_predictor(h: &Harness) {
    let mut p = CombinedPredictor::new(DirConfig::isca2002());
    let mut i = 0u32;
    h.bench("bpred/predict_resolve", || {
        i = i.wrapping_add(4);
        let pr = p.predict(black_box(i & 0xfffc));
        p.resolve(&pr.ckpt, i & 8 != 0, false);
    });
}

fn bench_wib(h: &Harness) {
    let mut wib = Wib::new(
        2048,
        WibOrganization::Banked { banks: 16 },
        SelectionPolicy::ProgramOrder,
        64,
    );
    let mut seq = 0u64;
    h.bench("wib/insert_complete_extract", || {
        let col = wib.allocate_column(seq).expect("column available");
        for k in 0..8usize {
            wib.insert((seq as usize + k + 1) % 2048, seq + 1 + k as u64, col);
        }
        wib.column_completed(col);
        let mut cycle = 0;
        while wib.resident() > 0 {
            wib.extract(cycle, 8, |_, _| true);
            cycle += 1;
        }
        seq += 64;
    });
}

fn bench_iq(h: &Harness) {
    let mut iq = IssueQueue::new(32);
    let src = SrcRef {
        class: RegClass::Int,
        preg: PhysReg(5),
    };
    let mut seq = 0u64;
    h.bench("iq/insert_wake_remove", || {
        for k in 0..8 {
            iq.insert(
                seq + k,
                IqEntry::new([Some((src, SrcStatus::Pending)), None]),
            );
        }
        for k in 0..8 {
            iq.satisfy(seq + k, PhysReg(5), RegClass::Int, SrcStatus::Ready);
        }
        let ready: Vec<u64> = iq.ready_seqs().collect();
        for s in ready {
            iq.remove(s);
        }
        seq += 8;
    });
}

fn bench_lsq(h: &Harness) {
    let mut lsq = LoadStoreQueue::new(64, 64);
    for s in 0..32u64 {
        lsq.push_store(s, 4);
        lsq.set_store_addr(s, 0x1000 + (s as u32) * 8);
        lsq.set_store_data(s, s);
    }
    lsq.push_load(100, 4);
    h.bench("lsq/forward_search", || {
        black_box(lsq.forward_for_load(100, black_box(0x1008), 4));
    });
}

fn main() {
    let h = Harness::from_env();
    bench_cache(&h);
    bench_tlb(&h);
    bench_predictor(&h);
    bench_wib(&h);
    bench_iq(&h);
    bench_lsq(&h);
}
