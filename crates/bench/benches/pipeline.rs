//! Criterion benchmarks of whole-core simulation throughput: simulated
//! instructions per wall-clock second for the base and WIB machines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wib_core::{MachineConfig, Processor, RunLimit};
use wib_isa::asm::ProgramBuilder;
use wib_isa::program::Program;
use wib_isa::reg::*;

fn kernel() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x20_0000);
    b.li(R4, 1_000_000);
    b.label("loop");
    b.lw(R2, R1, 0);
    b.add(R3, R2, R2);
    b.add(R5, R5, R3);
    b.addi(R1, R1, 64);
    b.andi(R1, R1, 0x7fff);
    b.li(R6, 0x20_0000);
    b.or(R1, R1, R6);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    b.finish().expect("assembles")
}

fn bench_cores(c: &mut Criterion) {
    const INSTS: u64 = 20_000;
    let program = kernel();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);
    group.bench_function("base_8way", |b| {
        let p = Processor::new(MachineConfig::base_8way());
        b.iter(|| black_box(p.run_program(&program, RunLimit::instructions(INSTS))));
    });
    group.bench_function("wib_2k", |b| {
        let p = Processor::new(MachineConfig::wib_2k());
        b.iter(|| black_box(p.run_program(&program, RunLimit::instructions(INSTS))));
    });
    group.bench_function("conventional_2k", |b| {
        let p = Processor::new(MachineConfig::conventional(2048));
        b.iter(|| black_box(p.run_program(&program, RunLimit::instructions(INSTS))));
    });
    group.finish();
}

criterion_group!(benches, bench_cores);
criterion_main!(benches);
