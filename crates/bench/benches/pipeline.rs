//! Whole-core simulation throughput: simulated instructions per
//! wall-clock second for the base and WIB machines. Uses the in-repo
//! `timer` harness (no external bench framework) so everything builds
//! offline.

use std::hint::black_box;
use wib_bench::timer::Harness;
use wib_core::{MachineConfig, Processor, RunLimit};
use wib_isa::asm::ProgramBuilder;
use wib_isa::program::Program;
use wib_isa::reg::*;

fn kernel() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.li(R1, 0x20_0000);
    b.li(R4, 1_000_000);
    b.label("loop");
    b.lw(R2, R1, 0);
    b.add(R3, R2, R2);
    b.add(R5, R5, R3);
    b.addi(R1, R1, 64);
    b.andi(R1, R1, 0x7fff);
    b.li(R6, 0x20_0000);
    b.or(R1, R1, R6);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    b.finish().expect("assembles")
}

fn main() {
    const INSTS: u64 = 20_000;
    let h = Harness::from_env();
    let program = kernel();
    for (name, cfg) in [
        ("pipeline/base_8way", MachineConfig::base_8way()),
        ("pipeline/wib_2k", MachineConfig::wib_2k()),
        (
            "pipeline/conventional_2k",
            MachineConfig::conventional(2048),
        ),
    ] {
        let p = Processor::new(cfg);
        let secs = h.bench(name, || {
            black_box(p.run_program(&program, RunLimit::instructions(INSTS)));
        });
        println!(
            "{name:<40} {:>10.2} M simulated insts/s",
            INSTS as f64 / secs / 1e6
        );
    }
}
