//! `WIB_RESULTS_DIR` handling: a results path that does not exist yet is
//! created (recursively) on first write instead of failing.
//!
//! This is the only test in this binary on purpose: it mutates the
//! process-global `WIB_RESULTS_DIR` environment variable, and integration
//! test binaries run in their own process, so nothing else can observe
//! the change.

use wib_bench::{emit_results_json, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::test_suite;

#[test]
fn emit_results_json_creates_missing_directories() {
    let runner = Runner {
        warmup: 200,
        insts: 2_000,
    };
    let workloads: Vec<_> = test_suite()
        .into_iter()
        .filter(|w| w.name() == "gzip")
        .collect();
    let configs = [("base", MachineConfig::base_8way())];
    let rows = sweep(&runner, &configs, &workloads);

    // Two levels of nonexistent directory below a fresh temp root.
    let root = std::env::temp_dir().join(format!("wib_results_dir_{}", std::process::id()));
    let nested = root.join("deep").join("results");
    let _ = std::fs::remove_dir_all(&root);
    assert!(!nested.exists());

    std::env::set_var("WIB_RESULTS_DIR", &nested);
    emit_results_json("fresh_dir_smoke", &runner, &["base"], &rows);
    std::env::remove_var("WIB_RESULTS_DIR");

    let path = nested.join("fresh_dir_smoke.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("expected {} to be written: {e}", path.display()));
    let doc = wib_core::Json::parse(&text).expect("emitted document parses");
    assert_eq!(
        doc.get("schema").and_then(wib_core::Json::as_str),
        Some("wib-sim/experiment-v1")
    );
    assert_eq!(
        doc.get("experiment").and_then(wib_core::Json::as_str),
        Some("fresh_dir_smoke")
    );
    std::fs::remove_dir_all(&root).unwrap();
}
