//! Steady-state allocation gate: a counting `#[global_allocator]` shim
//! proves the cycle loop does not allocate per simulated cycle.
//!
//! Method: run the same workload twice on the same machine with a short
//! and a long instruction budget, and compare allocation counts. The
//! fixed construction cost (arena slots, register files, caches) and the
//! warm-up transient (buffers growing to their plateau) are identical in
//! both runs, so the *delta* divided by the extra cycles measures the
//! per-cycle allocation rate of the steady-state loop. The arena issue
//! queue, in-place WIB extraction, scratch-buffer cycle loop and the
//! event heap hold this near zero; the `HashMap + BTreeSet + per-cycle
//! collect` structures they replaced allocated many times per cycle.
//!
//! Everything runs inside one `#[test]` so no concurrent test pollutes
//! the counter (the harness's own bookkeeping between tests is not
//! counted against the budget).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wib_core::{MachineConfig, Processor, RunLimit};
use wib_workloads::test_suite;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations and cycles consumed by one cold run of `insts`
/// instructions.
fn measure(cfg: &MachineConfig, insts: u64) -> (u64, u64) {
    let w = test_suite().into_iter().next().expect("a workload");
    let program = w.program();
    let p = Processor::new(cfg.clone());
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = p.run_program(&program, RunLimit::instructions(insts));
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(r.stats.cycles > 0);
    (after - before, r.stats.cycles)
}

// The `checked` feature compiles the per-cycle machine check into the
// loop, and its ownership census allocates scratch by design; the gate's
// claim — no checker overhead in a normal release build — is only
// meaningful with the feature off.
#[cfg_attr(feature = "checked", ignore = "machine check allocates by design")]
#[test]
fn steady_state_cycle_loop_is_allocation_free() {
    for (name, cfg, budget_per_kcycle) in [
        // No WIB: the wakeup-select/writeback/event loop proper. The
        // budget asserts a true zero (measured ~0.06/kcycle residual from
        // one late-growing buffer).
        ("base", MachineConfig::base_8way(), 1.0),
        // Banked WIB + two-level register file: eligible sets are
        // lazy-deletion binary heaps and the L1 recency tracker is an
        // intrusive list, so the only remaining growth is heaps/buffers
        // doubling toward their plateau (measured ~1.5/kcycle on this
        // miss-heavy cold run, and shrinking with run length).
        ("wib2k", MachineConfig::wib_2k(), 20.0),
    ] {
        let (short_allocs, short_cycles) = measure(&cfg, 20_000);
        let (long_allocs, long_cycles) = measure(&cfg, 80_000);
        let extra_allocs = long_allocs.saturating_sub(short_allocs);
        let extra_cycles = long_cycles - short_cycles;
        let per_kcycle = extra_allocs as f64 * 1000.0 / extra_cycles as f64;
        eprintln!(
            "[{name}] {extra_allocs} allocations over {extra_cycles} extra cycles \
             ({per_kcycle:.3} per 1000 cycles)"
        );
        // The residual budget covers amortized growth that is O(log n),
        // not O(n): interval time-series samples, histogram bins, the
        // event heap and lsq/rob rings doubling toward their plateau.
        assert!(
            per_kcycle < budget_per_kcycle,
            "[{name}] steady-state cycle loop allocates {per_kcycle:.3} times per \
             1000 cycles (budget {budget_per_kcycle}): a per-cycle allocation crept \
             back into the hot path"
        );
    }
}
