//! Shared infrastructure for the experiment harnesses that regenerate the
//! paper's tables and figures.
//!
//! Every harness binary (`table1`, `table2`, `fig1`, `fig4`, `fig5`,
//! `fig6`, `fig7`, `policies`, `sensitivity`) uses [`Runner`] to execute
//! the 18-kernel suite on a set of machine configurations and prints an
//! aligned text table of IPCs / speedups, with the paper's reported
//! numbers alongside where applicable.
//!
//! Environment knobs:
//! - `WIB_WARMUP`: fast-forward instructions before detailed simulation
//!   (default 200,000; the paper skips 400M).
//! - `WIB_INSTS`: detailed instructions per run (default 200,000; the
//!   paper measures 100M).
//! - `WIB_QUICK=1`: 20k/20k smoke-test mode (used by integration tests).
//! - `WIB_THREADS`: sweep worker threads (default: available parallelism;
//!   `1` forces the serial path). Results are merged in input order, so
//!   output is identical for any thread count.

use wib_core::{Json, MachineConfig, Processor, RunLimit, RunResult};
use wib_workloads::{Suite, Workload};

pub mod fuzz;
pub mod parallel;
pub mod timer;

/// Executes workloads under a consistent warm-up/measurement protocol.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    /// Instructions fast-forwarded on the reference interpreter.
    pub warmup: u64,
    /// Instructions measured in detail.
    pub insts: u64,
}

impl Runner {
    /// Read the protocol from the environment (see module docs).
    pub fn from_env() -> Runner {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        if std::env::var("WIB_QUICK").is_ok() {
            return Runner {
                warmup: 20_000,
                insts: 20_000,
            };
        }
        Runner {
            warmup: get("WIB_WARMUP", 200_000),
            insts: get("WIB_INSTS", 200_000),
        }
    }

    /// Run one workload on one machine.
    pub fn run(&self, cfg: &MachineConfig, w: &Workload) -> RunResult {
        Processor::new(cfg.clone()).run_program_warmed(
            w.program(),
            self.warmup,
            RunLimit::instructions(self.insts),
        )
    }
}

/// Arithmetic mean.
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Harmonic mean (the paper reports HM of IPCs in Table 2).
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        0.0
    } else {
        xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
    }
}

/// One measured row: a workload's IPC under every configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// IPC per configuration, in the order the configs were given.
    pub ipcs: Vec<f64>,
    /// Full run results (for harnesses that need more statistics).
    pub results: Vec<RunResult>,
}

/// Run `workloads` x `configs` and collect IPC rows. Points are fanned
/// across `WIB_THREADS` scoped workers (one independent `Processor` per
/// run) and reassembled in input order, so the rows — and any JSON
/// derived from them — are identical to a serial sweep. A line per run is
/// printed to stderr so long sweeps are watchable (line *order* follows
/// completion and may interleave across threads).
pub fn sweep(
    runner: &Runner,
    configs: &[(&str, MachineConfig)],
    workloads: &[Workload],
) -> Vec<Row> {
    let points: Vec<(usize, usize)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| (0..configs.len()).map(move |ci| (wi, ci)))
        .collect();
    let names = |_: usize, &(wi, ci): &(usize, usize)| {
        format!("{}/{}", configs[ci].0, workloads[wi].name())
    };
    let results = parallel::parallel_map_named(&points, names, |_, &(wi, ci)| {
        let (cname, cfg) = &configs[ci];
        let w = &workloads[wi];
        let t = std::time::Instant::now();
        let r = runner.run(cfg, w);
        eprintln!(
            "  [{}] {} ipc={:.3} ({:.1}s)",
            cname,
            w.name(),
            r.ipc(),
            t.elapsed().as_secs_f64()
        );
        r
    });
    let mut results = results.into_iter();
    workloads
        .iter()
        .map(|w| {
            let results: Vec<RunResult> = (0..configs.len())
                .map(|_| results.next().expect("one result per point"))
                .collect();
            let ipcs = results.iter().map(RunResult::ipc).collect();
            Row {
                name: w.name().to_string(),
                suite: w.suite(),
                ipcs,
                results,
            }
        })
        .collect()
}

/// Print a per-benchmark speedup table (each config's IPC over the first
/// config's), followed by per-suite arithmetic-mean speedups — the layout
/// of the paper's bar charts.
pub fn print_speedups(title: &str, config_names: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    print!("{:>12}", "benchmark");
    for c in &config_names[1..] {
        print!(" {c:>12}");
    }
    println!();
    for row in rows {
        print!("{:>12}", row.name);
        for i in 1..row.ipcs.len() {
            print!(" {:>12.3}", row.ipcs[i] / row.ipcs[0]);
        }
        println!();
    }
    for suite in [Suite::Int, Suite::Fp, Suite::Olden] {
        let members: Vec<&Row> = rows.iter().filter(|r| r.suite == suite).collect();
        if members.is_empty() {
            continue;
        }
        print!("{:>12}", format!("avg {suite}"));
        for i in 1..config_names.len() {
            let speedups: Vec<f64> = members.iter().map(|r| r.ipcs[i] / r.ipcs[0]).collect();
            print!(" {:>12.3}", amean(&speedups));
        }
        println!();
    }
}

/// Render per-suite average speedups as an ASCII bar chart (the shape of
/// the paper's figures). Bars are scaled to the largest value shown.
pub fn print_suite_bars(config_names: &[&str], rows: &[Row]) {
    let suites = [Suite::Int, Suite::Fp, Suite::Olden];
    let mut values: Vec<(String, f64)> = Vec::new();
    for suite in suites {
        for (i, name) in config_names.iter().enumerate().skip(1) {
            let speedups: Vec<f64> = rows
                .iter()
                .filter(|r| r.suite == suite)
                .map(|r| r.ipcs[i] / r.ipcs[0])
                .collect();
            values.push((format!("{suite} / {name}"), amean(&speedups)));
        }
    }
    let max = values.iter().map(|(_, v)| *v).fold(1.0, f64::max);
    println!("\nsuite-average speedup over {}:", config_names[0]);
    for (label, v) in values {
        let width = ((v / max) * 48.0).round().max(0.0) as usize;
        println!("  {label:<24} {:<48} {v:.2}", "#".repeat(width));
    }
}

/// Machine-readable form of an experiment's sweep: one record per
/// benchmark with per-configuration IPC, cycles, committed instructions
/// and the CPI stack, plus speedups over the first configuration.
pub fn rows_to_json(experiment: &str, runner: &Runner, names: &[&str], rows: &[Row]) -> Json {
    let mut out = Vec::new();
    for row in rows {
        let mut per_config = Json::obj();
        for (i, name) in names.iter().enumerate() {
            let r = &row.results[i];
            per_config.set(
                name,
                Json::obj()
                    .field("ipc", r.ipc())
                    .field("cycles", r.stats.cycles)
                    .field("committed", r.stats.committed)
                    .field("cpi_stack", r.stats.cpi.to_json()),
            );
        }
        let mut speedups = Json::obj();
        for (i, name) in names.iter().enumerate().skip(1) {
            speedups.set(name, row.ipcs[i] / row.ipcs[0]);
        }
        out.push(
            Json::obj()
                .field("benchmark", row.name.as_str())
                .field("suite", row.suite.to_string())
                .field("configs", per_config)
                .field("speedup", speedups),
        );
    }
    Json::obj()
        .field("schema", "wib-sim/experiment-v1")
        .field("experiment", experiment)
        .field("warmup", runner.warmup)
        .field("insts", runner.insts)
        .field("rows", out)
}

/// Write an experiment's sweep as `$WIB_RESULTS_DIR/<experiment>.json`.
/// A silent no-op when `WIB_RESULTS_DIR` is unset, so the text harnesses
/// behave exactly as before unless the experiment driver opts in. The
/// directory (and any missing parents) is created on first write, so
/// pointing the variable at a fresh path just works.
pub fn emit_results_json(experiment: &str, runner: &Runner, names: &[&str], rows: &[Row]) {
    let Ok(dir) = std::env::var("WIB_RESULTS_DIR") else {
        return;
    };
    let doc = rows_to_json(experiment, runner, names, rows);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("  warning: cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/{experiment}.json");
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("  wrote {path}"),
        Err(e) => eprintln!("  warning: cannot write {path}: {e}"),
    }
}

/// Per-suite average speedups of config `idx` relative to config 0.
pub fn suite_speedups(rows: &[Row], idx: usize) -> [(Suite, f64); 3] {
    let mut out = [(Suite::Int, 0.0), (Suite::Fp, 0.0), (Suite::Olden, 0.0)];
    for (suite, avg) in &mut out {
        let s: Vec<f64> = rows
            .iter()
            .filter(|r| r.suite == *suite)
            .map(|r| r.ipcs[idx] / r.ipcs[0])
            .collect();
        *avg = amean(&s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((hmean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((hmean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM is dominated by the small value.
        assert!(hmean(&[0.1, 10.0]) < 0.2);
        assert_eq!(hmean(&[]), 0.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn env_defaults() {
        let r = Runner {
            warmup: 1,
            insts: 2,
        };
        assert_eq!((r.warmup, r.insts), (1, 2));
        let r = Runner::from_env();
        assert!(r.insts > 0 && r.warmup > 0);
    }
}
