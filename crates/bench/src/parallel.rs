//! Work-stealing parallel map for experiment sweeps.
//!
//! Every (benchmark, configuration) point of a sweep is an independent
//! simulation — each worker owns its `Processor` — so the experiment
//! harnesses fan the points across scoped threads and reassemble results
//! **in input order**, making the merged output bit-identical to a serial
//! run regardless of thread count or scheduling.
//!
//! The thread count comes from `WIB_THREADS`, defaulting to the machine's
//! available parallelism. `WIB_THREADS=1` forces the serial path (used by
//! tests that compare serial and parallel output).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads for a sweep: `WIB_THREADS` if set (minimum 1), else
/// [`std::thread::available_parallelism`].
pub fn worker_threads() -> usize {
    std::env::var("WIB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Apply `f` to every item on a pool of scoped worker threads and return
/// the results in input order.
///
/// Items are claimed dynamically (an atomic cursor), so long and short
/// simulations load-balance; determinism is unaffected because results
/// are placed by input index, not completion order.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = worker_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |_, &x| x + 1), vec![8]);
    }
}
