//! Work-stealing parallel map for experiment sweeps.
//!
//! Every (benchmark, configuration) point of a sweep is an independent
//! simulation — each worker owns its `Processor` — so the experiment
//! harnesses fan the points across scoped threads and reassemble results
//! **in input order**, making the merged output bit-identical to a serial
//! run regardless of thread count or scheduling.
//!
//! The thread count comes from `WIB_THREADS`, defaulting to the machine's
//! available parallelism. `WIB_THREADS=1` forces the serial path (used by
//! tests that compare serial and parallel output).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker threads for a sweep: `WIB_THREADS` if set (minimum 1), else
/// [`std::thread::available_parallelism`].
pub fn worker_threads() -> usize {
    std::env::var("WIB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Apply `f` to every item on a pool of scoped worker threads and return
/// the results in input order. Jobs are labeled by their index; sweeps
/// with meaningful labels should use [`parallel_map_named`].
///
/// # Panics
/// Propagates the first (lowest-index) job panic; see
/// [`parallel_map_named`].
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_named(items, |i, _| format!("#{i}"), f)
}

/// [`parallel_map`] with a caller-supplied job name for failure reports.
///
/// Items are claimed dynamically (an atomic cursor), so long and short
/// simulations load-balance; determinism is unaffected because results
/// are placed by input index, not completion order. `WIB_THREADS` larger
/// than the job count is clamped — excess workers are never spawned.
///
/// # Panics
/// If any job panics, every worker stops claiming new jobs and the
/// lowest-index failure is re-raised as
/// `sweep job '<name>' (point <i> of <n>) panicked: <message>` — a sweep
/// never returns a truncated or reordered result set.
pub fn parallel_map_named<T, R, N, F>(items: &[T], name: N, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    N: Fn(usize, &T) -> String + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let run = |i: usize| catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(panic_text);
    let fail = |i: usize, msg: &str| -> ! {
        panic!(
            "sweep job '{}' (point {i} of {}) panicked: {msg}",
            name(i, &items[i]),
            items.len()
        )
    };
    let threads = worker_threads().min(items.len()).max(1);
    if threads == 1 {
        let mut out = Vec::with_capacity(items.len());
        for i in 0..items.len() {
            match run(i) {
                Ok(r) => out.push(r),
                Err(msg) => fail(i, &msg),
            }
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let first_failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let first_failure = &first_failure;
                let run = &run;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while !poisoned.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match run(i) {
                            Ok(r) => got.push((i, r)),
                            Err(msg) => {
                                poisoned.store(true, Ordering::Relaxed);
                                let mut slot = first_failure.lock().unwrap();
                                // Keep the lowest-index failure so the
                                // report is deterministic.
                                if slot.as_ref().map_or(true, |(j, _)| i < *j) {
                                    *slot = Some((i, msg));
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    if let Some((i, msg)) = first_failure.into_inner().unwrap() {
        fail(i, &msg);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every item computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_jobs() {
        // WIB_THREADS far above the job count must clamp, not wedge or
        // drop results. The env var is set only here; any concurrent
        // reader still behaves correctly at any thread count.
        std::env::set_var("WIB_THREADS", "64");
        let out = parallel_map(&[1u64, 2, 3], |_, &x| x * 10);
        std::env::remove_var("WIB_THREADS");
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_panic_carries_job_name() {
        let items: Vec<usize> = (0..40).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_named(
                &items,
                |_, &x| format!("job-{x}"),
                |_, &x| {
                    if x == 17 {
                        panic!("boom {x}");
                    }
                    x
                },
            )
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload");
        assert!(
            msg.contains("sweep job 'job-17' (point 17 of 40) panicked: boom 17"),
            "got: {msg}"
        );
    }

    #[test]
    fn lowest_index_failure_wins_and_nothing_truncates() {
        // Two failing jobs: the report must name the lower index no
        // matter which worker hit its failure first.
        let items: Vec<usize> = (0..64).collect();
        for _ in 0..4 {
            let err = std::panic::catch_unwind(|| {
                parallel_map(&items, |_, &x| {
                    if x == 5 || x == 60 {
                        panic!("bad point");
                    }
                    x
                })
            })
            .unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap();
            assert!(msg.contains("'#5' (point 5 of 64)"), "got: {msg}");
        }
    }
}
