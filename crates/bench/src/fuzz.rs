//! Differential fuzzer for the pipeline model.
//!
//! Each case is a randomly generated (but guaranteed-terminating)
//! assembly program run on a handful of randomly sampled machine
//! configurations (drawn from the [`MachineConfig::from_spec`] family)
//! with every correctness oracle armed:
//!
//! - **co-simulation**: every committed instruction is cross-checked
//!   against the reference interpreter (PC and destination value);
//! - **machine check**: every structure's invariant checker plus the
//!   cross-structure ownership census runs once per cycle
//!   (see `wib_core::check`);
//! - **fast-forward differential**: the same run with the
//!   quiescent-cycle skip disabled must produce bit-identical statistics;
//! - **cross-config differential**: every configuration must commit the
//!   same number of instructions (they all run the program to `halt`).
//!
//! A failing case is automatically shrunk (line deletion + loop-count
//! reduction to a fixpoint) and written to `tests/repros/` as a
//! self-describing `.s` file whose header names the seed and the exact
//! machine specs — the tier-1 `repros` test replays every file there.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use wib_core::{MachineConfig, Processor, RunLimit, RunResult};
use wib_isa::text::parse_program;
use wib_rng::StdRng;

/// Instruction budget per run: far above any generated program's dynamic
/// length, so a run that hits it without halting is a hang (or a
/// generator bug), which the oracles report as a failure.
const INSTS_CAP: u64 = 50_000;

/// One generated fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed that generated this case (reproduces it exactly).
    pub seed: u64,
    /// Assembly text (`wib_isa::text` syntax).
    pub text: String,
    /// Machine specs ([`MachineConfig::from_spec`]) to run it on.
    pub specs: Vec<String>,
}

// ---------------------------------------------------------------------
// Program generation
// ---------------------------------------------------------------------

const WRITABLE: [&str; 12] = [
    "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12",
];
const READABLE: [&str; 14] = [
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r14",
];
const FREGS: [&str; 6] = ["f1", "f2", "f3", "f4", "f5", "f6"];

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

fn pick_u64(rng: &mut StdRng, xs: &[u64]) -> u64 {
    xs[rng.random_range(0..xs.len())]
}

/// Chance of roughly `pct` percent.
fn chance(rng: &mut StdRng, pct: u64) -> bool {
    rng.random_range(0..100u64) < pct
}

/// Emit one random body instruction (or a short forward-branch block)
/// into `out`. `label_id` feeds fresh skip labels; `leaves` is the number
/// of callable leaf functions.
fn gen_item(rng: &mut StdRng, out: &mut Vec<String>, label_id: &mut u32, leaves: u32, chase: bool) {
    // Shared offset pool keeps loads and stores of different widths
    // landing on overlapping addresses: store-to-load forwarding, partial
    // coverage and order-violation replay all get exercised.
    let word_off = 4 * rng.random_range(0..16u32);
    match rng.random_range(0..100u32) {
        // Integer ALU, register form.
        0..=24 => {
            let op = pick(
                rng,
                &[
                    "add", "sub", "mul", "and", "or", "xor", "slt", "sltu", "sll", "srl", "sra",
                ],
            );
            out.push(format!(
                "    {op} {}, {}, {}",
                pick(rng, &WRITABLE),
                pick(rng, &READABLE),
                pick(rng, &READABLE)
            ));
        }
        // Integer ALU, immediate form.
        25..=39 => {
            let (op, imm) = match rng.random_range(0..8u32) {
                0 => ("addi", rng.random_range(-512..512i64)),
                1 => ("andi", rng.random_range(0..1024i64)),
                2 => ("ori", rng.random_range(0..1024i64)),
                3 => ("xori", rng.random_range(0..1024i64)),
                4 => ("slti", rng.random_range(-512..512i64)),
                5 => ("slli", rng.random_range(0..31i64)),
                6 => ("srli", rng.random_range(0..31i64)),
                _ => ("srai", rng.random_range(0..31i64)),
            };
            out.push(format!(
                "    {op} {}, {}, {imm}",
                pick(rng, &WRITABLE),
                pick(rng, &READABLE)
            ));
        }
        // Loads (word, byte, double) against the streaming region.
        40..=54 => match rng.random_range(0..4u32) {
            0 => out.push(format!(
                "    lbu {}, {}(r14)",
                pick(rng, &WRITABLE),
                rng.random_range(0..64u32)
            )),
            1 => out.push(format!(
                "    fld {}, {}(r14)",
                pick(rng, &FREGS),
                8 * rng.random_range(0..8u32)
            )),
            _ => out.push(format!("    lw {}, {word_off}(r14)", pick(rng, &WRITABLE))),
        },
        // Stores into the same region.
        55..=69 => match rng.random_range(0..4u32) {
            0 => out.push(format!(
                "    sb {}, {}(r14)",
                pick(rng, &READABLE),
                rng.random_range(0..64u32)
            )),
            1 => out.push(format!(
                "    fsd {}, {}(r14)",
                pick(rng, &FREGS),
                8 * rng.random_range(0..8u32)
            )),
            _ => out.push(format!("    sw {}, {word_off}(r14)", pick(rng, &READABLE))),
        },
        // Floating point (including the long non-pipelined ops that the
        // `fpdivert` configurations park in the WIB).
        70..=81 => {
            let d = pick(rng, &FREGS);
            let a = pick(rng, &FREGS);
            match rng.random_range(0..6u32) {
                0 => out.push(format!("    fdiv {d}, {a}, {}", pick(rng, &FREGS))),
                1 => out.push(format!("    fsqrt {d}, {a}")),
                2 => out.push(format!("    cvtif {d}, {}", pick(rng, &READABLE))),
                3 => out.push(format!("    fadd {d}, {a}, {}", pick(rng, &FREGS))),
                4 => out.push(format!("    fsub {d}, {a}, {}", pick(rng, &FREGS))),
                _ => out.push(format!("    fmul {d}, {a}, {}", pick(rng, &FREGS))),
            }
        }
        // Data-dependent forward branch over a short block (mispredicts
        // and wrong-path execution).
        82..=91 => {
            let op = pick(rng, &["beq", "bne", "blt", "bge"]);
            let l = format!("skip_{}", *label_id);
            *label_id += 1;
            out.push(format!(
                "    {op} {}, {}, {l}",
                pick(rng, &READABLE),
                pick(rng, &READABLE)
            ));
            for _ in 0..rng.random_range(1..4u32) {
                // Branch shadows hold only straight-line work.
                let mut dummy = 0;
                gen_straightline(rng, out, &mut dummy);
            }
            out.push(format!("{l}:"));
        }
        // Pointer chase: dependent-miss chains (the paper's nemesis).
        92..=95 if chase => {
            out.push("    lw r13, 0(r13)".to_string());
            if chance(rng, 50) {
                out.push(format!("    lw {}, 4(r13)", pick(rng, &WRITABLE)));
            }
        }
        // Leaf call through the RAS.
        96..=97 if leaves > 0 => {
            out.push(format!("    jal leaf{}", rng.random_range(0..leaves)));
        }
        _ => {
            let mut dummy = 0;
            gen_straightline(rng, out, &mut dummy);
        }
    }
}

/// A non-branching filler instruction (used inside branch shadows, where
/// nested labels would tangle).
fn gen_straightline(rng: &mut StdRng, out: &mut Vec<String>, _label_id: &mut u32) {
    match rng.random_range(0..4u32) {
        0 => out.push(format!(
            "    add {}, {}, {}",
            pick(rng, &WRITABLE),
            pick(rng, &READABLE),
            pick(rng, &READABLE)
        )),
        1 => out.push(format!(
            "    lw {}, {}(r14)",
            pick(rng, &WRITABLE),
            4 * rng.random_range(0..16u32)
        )),
        2 => out.push(format!(
            "    sw {}, {}(r14)",
            pick(rng, &READABLE),
            4 * rng.random_range(0..16u32)
        )),
        _ => out.push(format!(
            "    addi {}, {}, {}",
            pick(rng, &WRITABLE),
            pick(rng, &READABLE),
            rng.random_range(-64..64i64)
        )),
    }
}

/// Generate a terminating assembly program.
///
/// The skeleton is a counted outer loop (register `r15`, touched nowhere
/// else) around a random body; all other branches are forward-only, so
/// the dynamic length is bounded by construction. `r14` is a streaming
/// pointer bumped once per iteration; `r13` walks a circular pointer
/// chain laid out in `.data`.
pub fn generate_program(rng: &mut StdRng) -> String {
    let iters = rng.random_range(3..20u32);
    let body_items = rng.random_range(8..36u32);
    let leaves = rng.random_range(0..3u32);
    let chase = chance(rng, 70);
    // Page-sized strides make every iteration's loads miss; small strides
    // keep hitting the same lines (forwarding and replay instead).
    let stride = pick_u64(rng, &[0, 4, 64, 4096]);

    let mut out = vec![format!("# fuzz program (iters={iters}, stride={stride})")];
    out.push(format!("    li r15, {iters}"));
    out.push("    li r14, 0x20000".to_string());
    out.push("    li r13, 0x40000".to_string());
    out.push("    li r12, 0".to_string());
    if chance(rng, 50) {
        out.push("    fld f1, 0(r14)".to_string());
        out.push("    fld f2, 8(r14)".to_string());
    }
    out.push("loop:".to_string());
    let mut label_id = 0;
    for _ in 0..body_items {
        gen_item(rng, &mut out, &mut label_id, leaves, chase);
    }
    if stride > 0 {
        out.push(format!("    addi r14, r14, {stride}"));
    }
    out.push("    addi r15, r15, -1".to_string());
    out.push("    bne r15, r0, loop".to_string());
    out.push("    halt".to_string());

    for leaf in 0..leaves {
        out.push(format!("leaf{leaf}:"));
        for _ in 0..rng.random_range(1..5u32) {
            match rng.random_range(0..3u32) {
                0 => out.push(format!(
                    "    addi r10, {}, {}",
                    pick(rng, &READABLE),
                    rng.random_range(-64..64i64)
                )),
                1 => out.push(format!(
                    "    lw r11, {}(r14)",
                    4 * rng.random_range(0..16u32)
                )),
                _ => out.push(format!("    fmul f6, f5, {}", pick(rng, &FREGS))),
            }
        }
        out.push("    ret".to_string());
    }

    // Streaming region: nonzero seed data so early loads see values.
    out.push("    .data 0x20000".to_string());
    for _ in 0..8 {
        out.push(format!("    .u32 {}", rng.next_u64() as u32));
    }
    // Circular pointer chain scattered across pages: node = [next,
    // payload]. The final node points back to the first, so chasing never
    // escapes initialized memory.
    let nodes = rng.random_range(4..12u64);
    let node_stride = 4096 + 64;
    for i in 0..nodes {
        let addr = 0x40000 + i * node_stride;
        let next = 0x40000 + ((i + 1) % nodes) * node_stride;
        out.push(format!("    .data {addr:#x}"));
        out.push(format!("    .u32 {next:#x}"));
        out.push(format!("    .u32 {}", rng.next_u64() as u32));
    }
    out.join("\n") + "\n"
}

// ---------------------------------------------------------------------
// Config sampling
// ---------------------------------------------------------------------

/// Sample one machine spec from the [`MachineConfig::from_spec`] family.
pub fn sample_spec(rng: &mut StdRng) -> String {
    match rng.random_range(0..12u32) {
        0 => "base".to_string(),
        1 => format!("conv:iq={}", pick_u64(rng, &[64, 256])),
        2 => {
            // Runahead backend over a base or scaled-conventional head.
            let mut s = if chance(rng, 50) {
                "base".to_string()
            } else {
                format!("conv:iq={}", pick_u64(rng, &[64, 256]))
            };
            s.push_str(",backend=runahead");
            if chance(rng, 40) {
                // A tiny entry threshold forces frequent short episodes.
                s.push_str(&format!(",rathresh={}", pick_u64(rng, &[4, 16, 96])));
            }
            if chance(rng, 30) {
                s.push_str(&format!(",epoch={}", pick_u64(rng, &[64, 512, 4096])));
            }
            if chance(rng, 30) {
                s.push_str(",memlat=100");
            }
            s
        }
        3 => {
            // Delay-tracking backend (borrows the WIB's window sizing).
            let w = pick_u64(rng, &[128, 512, 2048]);
            let mut s = format!("wib:w={w},backend=delay_track");
            if chance(rng, 40) {
                // A small parking threshold parks even L2-hit chains.
                s.push_str(&format!(",dtthresh={}", pick_u64(rng, &[4, 16, 48])));
            }
            if chance(rng, 30) {
                s.push_str(&format!(",epoch={}", pick_u64(rng, &[64, 512, 4096])));
            }
            if chance(rng, 20) {
                s.push_str(",memlat=100");
            }
            s
        }
        _ => {
            let w = pick_u64(rng, &[128, 256, 512, 1024, 2048]);
            let mut s = format!("wib:w={w}");
            match rng.random_range(0..6u32) {
                0 | 1 => {} // paper default: banked16
                2 => s.push_str(&format!(",org=banked{}", pick_u64(rng, &[4, 8, 32]))),
                3 => s.push_str(&format!(",org=nonbanked{}", pick_u64(rng, &[2, 4, 6]))),
                4 => {
                    s.push_str(",org=ideal");
                    match rng.random_range(0..3u32) {
                        0 => {}
                        1 => s.push_str(",policy=rrl"),
                        _ => s.push_str(",policy=olf"),
                    }
                }
                _ => s.push_str(&format!(
                    ",org=pool{}x{}",
                    pick_u64(rng, &[2, 4, 8]),
                    pick_u64(rng, &[8, 32, 128])
                )),
            }
            if chance(rng, 40) {
                // A tiny bit-vector budget forces constant column
                // exhaustion and refusal paths.
                s.push_str(&format!(",bv={}", pick_u64(rng, &[1, 4, 16, 64])));
            }
            if chance(rng, 15) {
                s.push_str(",trigger=l2");
            }
            if chance(rng, 20) {
                s.push_str(",fpdivert");
            }
            if chance(rng, 30) {
                // Small epochs put interval boundaries inside fast-forward
                // stretches.
                s.push_str(&format!(",epoch={}", pick_u64(rng, &[64, 512, 4096])));
            }
            if chance(rng, 20) {
                s.push_str(",memlat=100");
            }
            s
        }
    }
}

/// Generate a full case: program plus 2–3 distinct machine specs.
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let text = generate_program(&mut rng);
    let mut specs: Vec<String> = Vec::new();
    let want = rng.random_range(2..4usize);
    let mut attempts = 0;
    while specs.len() < want && attempts < 32 {
        attempts += 1;
        let s = sample_spec(&mut rng);
        if MachineConfig::from_spec(&s).is_ok() && !specs.contains(&s) {
            specs.push(s);
        }
    }
    FuzzCase { seed, text, specs }
}

// ---------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------

type IntervalKey = (u64, u64, u64, u64, u64, u64, u64);

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    totals: (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64),
    halted: bool,
    intervals: Vec<IntervalKey>,
}

fn fingerprint(r: &RunResult) -> Fingerprint {
    Fingerprint {
        totals: (
            r.stats.cycles,
            r.stats.committed,
            r.stats.dispatched,
            r.stats.issued,
            r.stats.wib_insertions,
            r.stats.wib_extractions,
            r.stats.stall_active_list,
            r.stats.stall_issue_queue,
            r.stats.stall_lsq,
            r.stats.stall_regs,
            r.stats.cpi.total(),
        ),
        halted: r.halted,
        // The whole interval series: a fast-forward that mis-bucketed
        // work across an epoch boundary shows up here even when the
        // end-of-run totals agree.
        intervals: r
            .stats
            .intervals
            .iter()
            .map(|s| {
                (
                    s.cycle,
                    s.committed,
                    s.window_occupancy,
                    s.iq_occupancy,
                    s.wib_resident,
                    s.wib_columns_in_use,
                    s.outstanding_misses,
                )
            })
            .collect(),
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn run_one(
    cfg: &MachineConfig,
    program: &wib_isa::Program,
    no_skip: bool,
) -> Result<RunResult, String> {
    let cfg = cfg.clone();
    catch_unwind(AssertUnwindSafe(|| {
        let mut p = Processor::new(cfg);
        p.enable_cosim().enable_machine_check();
        if no_skip {
            p.disable_fast_forward();
        }
        p.run_program(program, RunLimit::instructions(INSTS_CAP))
    }))
    .map_err(panic_message)
}

/// Run one program text against `specs` with every oracle armed.
///
/// # Errors
/// Returns a description of the first oracle violation: a parse failure,
/// a co-simulation or machine-check panic, a run that never halts, a
/// fast-forward statistics divergence, or a cross-config commit-count
/// divergence.
pub fn run_case_text(text: &str, specs: &[String]) -> Result<(), String> {
    let program = parse_program(text).map_err(|e| format!("parse: {e}"))?;
    let mut committed: Option<(u64, String)> = None;
    for spec in specs {
        let cfg = MachineConfig::from_spec(spec).map_err(|e| format!("config {spec:?}: {e}"))?;
        let fast = run_one(&cfg, &program, false).map_err(|e| format!("[{spec}] {e}"))?;
        let slow = run_one(&cfg, &program, true).map_err(|e| format!("[{spec}] no-skip: {e}"))?;
        if fingerprint(&fast) != fingerprint(&slow) {
            return Err(format!(
                "[{spec}] fast-forward divergence:\n  fast {:?}\n  slow {:?}",
                fingerprint(&fast),
                fingerprint(&slow)
            ));
        }
        if !fast.halted {
            return Err(format!(
                "[{spec}] did not halt within {INSTS_CAP} instructions"
            ));
        }
        match &committed {
            None => committed = Some((fast.stats.committed, spec.clone())),
            Some((n, first)) if *n != fast.stats.committed => {
                return Err(format!(
                    "commit-count divergence: [{first}] {n} vs [{spec}] {}",
                    fast.stats.committed
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Run a generated case.
///
/// # Errors
/// See [`run_case_text`].
pub fn run_case(case: &FuzzCase) -> Result<(), String> {
    run_case_text(&case.text, &case.specs)
}

/// Run `f` with panic backtraces suppressed (the oracles convert panics
/// into failure descriptions; the default hook would spam stderr during
/// shrinking).
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Shrink a failing case to a local minimum: greedily delete line blocks
/// (largest first), drop machine specs, and halve loop counts, as long as
/// *some* failure remains. The result is the smallest variant this
/// process reaches, not necessarily a global minimum.
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    let mut lines: Vec<String> = case.text.lines().map(String::from).collect();
    let mut specs = case.specs.clone();
    if run_case_text(&lines.join("\n"), &specs).is_ok() {
        // Not reproducible from the text alone (should not happen — the
        // oracles are deterministic); return unchanged.
        return case.clone();
    }
    // Fewer configs first: every later probe gets cheaper.
    while specs.len() > 1 {
        let mut dropped = false;
        for i in 0..specs.len() {
            let mut cand = specs.clone();
            cand.remove(i);
            if run_case_text(&lines.join("\n"), &cand).is_err() {
                specs = cand;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    for _round in 0..6 {
        let mut changed = false;
        for size in [16usize, 8, 4, 2, 1] {
            let mut i = 0;
            while i < lines.len() && size <= lines.len() {
                let end = (i + size).min(lines.len());
                let mut cand = lines.clone();
                cand.drain(i..end);
                if run_case_text(&cand.join("\n"), &specs).is_err() {
                    lines = cand;
                    changed = true;
                } else {
                    i = end;
                }
            }
        }
        // Halve loop iteration counts (`li r15, N`).
        for i in 0..lines.len() {
            if let Some(rest) = lines[i].trim().strip_prefix("li r15, ") {
                if let Ok(n) = rest.trim().parse::<u64>() {
                    if n > 1 {
                        let mut cand = lines.clone();
                        cand[i] = format!("    li r15, {}", n / 2);
                        if run_case_text(&cand.join("\n"), &specs).is_err() {
                            lines = cand;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    FuzzCase {
        seed: case.seed,
        text: lines.join("\n") + "\n",
        specs,
    }
}

// ---------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------

/// Write `case` as a self-describing reproducer under `dir`
/// (`fuzz_seed_<seed>.s`). The header names the seed, every machine
/// spec, and the failure; the tier-1 `repros` test replays the file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_repro(dir: &Path, case: &FuzzCase, failure: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("fuzz_seed_{}.s", case.seed));
    let mut head = format!("# fuzz reproducer: seed {}\n", case.seed);
    for spec in &case.specs {
        // The digest is the same spec_digest the serving layer's result
        // cache uses, so a repro header names the exact cache identity of
        // the configuration it ran on.
        let digest = match MachineConfig::from_spec(spec) {
            Ok(cfg) => cfg.spec_digest(),
            Err(_) => wib_core::fnv1a64_hex(spec.as_bytes()),
        };
        head.push_str(&format!("# config: {spec}  [digest {digest}]\n"));
    }
    let first_line = failure.lines().next().unwrap_or("unknown");
    head.push_str(&format!("# failure: {first_line}\n"));
    std::fs::write(&path, head + &case.text)?;
    Ok(path)
}

/// Parse the `# config:` header lines of a reproducer file. A trailing
/// `[digest ...]` annotation (written by [`write_repro`] since the
/// serving layer introduced spec digests) is ignored; headers without
/// one still parse.
pub fn repro_specs(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# config:"))
        .map(|s| s.split("[digest").next().unwrap_or(s).trim().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse_and_terminate() {
        for seed in 0..12 {
            let case = generate_case(seed);
            assert!(
                case.specs.len() >= 2,
                "seed {seed} produced {} specs",
                case.specs.len()
            );
            let prog = parse_program(&case.text).unwrap_or_else(|e| {
                panic!("seed {seed} generated unparsable text: {e}\n{}", case.text)
            });
            // Terminates on the reference machine with room to spare.
            let p = Processor::new(MachineConfig::base_8way());
            let r = p.run_program(&prog, RunLimit::instructions(INSTS_CAP));
            assert!(r.halted, "seed {seed} did not halt");
            assert!(r.stats.committed < INSTS_CAP / 8, "seed {seed} too long");
        }
    }

    #[test]
    fn sampled_specs_are_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = sample_spec(&mut rng);
            MachineConfig::from_spec(&s)
                .unwrap_or_else(|e| panic!("sampled invalid spec {s:?}: {e}"));
        }
    }

    #[test]
    fn clean_case_passes_all_oracles() {
        let case = generate_case(1);
        with_quiet_panics(|| run_case(&case)).unwrap_or_else(|e| {
            panic!("seed 1 should be clean, got: {e}\n{}", case.text);
        });
    }

    #[test]
    fn oracle_catches_a_hang() {
        // An infinite loop must surface as "did not halt", not wedge the
        // fuzzer (the run limit caps it).
        let text = "spin:\n    addi r1, r1, 1\n    j spin\n";
        let specs = vec!["base".to_string()];
        let err = with_quiet_panics(|| run_case_text(text, &specs)).unwrap_err();
        assert!(err.contains("did not halt"), "got: {err}");
    }

    #[test]
    fn shrinker_minimizes_a_hang() {
        let text = "\
    li r1, 5
    add r2, r1, r1
    sw r2, 0(r14)
spin:
    addi r1, r1, 1
    j spin
    halt
";
        let case = FuzzCase {
            seed: 0,
            text: text.to_string(),
            specs: vec!["base".to_string(), "wib:w=256".to_string()],
        };
        let small = with_quiet_panics(|| shrink(&case));
        assert!(with_quiet_panics(|| run_case(&small)).is_err());
        assert!(
            small.specs.len() == 1,
            "specs not dropped: {:?}",
            small.specs
        );
        assert!(
            small.text.lines().count() < text.lines().count(),
            "not shrunk:\n{}",
            small.text
        );
    }

    #[test]
    fn repro_files_round_trip() {
        let case = FuzzCase {
            seed: 42,
            text: "    halt\n".to_string(),
            specs: vec!["base".to_string(), "wib:w=128,bv=4".to_string()],
        };
        let dir = std::env::temp_dir().join("wib_fuzz_test_repro");
        let path = write_repro(&dir, &case, "synthetic failure\nsecond line").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(repro_specs(&text), case.specs);
        // Each config line carries the cache-identity digest of its spec.
        let digest = MachineConfig::from_spec("base").unwrap().spec_digest();
        assert!(text.contains(&format!("# config: base  [digest {digest}]")));
        // Headers written before digests existed still parse.
        assert_eq!(repro_specs("# config: wib:w=256\n"), vec!["wib:w=256"]);
        assert!(text.contains("# failure: synthetic failure"));
        assert!(!text.contains("second line"));
        // The body still parses with the header comments in place.
        parse_program(&text).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
