//! Table 2: per-benchmark performance statistics of the base machine and
//! the WIB machine — base IPC, branch direction prediction rate, L1D miss
//! ratio, L2 local miss ratio, and WIB IPC, with harmonic means per suite
//! (the paper's HMs: INT 1.00 -> 1.24, FP 1.42 -> 3.02, Olden 1.17 -> 1.61).

use wib_bench::{hmean, Runner};
use wib_core::MachineConfig;
use wib_workloads::{eval_suite, Suite};

fn main() {
    let runner = Runner::from_env();
    let base = MachineConfig::base_8way();
    let wib = MachineConfig::wib_2k();
    println!("== Table 2: benchmark performance statistics ==");
    println!(
        "{:>12} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "benchmark", "base IPC", "dir pred", "DL1 miss", "L2 local", "WIB IPC"
    );
    let mut per_suite: Vec<(Suite, Vec<f64>, Vec<f64>)> = vec![
        (Suite::Int, vec![], vec![]),
        (Suite::Fp, vec![], vec![]),
        (Suite::Olden, vec![], vec![]),
    ];
    for w in eval_suite() {
        let rb = runner.run(&base, &w);
        let rw = runner.run(&wib, &w);
        println!(
            "{:>12} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>9.2}",
            w.name(),
            rb.ipc(),
            rb.stats.branch_dir_rate(),
            rb.stats.mem.l1d_miss_ratio(),
            rb.stats.mem.l2_local_miss_ratio(),
            rw.ipc()
        );
        for (s, bs, ws) in &mut per_suite {
            if *s == w.suite() {
                bs.push(rb.ipc());
                ws.push(rw.ipc());
            }
        }
    }
    println!("{}", "-".repeat(64));
    for (s, bs, ws) in &per_suite {
        println!(
            "{:>12} {:>9.2} {:>43.2}",
            format!("HM {s}"),
            hmean(bs),
            hmean(ws)
        );
    }
    println!("\npaper HMs: INT 1.00 -> 1.24, FP 1.42 -> 3.02, Olden 1.17 -> 1.61");
}
