//! Machine-readable benchmark summary: runs every workload on the base
//! and WIB machines and writes `BENCH_wib.json` — per-workload IPC,
//! speedup and simulator wall-clock throughput — for dashboards and
//! regression tracking. The output directory is `$WIB_RESULTS_DIR`
//! (default `results`).
//!
//! Workloads are fanned across `WIB_THREADS` workers (the base/WIB pair
//! of one workload stays on one worker so its throughput number reflects
//! a single thread); the JSON is assembled in suite order, so output is
//! identical for any thread count apart from the wall-clock fields.

use wib_bench::{parallel, Runner};
use wib_core::{Json, MachineConfig, RunResult};
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let base = MachineConfig::base_8way();
    let wib = MachineConfig::wib_2k();
    let suite = eval_suite();
    let sweep_start = std::time::Instant::now();
    let measured: Vec<(RunResult, RunResult, f64)> = parallel::parallel_map(&suite, |_, w| {
        let t = std::time::Instant::now();
        let rb = runner.run(&base, w);
        let rw = runner.run(&wib, w);
        let wall = t.elapsed().as_secs_f64();
        let minsts = (rb.stats.committed + rw.stats.committed) as f64 / wall / 1e6;
        eprintln!(
            "  {:<10} base {:.3}  wib {:.3}  ({:.1} Minsts/s)",
            w.name(),
            rb.ipc(),
            rw.ipc(),
            minsts
        );
        (rb, rw, wall)
    });
    let sweep_wall = sweep_start.elapsed().as_secs_f64();
    let mut workloads = Vec::new();
    let mut total_insts = 0u64;
    let mut total_cpu = 0.0f64;
    for (w, (rb, rw, wall)) in suite.iter().zip(&measured) {
        let simulated = rb.stats.committed + rw.stats.committed;
        total_insts += simulated;
        total_cpu += wall;
        workloads.push(
            Json::obj()
                .field("name", w.name())
                .field("suite", w.suite().to_string())
                .field("base_ipc", rb.ipc())
                .field("wib_ipc", rw.ipc())
                .field("speedup", rw.ipc() / rb.ipc())
                .field("sim_minsts_per_s", simulated as f64 / wall / 1e6),
        );
    }
    let doc = Json::obj()
        .field("schema", "wib-sim/bench-v1")
        .field("warmup", runner.warmup)
        .field("insts", runner.insts)
        .field("threads", parallel::worker_threads() as u64)
        .field("total_simulated_insts", total_insts)
        // Summed per-worker time: a thread-count-independent measure of
        // simulator speed (the regression gate compares this).
        .field("total_cpu_seconds", total_cpu)
        .field("total_wall_seconds", sweep_wall)
        .field("sim_minsts_per_s", total_insts as f64 / total_cpu / 1e6)
        .field("sweep_minsts_per_s", total_insts as f64 / sweep_wall / 1e6)
        .field("workloads", workloads);
    let dir = std::env::var("WIB_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = format!("{dir}/BENCH_wib.json");
    std::fs::write(&path, doc.pretty()).expect("write benchmark summary");
    println!("wrote {path}");
}
