//! Machine-readable benchmark summary: runs every workload on the base
//! and WIB machines and writes `BENCH_wib.json` — per-workload IPC,
//! speedup and simulator wall-clock throughput — for dashboards and
//! regression tracking. The output directory is `$WIB_RESULTS_DIR`
//! (default `results`).

use wib_bench::Runner;
use wib_core::{Json, MachineConfig};
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let base = MachineConfig::base_8way();
    let wib = MachineConfig::wib_2k();
    let mut workloads = Vec::new();
    let mut total_insts = 0u64;
    let mut total_wall = 0.0f64;
    for w in eval_suite() {
        let t = std::time::Instant::now();
        let rb = runner.run(&base, &w);
        let rw = runner.run(&wib, &w);
        let wall = t.elapsed().as_secs_f64();
        let simulated = rb.stats.committed + rw.stats.committed;
        total_insts += simulated;
        total_wall += wall;
        let minsts = simulated as f64 / wall / 1e6;
        eprintln!(
            "  {:<10} base {:.3}  wib {:.3}  ({:.1} Minsts/s)",
            w.name(),
            rb.ipc(),
            rw.ipc(),
            minsts
        );
        workloads.push(
            Json::obj()
                .field("name", w.name())
                .field("suite", w.suite().to_string())
                .field("base_ipc", rb.ipc())
                .field("wib_ipc", rw.ipc())
                .field("speedup", rw.ipc() / rb.ipc())
                .field("sim_minsts_per_s", minsts),
        );
    }
    let doc = Json::obj()
        .field("schema", "wib-sim/bench-v1")
        .field("warmup", runner.warmup)
        .field("insts", runner.insts)
        .field("total_simulated_insts", total_insts)
        .field("total_wall_seconds", total_wall)
        .field("sim_minsts_per_s", total_insts as f64 / total_wall / 1e6)
        .field("workloads", workloads);
    let dir = std::env::var("WIB_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = format!("{dir}/BENCH_wib.json");
    std::fs::write(&path, doc.pretty()).expect("write benchmark summary");
    println!("wrote {path}");
}
