//! Table 1: the base machine configuration.
//!
//! Prints the simulated machine parameters next to the paper's, so any
//! divergence is visible at a glance.

use wib_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::base_8way();
    println!("== Table 1: base configuration ==");
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Active List",
            format!(
                "{}, {} Int Regs, {} FP Regs",
                cfg.active_list, cfg.regs_per_class, cfg.regs_per_class
            ),
            "128, 128 Int Regs, 128 FP Regs",
        ),
        (
            "Load/Store Queue",
            format!("{} Load, {} Store", cfg.load_queue, cfg.store_queue),
            "64 Load, 64 Store",
        ),
        (
            "Issue Queue",
            format!(
                "{} Integer, {} Floating Point",
                cfg.iq_int_size, cfg.iq_fp_size
            ),
            "32 Integer, 32 Floating Point",
        ),
        (
            "Issue Width",
            format!(
                "{} ({} Integer, {} Floating Point)",
                cfg.issue_width_int + cfg.issue_width_fp,
                cfg.issue_width_int,
                cfg.issue_width_fp
            ),
            "12 (8 Integer, 4 Floating Point)",
        ),
        ("Decode Width", cfg.decode_width.to_string(), "8"),
        ("Commit Width", cfg.commit_width.to_string(), "8"),
        ("Instruction Fetch Queue", cfg.ifq_size.to_string(), "8"),
        (
            "Functional Units",
            format!(
                "{} int ALU (1c), {} int mul ({}c), {} FP add ({}c), {} FP mul ({}c), \
                 {} FP div (np {}c), {} FP sqrt (np {}c)",
                cfg.fu.int_alu,
                cfg.fu.int_mul,
                cfg.fu.int_mul_latency,
                cfg.fu.fp_add,
                cfg.fu.fp_add_latency,
                cfg.fu.fp_mul,
                cfg.fu.fp_mul_latency,
                cfg.fu.fp_div,
                cfg.fu.fp_div_latency,
                cfg.fu.fp_sqrt,
                cfg.fu.fp_sqrt_latency
            ),
            "8 ALU(1c) 2 mul(7c) 4 FPadd(4c) 2 FPmul(4c) 2 FPdiv(np 12c) 2 FPsqrt(np 24c)",
        ),
        (
            "Branch Prediction",
            format!(
                "bimodal({}) + two-level({}-bit) combined({}), spec update; BTB miss: \
                 {}c direct / {}c other",
                cfg.dir.bimodal_entries,
                cfg.dir.history_bits,
                cfg.dir.chooser_entries,
                cfg.btb_miss_penalty_direct,
                cfg.btb_miss_penalty_other
            ),
            "bimodal & 2-level combined, spec update; 2c direct / 9c other",
        ),
        (
            "Store-Wait Table",
            "2048 entries, cleared every 32768 cycles".to_string(),
            "same",
        ),
        (
            "L1 Data Cache",
            format!(
                "{} KB, {} way, {}c",
                cfg.mem.l1d.size_bytes / 1024,
                cfg.mem.l1d.assoc,
                cfg.mem.l1d.hit_latency
            ),
            "32 KB, 4 way, 2c",
        ),
        (
            "L1 Inst Cache",
            format!(
                "{} KB, {} way",
                cfg.mem.l1i.size_bytes / 1024,
                cfg.mem.l1i.assoc
            ),
            "32 KB, 4 way",
        ),
        (
            "L2 Unified Cache",
            format!(
                "{} KB, {} way, {}c",
                cfg.mem.l2.size_bytes / 1024,
                cfg.mem.l2.assoc,
                cfg.mem.l2.hit_latency
            ),
            "256 KB, 4 way, 10c",
        ),
        (
            "Memory Latency",
            format!("{} cycles", cfg.mem.mem_latency),
            "250 cycles",
        ),
        (
            "TLB",
            format!(
                "{}-entry, {}-way, {} KB page, {}c penalty",
                cfg.dtlb_entries(),
                cfg.mem.dtlb.assoc,
                cfg.mem.dtlb.page_bytes / 1024,
                cfg.mem.dtlb.miss_penalty
            ),
            "128-entry, 4-way, 4 KB page, 30c penalty",
        ),
    ];
    println!("{:<24} | {:<78} | paper", "parameter", "this simulator");
    println!("{}", "-".repeat(130));
    for (k, v, p) in rows {
        println!("{k:<24} | {v:<78} | {p}");
    }
}

trait TlbEntries {
    fn dtlb_entries(&self) -> u32;
}

impl TlbEntries for MachineConfig {
    fn dtlb_entries(&self) -> u32 {
        self.mem.dtlb.entries
    }
}
