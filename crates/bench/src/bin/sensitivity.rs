//! Section 4.1's sensitivity studies:
//!
//! - memory latency 100 vs. 250 cycles (shorter latency shrinks the WIB's
//!   headroom: paper averages drop to INT 5% / FP 30% / Olden 17%),
//! - a 1 MB L2 (paper: INT 5% / FP 61% / Olden 38% — big caches capture
//!   the integer working sets but not the FP/Olden ones),
//! - spending the WIB's area on a 64 KB L1 data cache instead (paper:
//!   under 2% improvement except vortex's 9% — the WIB is the better use
//!   of area).

use wib_bench::{emit_results_json, suite_speedups, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let suite = eval_suite();

    // --- Memory latency study -------------------------------------------
    for latency in [250u64, 100] {
        let configs = vec![
            (
                "base",
                MachineConfig::base_8way().with_memory_latency(latency),
            ),
            ("wib", MachineConfig::wib_2k().with_memory_latency(latency)),
        ];
        let rows = sweep(&runner, &configs, &suite);
        emit_results_json(
            &format!("sensitivity_latency{latency}"),
            &runner,
            &["base", "wib"],
            &rows,
        );
        let s = suite_speedups(&rows, 1);
        println!(
            "memory latency {latency:>3}: WIB speedup INT {:.2}, FP {:.2}, Olden {:.2}",
            s[0].1, s[1].1, s[2].1
        );
    }
    println!("paper: 250c -> 1.20/1.84/1.50; 100c -> 1.05/1.30/1.17\n");

    // --- 1 MB L2 study ---------------------------------------------------
    let big_l2 = |mut cfg: MachineConfig| {
        cfg.mem.l2.size_bytes = 1024 * 1024;
        cfg
    };
    let configs = vec![
        ("base-1MB", big_l2(MachineConfig::base_8way())),
        ("wib-1MB", big_l2(MachineConfig::wib_2k())),
    ];
    let rows = sweep(&runner, &configs, &suite);
    emit_results_json(
        "sensitivity_l2_1mb",
        &runner,
        &["base-1MB", "wib-1MB"],
        &rows,
    );
    let s = suite_speedups(&rows, 1);
    println!(
        "1 MB L2: WIB speedup INT {:.2}, FP {:.2}, Olden {:.2}",
        s[0].1, s[1].1, s[2].1
    );
    println!("paper: 1.05/1.61/1.38 (the larger cache helps INT most)\n");

    // --- 64 KB L1D alternative-area study --------------------------------
    let big_l1 = |mut cfg: MachineConfig| {
        cfg.mem.l1d.size_bytes = 64 * 1024;
        cfg
    };
    let configs = vec![
        ("base-32K", MachineConfig::base_8way()),
        ("base-64K", big_l1(MachineConfig::base_8way())),
        ("wib", MachineConfig::wib_2k()),
    ];
    let rows = sweep(&runner, &configs, &suite);
    emit_results_json(
        "sensitivity_l1d_64k",
        &runner,
        &["base-32K", "base-64K", "wib"],
        &rows,
    );
    let s64 = suite_speedups(&rows, 1);
    let swib = suite_speedups(&rows, 2);
    println!(
        "64 KB L1D instead of the WIB: INT {:.2}, FP {:.2}, Olden {:.2}",
        s64[0].1, s64[1].1, s64[2].1
    );
    println!(
        "the WIB with the same area:   INT {:.2}, FP {:.2}, Olden {:.2}",
        swib[0].1, swib[1].1, swib[2].1
    );
    println!("paper: doubling the L1 buys <2% (vortex 9%); the WIB is the better use of area");
}
