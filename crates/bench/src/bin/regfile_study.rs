//! Paper section 3.4: register-file organizations for the 2K-register WIB
//! machine. The paper uses the two-level file and notes "simulations of a
//! multi-banked register file show similar results" — this harness checks
//! that claim, with an idealized single-cycle file as the upper bound.

use wib_bench::{emit_results_json, print_speedups, sweep, Runner};
use wib_core::{MachineConfig, RegFileConfig};
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let with_rf = |rf: RegFileConfig| {
        let mut cfg = MachineConfig::wib_2k();
        cfg.regfile = rf;
        cfg
    };
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("two-level", MachineConfig::wib_2k()),
        ("multi-banked", with_rf(RegFileConfig::multi_banked_8x2())),
        ("ideal-1cyc", with_rf(RegFileConfig::SingleLevel)),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("regfile_study", &runner, &names, &rows);
    print_speedups(
        "Section 3.4: register-file organizations on the WIB machine (speedup over base)",
        &names,
        &rows,
    );
    println!(
        "\npaper: the two-level file (128 L1 / 4-cycle 4-port L2) is the default; \
         a multi-banked file \"shows similar results\"; both should sit close to \
         the idealized single-cycle 2K-register file"
    );
}
