//! Figure 6: WIB capacity. Smaller WIBs (with the active list, register
//! files and load/store queues scaled alongside, and bit-vectors capped
//! at 64) trade performance for area (paper section 4.3).
//!
//! Paper: a 1024-entry WIB still achieves INT 20% / FP 44% / Olden 44%,
//! and a 256-entry WIB 9% / 26% / 14% — all better uses of area than
//! doubling the L1 data cache (see the `sensitivity` harness).

use wib_bench::{emit_results_json, print_speedups, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let mut configs = vec![("base", MachineConfig::base_8way())];
    for size in [128u32, 256, 512, 1024, 2048] {
        let cfg = MachineConfig::wib_sized(size).with_bit_vectors(64);
        configs.push((
            match size {
                128 => "128",
                256 => "256",
                512 => "512",
                1024 => "1024",
                _ => "2048",
            },
            cfg,
        ));
    }
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("fig6", &runner, &names, &rows);
    print_speedups(
        "Figure 6: WIB capacity (speedup over base; 64 bit-vectors)",
        &names,
        &rows,
    );
    println!(
        "\npaper: 2048 -> INT 1.19/FP 1.45/Olden 1.50; 1024 -> 1.20/1.44/1.44; \
         256 -> 1.09/1.26/1.14; gains shrink smoothly with capacity"
    );
}
