//! Differential fuzzer driver.
//!
//! ```text
//! cargo run --release -p wib-bench --bin fuzz -- [--cases N] [--seed S]
//!     [--out DIR] [--keep-going]
//! ```
//!
//! Runs `N` cases (default 500) from consecutive seeds starting at `S`
//! (default 1). Every case is a random program executed on 2–3 random
//! machine configurations with co-simulation, per-cycle machine checks,
//! the fast-forward on/off differential, and the cross-config commit
//! differential all armed (see `wib_bench::fuzz`). A failing case is
//! shrunk to a local minimum and written to `--out` (default
//! `tests/repros/`), then the driver exits 1 (or keeps scanning with
//! `--keep-going`).

use std::path::PathBuf;
use std::process::ExitCode;

use wib_bench::fuzz;

struct Args {
    cases: u64,
    seed: u64,
    out: PathBuf,
    keep_going: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 500,
        seed: 1,
        out: PathBuf::from("tests/repros"),
        keep_going: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--keep-going" => args.keep_going = true,
            "--help" | "-h" => {
                return Err(
                    "usage: fuzz [--cases N] [--seed S] [--out DIR] [--keep-going]".to_string(),
                );
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "fuzz: {} cases from seed {} (repros -> {})",
        args.cases,
        args.seed,
        args.out.display()
    );
    let mut failures = 0u64;
    fuzz::with_quiet_panics(|| {
        for i in 0..args.cases {
            let seed = args.seed + i;
            let case = fuzz::generate_case(seed);
            match fuzz::run_case(&case) {
                Ok(()) => {}
                Err(e) => {
                    failures += 1;
                    eprintln!("seed {seed}: FAIL: {e}");
                    eprint!("seed {seed}: shrinking... ");
                    let small = fuzz::shrink(&case);
                    let failure = fuzz::run_case(&small)
                        .err()
                        .unwrap_or_else(|| "unreproducible after shrink".to_string());
                    eprintln!(
                        "{} lines x {} configs",
                        small.text.lines().count(),
                        small.specs.len()
                    );
                    match fuzz::write_repro(&args.out, &small, &failure) {
                        Ok(p) => eprintln!("seed {seed}: wrote {}", p.display()),
                        Err(e) => eprintln!("seed {seed}: could not write repro: {e}"),
                    }
                    if !args.keep_going {
                        break;
                    }
                }
            }
            if (i + 1) % 50 == 0 {
                eprintln!("fuzz: {}/{} cases clean", i + 1 - failures, i + 1);
            }
        }
    });
    if failures > 0 {
        eprintln!("fuzz: {failures} failing case(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("fuzz: all {} cases clean", args.cases);
        ExitCode::SUCCESS
    }
}
