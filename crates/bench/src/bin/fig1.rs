//! Figure 1: the limit study — IPC speedup of conventional machines with
//! larger issue windows over the 32-entry base, ignoring cycle-time
//! effects (paper section 2.2.2).
//!
//! Issue queues of 32/64/128 keep the 128-entry active list; larger
//! configurations scale the active list, register files and issue queue
//! together, with load/store queues at half the active list.
//!
//! Paper shape: IPC rises with window size up to 2K and plateaus beyond
//! (2K entries cover the 250-cycle memory latency at 8-wide fetch);
//! `mst` is the exception that keeps scaling; FP benchmarks gain the
//! most (`art` > 5x).

use wib_bench::{emit_results_json, print_speedups, print_suite_bars, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let sizes = [32u32, 64, 128, 256, 512, 1024, 2048];
    let configs: Vec<(String, MachineConfig)> = sizes
        .iter()
        .map(|&s| (s.to_string(), MachineConfig::conventional(s)))
        .collect();
    let named: Vec<(&str, MachineConfig)> = configs
        .iter()
        .map(|(n, c)| (n.as_str(), c.clone()))
        .collect();
    let rows = sweep(&runner, &named, &eval_suite());
    let names: Vec<&str> = named.iter().map(|(n, _)| *n).collect();
    emit_results_json("fig1", &runner, &names, &rows);
    print_speedups(
        "Figure 1: conventional window-size limit study (speedup over 32-entry IQ)",
        &names,
        &rows,
    );
    print_suite_bars(&names, &rows);
    println!(
        "\npaper: speedups grow to the 2K window then plateau; mst keeps scaling; \
         FP averages >2x with art >5x"
    );
}
