//! Figure 7: banked vs. non-banked multicycle WIB organizations (paper
//! section 4.5).
//!
//! The non-banked WIB reads the whole structure in one 4- or 6-cycle
//! access and extracts in full program order. The paper finds the longer
//! access "produces only slight reductions in performance" relative to
//! the banked scheme — evidence that pipelining the WIB access is
//! unnecessary and richer selection policies are affordable.

use wib_bench::{emit_results_json, print_speedups, print_suite_bars, sweep, Runner};
use wib_core::{MachineConfig, WibOrganization};
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("banked", MachineConfig::wib_2k()),
        (
            "4-cycle",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::NonBanked { latency: 4 }),
        ),
        (
            "6-cycle",
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::NonBanked { latency: 6 }),
        ),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("fig7", &runner, &names, &rows);
    print_speedups(
        "Figure 7: banked vs non-banked multicycle WIB (speedup over base)",
        &names,
        &rows,
    );
    print_suite_bars(&names, &rows);
    println!(
        "\npaper: the 4- and 6-cycle non-banked organizations track the banked one \
         closely (slight reductions only)"
    );
}
