//! Paper section 6 (future work): extending the WIB trigger beyond load
//! misses to "other operations where latency is difficult to determine at
//! compile time" — here, the non-pipelined FP divide (12 cycles) and
//! square root (24 cycles).
//!
//! The divider-bound `applu` kernel is the interesting case: its chains
//! stall on divides, not on memory, so the load-miss-only WIB cannot help
//! it — the extension can.

use wib_bench::{emit_results_json, print_speedups, sweep, Runner};
use wib_core::{MachineConfig, Processor, RunLimit};
use wib_isa::asm::ProgramBuilder;
use wib_isa::reg::*;
use wib_workloads::eval_suite;

/// The stress case for the extension: each non-pipelined divide feeds a
/// long dependent chain, and the chains of many loop iterations pile into
/// the 32-entry FP issue queue. Interleaved integer work can proceed —
/// but only if the divide chains get out of the way.
fn divide_chain_kernel() -> wib_isa::program::Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.data_f64(0x8000, &[3.0, 1.7]);
    b.li(R1, 0x8000);
    b.fld(F1, R1, 0);
    b.fld(F2, R1, 8);
    b.li(R4, 20_000);
    b.li(R7, 0x20_0000);
    b.label("loop");
    b.fdiv(F3, F1, F2); // 12-cycle non-pipelined
    for _ in 0..12 {
        b.fadd(F3, F3, F2); // long dependent chain behind the divide
    }
    // Independent integer work that wants the machine's attention.
    b.lw(R5, R7, 0);
    b.add(R6, R6, R5);
    b.addi(R7, R7, 64);
    b.addi(R4, R4, -1);
    b.bne(R4, R0, "loop");
    b.halt();
    b.finish().expect("assembles")
}

fn main() {
    let runner = Runner::from_env();

    let kernel = divide_chain_kernel();
    println!("divide-chain microkernel (12 dependent FP adds behind each fdiv):");
    for (name, cfg) in [
        ("base", MachineConfig::base_8way()),
        ("wib-loads", MachineConfig::wib_2k()),
        ("wib+fp-ops", MachineConfig::wib_2k().with_long_fp_divert()),
    ] {
        let r = Processor::new(cfg).run_program(&kernel, RunLimit::instructions(runner.insts));
        println!(
            "  {name:<11} IPC {:.3}  (WIB insertions {})",
            r.ipc(),
            r.stats.wib_insertions
        );
    }
    println!();
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("wib-loads", MachineConfig::wib_2k()),
        ("wib+fp-ops", MachineConfig::wib_2k().with_long_fp_divert()),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("extension", &runner, &names, &rows);
    print_speedups(
        "Extension: divert long FP-op chains too (speedup over base)",
        &names,
        &rows,
    );
    println!(
        "\nexpectation: the benchmark suite is essentially unchanged (its divide \
         chains are short, so the 12- and 24-cycle units rarely clog the queue); \
         the microkernel above shows the extension paying off when they do — the \
         mechanism generalizes exactly as section 6 anticipates, and nothing \
         regresses"
    );
}
