//! Section 4.4: WIB-to-issue-queue instruction selection policies,
//! evaluated on an idealized single-cycle WIB:
//!
//! 1. the banked scheme (per-bank program order, alternate cycles),
//! 2. full program order among all eligible instructions,
//! 3. round-robin across completed loads (each load's instructions in
//!    program order),
//! 4. all instructions from the oldest completed load first.
//!
//! The paper: most programs barely move; `mgrid` gains ~17% from policies
//! 2-4 because better schedules cut its WIB recycling (insertions per
//! instruction drop from ~4 average / 280 max to ~1 average / 9 max).

use wib_bench::{emit_results_json, print_speedups, sweep, Runner};
use wib_core::{MachineConfig, SelectionPolicy, WibOrganization};
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let ideal = |p: SelectionPolicy| {
        MachineConfig::wib_2k()
            .with_wib_organization(WibOrganization::Ideal)
            .with_wib_policy(p)
    };
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("banked", MachineConfig::wib_2k()),
        ("prog-order", ideal(SelectionPolicy::ProgramOrder)),
        ("rr-loads", ideal(SelectionPolicy::RoundRobinLoads)),
        ("oldest-load", ideal(SelectionPolicy::OldestLoadFirst)),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("policies", &runner, &names, &rows);
    print_speedups(
        "Section 4.4: selection policies (speedup over base; ideal 1-cycle WIB)",
        &names,
        &rows,
    );
    println!("\nWIB insertions per touched instruction (avg / max):");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "banked", "prog-order", "rr-loads", "oldest-load"
    );
    for row in &rows {
        print!("{:>12}", row.name);
        for r in &row.results[1..] {
            print!(
                " {:>8.2}/{:<5}",
                r.stats.wib_avg_insertions(),
                r.stats.wib_max_insertions_per_inst
            );
        }
        println!();
    }
    println!(
        "\npaper: banked mgrid averages ~4 insertions (max 280); the alternative \
         policies cut that to ~1 (max 9) and buy mgrid ~17%"
    );
}
