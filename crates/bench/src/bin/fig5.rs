//! Figure 5: limited bit-vectors. The bit-vector array is the WIB's main
//! area cost (each column maps the whole 2K-entry WIB), so the paper caps
//! the number of simultaneously tracked outstanding loads at 16/32/64.
//!
//! Paper averages (speedup over base): 16 vectors: INT 16%, FP 26%,
//! Olden 38%; 64 vectors: INT 19%, FP 45%, Olden 50%; unlimited (1024):
//! INT 20%, FP 84%, Olden 50%. The FP suite suffers most from the cap —
//! it lives on memory-level parallelism.

use wib_bench::{emit_results_json, print_speedups, print_suite_bars, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("16", MachineConfig::wib_2k().with_bit_vectors(16)),
        ("32", MachineConfig::wib_2k().with_bit_vectors(32)),
        ("64", MachineConfig::wib_2k().with_bit_vectors(64)),
        ("1024", MachineConfig::wib_2k()),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("fig5", &runner, &names, &rows);
    print_speedups(
        "Figure 5: limited bit-vectors (WIB speedup over base, by bit-vector budget)",
        &names,
        &rows,
    );
    print_suite_bars(&names, &rows);
    println!(
        "\npaper: 16 vectors already capture most INT/Olden gains; FP needs 64+ \
         (memory-level parallelism); unlimited reaches INT 1.20 / FP 1.84 / Olden 1.50"
    );
}
