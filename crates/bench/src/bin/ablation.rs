//! Design ablation (paper section 3.5): the bit-vector WIB against the
//! pool-of-blocks alternative the paper considered and rejected.
//!
//! The pool deposits each miss's dependents into linked fixed-size
//! blocks. With a generous pool it performs like the bit-vector design;
//! as the pool shrinks, pretend-ready instructions find no room, waste
//! issue slots and stall in the queue — the failure mode (along with
//! squash complexity) that made the paper choose bit-vectors.

use wib_bench::{emit_results_json, print_speedups, sweep, Runner};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let configs = vec![
        ("base", MachineConfig::base_8way()),
        ("bit-vector", MachineConfig::wib_2k()),
        ("pool 256x8", MachineConfig::wib_pool(8, 256)), // same 2K capacity
        ("pool 64x8", MachineConfig::wib_pool(8, 64)),   // 512 entries
        ("pool 16x8", MachineConfig::wib_pool(8, 16)),   // 128 entries
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("ablation", &runner, &names, &rows);
    print_speedups(
        "Ablation: bit-vector WIB vs pool-of-blocks (speedup over base)",
        &names,
        &rows,
    );
    println!("\npool stalls (pretend-ready selections refused for lack of a free block):");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "benchmark", "pool 256x8", "pool 64x8", "pool 16x8"
    );
    for row in &rows {
        print!("{:>12}", row.name);
        for r in &row.results[2..] {
            print!(" {:>12}", r.stats.wib_pool_stalls);
        }
        println!();
    }
    println!(
        "\npaper (3.5): the pool needs list management on every squash and can \
         deadlock when blocks run out; the bit-vector design spends more storage \
         to make both trivial"
    );
}
