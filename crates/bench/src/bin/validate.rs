//! Co-simulation validation sweep: every kernel (miniature instances) on
//! three machine configurations with the reference-interpreter checker
//! enabled. Any timing-model bookkeeping bug that corrupts architectural
//! state (forwarding, renaming, squash, ordering) panics immediately.

use wib_core::{MachineConfig, Processor, RunLimit};

fn main() {
    for w in wib_workloads::test_suite() {
        for (cname, cfg) in [
            ("base", MachineConfig::base_8way()),
            ("wib2k", MachineConfig::wib_2k()),
            ("conv1k", MachineConfig::conventional(1024)),
        ] {
            let mut p = Processor::new(cfg);
            p.enable_cosim();
            let r = p.run_program(w.program(), RunLimit::instructions(40_000));
            println!(
                "{:>10} {:>7}: {:>7} insts {:>8} cycles ipc {:.3} halted={}",
                w.name(),
                cname,
                r.stats.committed,
                r.stats.cycles,
                r.ipc(),
                r.halted
            );
        }
    }
    println!("co-simulation clean on all kernels and configurations");
}
