//! Figure 4: WIB performance against the scaled conventional designs.
//!
//! Four machines (paper section 4.1):
//! - `32-IQ/128`: the base (Table 1),
//! - `32-IQ/2K`: 2K active list / registers but the same 32-entry queues
//!   (isolates the active list from the issue queue),
//! - `2K-IQ/2K`: the 2K-entry issue queue upper bound (ignores cycle time),
//! - `WIB`: 32-entry queues + 2K-entry banked WIB + two-level register
//!   file — clock-equivalent to the base.
//!
//! Paper averages: WIB gains 20% (INT), 84% (FP), 50% (Olden); the 2K
//! issue queue reaches 35% / 140% / 103%.

use wib_bench::{
    emit_results_json, print_speedups, print_suite_bars, suite_speedups, sweep, Runner,
};
use wib_core::MachineConfig;
use wib_workloads::eval_suite;

fn main() {
    let runner = Runner::from_env();
    let mut iq32_2k = MachineConfig::conventional(2048);
    iq32_2k.iq_int_size = 32;
    iq32_2k.iq_fp_size = 32;
    let configs = vec![
        ("32-IQ/128", MachineConfig::base_8way()),
        ("32-IQ/2K", iq32_2k),
        ("2K-IQ/2K", MachineConfig::conventional(2048)),
        ("WIB", MachineConfig::wib_2k()),
    ];
    let rows = sweep(&runner, &configs, &eval_suite());
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    emit_results_json("fig4", &runner, &names, &rows);
    print_speedups(
        "Figure 4: WIB performance (speedup over 32-IQ/128)",
        &names,
        &rows,
    );
    print_suite_bars(&names, &rows);
    println!("\npaper suite averages (speedup over base):");
    println!("  32-IQ/2K : modest gains (active list alone is not the bottleneck fix)");
    println!("  2K-IQ/2K : INT 1.35, FP 2.40, Olden 2.03");
    println!("  WIB      : INT 1.20, FP 1.84, Olden 1.50");
    println!("\nmeasured:");
    for (i, name) in names.iter().enumerate().skip(1) {
        let s = suite_speedups(&rows, i);
        println!(
            "  {name:>9}: INT {:.2}, FP {:.2}, Olden {:.2}",
            s[0].1, s[1].1, s[2].1
        );
    }
    // The WIB-recycling statistic the paper quotes for mgrid (avg 4
    // insertions, max 280 with the banked organization).
    if let Some(row) = rows.iter().find(|r| r.name == "mgrid") {
        let wib_result = &row.results[3];
        println!(
            "\nmgrid WIB recycling: avg {:.2} insertions/instruction (paper: ~4), max {} \
             (paper: 280)",
            wib_result.stats.wib_avg_insertions(),
            wib_result.stats.wib_max_insertions_per_inst
        );
    }
}
