//! A small wall-clock micro-benchmark harness.
//!
//! The workspace builds fully offline, so the benches cannot use
//! criterion; this module provides the small subset actually needed:
//! warm-up, automatic iteration-count calibration, and a median-of-batches
//! time per iteration, printed one line per benchmark.
//!
//! `WIB_QUICK=1` shrinks the measurement budget so the bench binaries can
//! double as smoke tests.

use std::time::{Duration, Instant};

/// Measurement protocol for one bench binary.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Wall-clock budget per benchmark (split across batches).
    pub budget: Duration,
    /// Number of timed batches (the median batch is reported).
    pub batches: usize,
}

impl Harness {
    /// Default protocol: ~300 ms per benchmark, 5 batches (20 ms and 3
    /// batches under `WIB_QUICK=1`).
    pub fn from_env() -> Harness {
        if std::env::var("WIB_QUICK").is_ok() {
            Harness {
                budget: Duration::from_millis(20),
                batches: 3,
            }
        } else {
            Harness {
                budget: Duration::from_millis(300),
                batches: 5,
            }
        }
    }

    /// Time `f`, printing `name`, the median time per iteration, and the
    /// iterations per second. Returns the median seconds per iteration.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> f64 {
        // Calibrate: run until ~10% of the budget is spent to pick an
        // iteration count per batch, warming caches along the way.
        let calibration = self.budget / 10;
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < calibration || calib_iters < 1 {
            f();
            calib_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        let batch_budget = self.budget.as_secs_f64() * 0.9 / self.batches as f64;
        let iters = ((batch_budget / per_iter) as u64).max(1);

        let mut batch_secs: Vec<f64> = (0..self.batches)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        batch_secs.sort_by(f64::total_cmp);
        let median = batch_secs[batch_secs.len() / 2];
        println!(
            "{name:<40} {:>12}   {:>14}/s",
            fmt_time(median),
            fmt_count(1.0 / median)
        );
        median
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn fmt_count(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let h = Harness {
            budget: Duration::from_millis(5),
            batches: 3,
        };
        let mut x = 0u64;
        let t = h.bench("noop", || x = x.wrapping_add(1));
        assert!(t > 0.0);
        assert!(x > 0);
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with("s"));
        assert!(fmt_count(2e6).ends_with("M"));
        assert!(fmt_count(2e3).ends_with("k"));
    }
}
