//! A small, dependency-free, deterministic PRNG.
//!
//! The simulator must build and test fully offline, so it cannot pull the
//! `rand` crate from a registry. This crate provides the subset of the
//! `rand` API the repository actually uses — [`StdRng::seed_from_u64`],
//! [`StdRng::random`], and [`StdRng::random_range`] — over a fixed,
//! documented generator (xoshiro256** seeded through SplitMix64), so
//! workload data generation is reproducible run to run and machine to
//! machine.
//!
//! The statistical requirements here are mild (scattering linked
//! structures, filling arrays with noise, fuzzing instruction sequences);
//! xoshiro256** comfortably exceeds them.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// `rand`-compatible module path: `wib_rng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

impl StdRng {
    /// Seed the generator. Equal seeds give equal streams forever.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed, as the xoshiro authors
        // recommend (avoids the all-zero state and decorrelates nearby
        // seeds).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of `T` (integers over their full range,
    /// `bool` fair, `f64` in `[0, 1)`).
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range` (half-open `lo..hi` or
    /// inclusive `lo..=hi`, integer or `f64`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform integer in `[0, bound)` by rejection (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Lemire-style rejection on the top of the range.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Sample {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u: f64 = rng.random();
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.random_range(-100..100);
            assert!((-100..100).contains(&w));
            let x: usize = r.random_range(0..=5);
            assert!(x <= 5);
            let f: f64 = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = r.random_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn ranges_reach_both_ends() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut r = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }
}
