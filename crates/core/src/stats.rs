//! Simulation statistics.

use crate::hist::Histogram;
use wib_mem::hier::HierStats;

/// Counters accumulated over a detailed-simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (architecturally retired).
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// Conditional branches whose *direction* was mispredicted.
    pub dir_mispredicts: u64,
    /// Control transfers whose target was mispredicted (direction right).
    pub target_mispredicts: u64,
    /// Squashes triggered by load-store order violations.
    pub order_violations: u64,
    /// Instructions fetched (wrong path included).
    pub fetched: u64,
    /// Instructions dispatched into the window (wrong path included).
    pub dispatched: u64,
    /// Instructions issued to functional units (wrong path included).
    pub issued: u64,
    /// Instructions moved into the WIB (an instruction recycling through
    /// the WIB counts once per trip).
    pub wib_insertions: u64,
    /// Instructions reinserted from the WIB into the issue queue.
    pub wib_extractions: u64,
    /// Largest number of WIB trips made by any single committed
    /// instruction.
    pub wib_max_insertions_per_inst: u64,
    /// Committed instructions that made at least one WIB trip.
    pub wib_touched_insts: u64,
    /// Total WIB trips summed over committed instructions (for the
    /// average-insertions statistic the paper quotes for mgrid).
    pub wib_insertions_committed: u64,
    /// Loads that missed in the L1 D-cache but could not get a bit-vector
    /// (bit-vector limit reached) and so stalled conventionally.
    pub wib_column_exhausted: u64,
    /// Pool-of-blocks organization only: pretend-ready selections that
    /// found the pool full and wasted the issue slot (paper section 3.5's
    /// hazard).
    pub wib_pool_stalls: u64,
    /// Cycles dispatch was blocked because the active list was full.
    pub stall_active_list: u64,
    /// Cycles dispatch was blocked because an issue queue was full.
    pub stall_issue_queue: u64,
    /// Cycles dispatch was blocked on a full load/store queue.
    pub stall_lsq: u64,
    /// Cycles dispatch was blocked because no physical register was free.
    pub stall_regs: u64,
    /// Second-level register-file reads (two-level register file only).
    pub rf_l2_reads: u64,
    /// Memory-hierarchy statistics.
    pub mem: HierStats,
    /// Branch direction lookups at fetch.
    pub dir_lookups: u64,
    /// Active-list occupancy, sampled every [`OCCUPANCY_SAMPLE_PERIOD`]
    /// cycles.
    pub occupancy_window: Histogram,
    /// Combined issue-queue occupancy, sampled alongside.
    pub occupancy_iq: Histogram,
    /// WIB residency, sampled alongside.
    pub occupancy_wib: Histogram,
}

/// Cycles between occupancy samples (cheap enough to always collect).
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 16;

impl Default for SimStats {
    fn default() -> SimStats {
        SimStats {
            cycles: 0,
            committed: 0,
            committed_loads: 0,
            committed_stores: 0,
            cond_branches: 0,
            dir_mispredicts: 0,
            target_mispredicts: 0,
            order_violations: 0,
            fetched: 0,
            dispatched: 0,
            issued: 0,
            wib_insertions: 0,
            wib_extractions: 0,
            wib_max_insertions_per_inst: 0,
            wib_touched_insts: 0,
            wib_insertions_committed: 0,
            wib_column_exhausted: 0,
            wib_pool_stalls: 0,
            stall_active_list: 0,
            stall_issue_queue: 0,
            stall_lsq: 0,
            stall_regs: 0,
            rf_l2_reads: 0,
            mem: HierStats::default(),
            dir_lookups: 0,
            occupancy_window: Histogram::new(2048),
            occupancy_iq: Histogram::new(80),
            occupancy_wib: Histogram::new(2048),
        }
    }
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of conditional-branch directions predicted correctly.
    pub fn branch_dir_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.dir_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mean WIB trips per committed instruction that entered the WIB at
    /// least once.
    pub fn wib_avg_insertions(&self) -> f64 {
        if self.wib_touched_insts == 0 {
            0.0
        } else {
            self.wib_insertions_committed as f64 / self.wib_touched_insts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_dir_rate(), 1.0);
        s.cycles = 100;
        s.committed = 250;
        s.cond_branches = 10;
        s.dir_mispredicts = 1;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_dir_rate() - 0.9).abs() < 1e-12);
        s.wib_touched_insts = 4;
        s.wib_insertions_committed = 10;
        assert!((s.wib_avg_insertions() - 2.5).abs() < 1e-12);
    }
}
