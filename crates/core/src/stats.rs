//! Simulation statistics.

use crate::cpi::CpiStack;
use crate::hist::Histogram;
use crate::json::Json;
use wib_mem::hier::HierStats;

/// One epoch of the interval time-series (see [`SimStats::intervals`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSample {
    /// Cycle count at the end of this epoch.
    pub cycle: u64,
    /// Instructions committed during this epoch.
    pub committed: u64,
    /// IPC over this epoch alone.
    pub ipc: f64,
    /// Active-list occupancy at the sample point.
    pub window_occupancy: u64,
    /// Combined issue-queue occupancy at the sample point.
    pub iq_occupancy: u64,
    /// Instructions parked in the WIB at the sample point.
    pub wib_resident: u64,
    /// WIB bit-vector columns (or pool chains) in use at the sample
    /// point.
    pub wib_columns_in_use: u64,
    /// Cache-line fills outstanding at the sample point.
    pub outstanding_misses: u64,
}

impl IntervalSample {
    /// Ordered JSON object (one row of the `intervals` array).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("cycle", self.cycle)
            .field("committed", self.committed)
            .field("ipc", self.ipc)
            .field("window_occupancy", self.window_occupancy)
            .field("iq_occupancy", self.iq_occupancy)
            .field("wib_resident", self.wib_resident)
            .field("wib_columns_in_use", self.wib_columns_in_use)
            .field("outstanding_misses", self.outstanding_misses)
    }
}

/// Counters accumulated over a detailed-simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (architecturally retired).
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// Conditional branches whose *direction* was mispredicted.
    pub dir_mispredicts: u64,
    /// Control transfers whose target was mispredicted (direction right).
    pub target_mispredicts: u64,
    /// Squashes triggered by load-store order violations.
    pub order_violations: u64,
    /// Instructions fetched (wrong path included).
    pub fetched: u64,
    /// Instructions dispatched into the window (wrong path included).
    pub dispatched: u64,
    /// Instructions issued to functional units (wrong path included).
    pub issued: u64,
    /// Instructions moved into the WIB (an instruction recycling through
    /// the WIB counts once per trip).
    pub wib_insertions: u64,
    /// Instructions reinserted from the WIB into the issue queue.
    pub wib_extractions: u64,
    /// Largest number of WIB trips made by any single committed
    /// instruction.
    pub wib_max_insertions_per_inst: u64,
    /// Committed instructions that made at least one WIB trip.
    pub wib_touched_insts: u64,
    /// Total WIB trips summed over committed instructions (for the
    /// average-insertions statistic the paper quotes for mgrid).
    pub wib_insertions_committed: u64,
    /// Loads that missed in the L1 D-cache but could not get a bit-vector
    /// (bit-vector limit reached) and so stalled conventionally.
    pub wib_column_exhausted: u64,
    /// Pool-of-blocks organization only: pretend-ready selections that
    /// found the pool full and wasted the issue slot (paper section 3.5's
    /// hazard).
    pub wib_pool_stalls: u64,
    /// The non-default latency-tolerance backend this run used, or empty
    /// for the base/WIB machines. Gates the `backend` JSON section so
    /// legacy output stays byte-identical.
    pub backend: String,
    /// Runahead: episodes entered (checkpoint + pre-execute + restore).
    pub runahead_episodes: u64,
    /// Runahead: instructions pseudo-retired inside episodes (they do not
    /// count toward [`SimStats::committed`]).
    pub runahead_pseudo_retired: u64,
    /// Runahead: loads completed invalid (poisoned address, blocked
    /// forwarding, or data that cannot arrive inside the episode).
    pub runahead_inv_loads: u64,
    /// Delay-tracking: instructions parked in the delay queue.
    pub delay_parked: u64,
    /// Delay-tracking: parked instructions reinserted at their predicted
    /// wake cycle.
    pub delay_reinserted: u64,
    /// Cycles dispatch was blocked because the active list was full.
    pub stall_active_list: u64,
    /// Cycles dispatch was blocked because an issue queue was full.
    pub stall_issue_queue: u64,
    /// Cycles dispatch was blocked on a full load/store queue.
    pub stall_lsq: u64,
    /// Cycles dispatch was blocked because no physical register was free.
    pub stall_regs: u64,
    /// Second-level register-file reads (two-level register file only).
    pub rf_l2_reads: u64,
    /// Memory-hierarchy statistics.
    pub mem: HierStats,
    /// Branch direction lookups at fetch.
    pub dir_lookups: u64,
    /// Active-list occupancy, sampled every [`OCCUPANCY_SAMPLE_PERIOD`]
    /// cycles.
    pub occupancy_window: Histogram,
    /// Combined issue-queue occupancy, sampled alongside.
    pub occupancy_iq: Histogram,
    /// WIB residency, sampled alongside.
    pub occupancy_wib: Histogram,
    /// Per-cycle commit-slot attribution; sums exactly to [`cycles`].
    ///
    /// [`cycles`]: SimStats::cycles
    pub cpi: CpiStack,
    /// Epoch length (cycles) of the interval time-series.
    pub interval_epoch: u64,
    /// One sample per completed epoch: `intervals.len() == cycles /
    /// interval_epoch` exactly.
    pub intervals: Vec<IntervalSample>,
}

/// Cycles between occupancy samples (cheap enough to always collect).
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 16;

impl Default for SimStats {
    fn default() -> SimStats {
        SimStats {
            cycles: 0,
            committed: 0,
            committed_loads: 0,
            committed_stores: 0,
            cond_branches: 0,
            dir_mispredicts: 0,
            target_mispredicts: 0,
            order_violations: 0,
            fetched: 0,
            dispatched: 0,
            issued: 0,
            wib_insertions: 0,
            wib_extractions: 0,
            wib_max_insertions_per_inst: 0,
            wib_touched_insts: 0,
            wib_insertions_committed: 0,
            wib_column_exhausted: 0,
            wib_pool_stalls: 0,
            backend: String::new(),
            runahead_episodes: 0,
            runahead_pseudo_retired: 0,
            runahead_inv_loads: 0,
            delay_parked: 0,
            delay_reinserted: 0,
            stall_active_list: 0,
            stall_issue_queue: 0,
            stall_lsq: 0,
            stall_regs: 0,
            rf_l2_reads: 0,
            mem: HierStats::default(),
            dir_lookups: 0,
            occupancy_window: Histogram::new(2048),
            occupancy_iq: Histogram::new(80),
            occupancy_wib: Histogram::new(2048),
            cpi: CpiStack::default(),
            interval_epoch: DEFAULT_INTERVAL_EPOCH,
            intervals: Vec::new(),
        }
    }
}

/// Default interval-series epoch, in cycles.
pub const DEFAULT_INTERVAL_EPOCH: u64 = 10_000;

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of conditional-branch directions predicted correctly.
    pub fn branch_dir_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.dir_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mean WIB trips per committed instruction that entered the WIB at
    /// least once.
    pub fn wib_avg_insertions(&self) -> f64 {
        if self.wib_touched_insts == 0 {
            0.0
        } else {
            self.wib_insertions_committed as f64 / self.wib_touched_insts as f64
        }
    }

    /// The full statistics block as an ordered JSON object (the
    /// `"stats"` section of the CLI's `--stats-json` document).
    pub fn to_json(&self) -> Json {
        let mem = Json::obj()
            .field("data_accesses", self.mem.data_accesses)
            .field("l1d_misses", self.mem.l1d_misses)
            .field("l2_accesses", self.mem.l2_accesses)
            .field("l2_misses", self.mem.l2_misses)
            .field("mshr_merges", self.mem.mshr_merges)
            .field("l1d_miss_ratio", self.mem.l1d_miss_ratio())
            .field("l2_local_miss_ratio", self.mem.l2_local_miss_ratio());
        let stalls = Json::obj()
            .field("active_list", self.stall_active_list)
            .field("issue_queue", self.stall_issue_queue)
            .field("lsq", self.stall_lsq)
            .field("regs", self.stall_regs);
        let wib = Json::obj()
            .field("insertions", self.wib_insertions)
            .field("extractions", self.wib_extractions)
            .field("touched_insts", self.wib_touched_insts)
            .field("insertions_committed", self.wib_insertions_committed)
            .field("max_insertions_per_inst", self.wib_max_insertions_per_inst)
            .field("avg_insertions", self.wib_avg_insertions())
            .field("column_exhausted", self.wib_column_exhausted)
            .field("pool_stalls", self.wib_pool_stalls);
        let occupancy = Json::obj()
            .field("window", self.occupancy_window.to_json())
            .field("issue_queues", self.occupancy_iq.to_json())
            .field("wib", self.occupancy_wib.to_json());
        let mut out = Json::obj()
            .field("cycles", self.cycles)
            .field("committed", self.committed)
            .field("ipc", self.ipc())
            .field("fetched", self.fetched)
            .field("dispatched", self.dispatched)
            .field("issued", self.issued)
            .field("committed_loads", self.committed_loads)
            .field("committed_stores", self.committed_stores)
            .field("cond_branches", self.cond_branches)
            .field("dir_mispredicts", self.dir_mispredicts)
            .field("branch_dir_rate", self.branch_dir_rate())
            .field("target_mispredicts", self.target_mispredicts)
            .field("order_violations", self.order_violations)
            .field("dir_lookups", self.dir_lookups)
            .field("rf_l2_reads", self.rf_l2_reads)
            .field("mem", mem)
            .field("stalls", stalls)
            .field("wib", wib);
        // Only the new backends emit this section: base/WIB documents
        // (and the 90 cycle-identity goldens pinning them) are unchanged.
        if !self.backend.is_empty() {
            let backend = Json::obj()
                .field("name", self.backend.as_str())
                .field("runahead_episodes", self.runahead_episodes)
                .field("runahead_pseudo_retired", self.runahead_pseudo_retired)
                .field("runahead_inv_loads", self.runahead_inv_loads)
                .field("delay_parked", self.delay_parked)
                .field("delay_reinserted", self.delay_reinserted);
            out = out.field("backend", backend);
        }
        out.field("occupancy", occupancy)
            .field("cpi_stack", self.cpi.to_json())
            .field("interval_epoch", self.interval_epoch)
            .field(
                "intervals",
                Json::Arr(self.intervals.iter().map(IntervalSample::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_dir_rate(), 1.0);
        s.cycles = 100;
        s.committed = 250;
        s.cond_branches = 10;
        s.dir_mispredicts = 1;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.branch_dir_rate() - 0.9).abs() < 1e-12);
        s.wib_touched_insts = 4;
        s.wib_insertions_committed = 10;
        assert!((s.wib_avg_insertions() - 2.5).abs() < 1e-12);
    }
}
