//! Per-instruction pipeline tracing.
//!
//! When enabled (see [`crate::Processor::run_program_traced`]), the engine
//! records the cycle at which every *committed* instruction passed each
//! pipeline milestone, plus its WIB trips — enough to render a
//! pipeview-style timeline and to see chains parking and reinserting.
//!
//! Two capture modes: keep the **first** `capacity` commits (startup
//! behavior), or keep the **last** `capacity` as a ring buffer (steady
//! state / end-of-run behavior; see [`Trace::new_tail`]).

use std::collections::VecDeque;
use std::fmt;

/// Lifecycle of one committed instruction.
#[derive(Debug, Clone)]
pub struct InstTrace {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Fetch PC.
    pub pc: u32,
    /// Disassembled text.
    pub text: String,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle renamed/dispatched into the window.
    pub dispatch: u64,
    /// Cycle issued to a functional unit (`None` = completed in the
    /// front end and never occupied an issue queue).
    pub issue: Option<u64>,
    /// Cycle the result was produced.
    pub complete: u64,
    /// Cycle committed.
    pub commit: u64,
    /// Trips through the WIB.
    pub wib_trips: u32,
}

/// Which end of the run a bounded trace keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    /// Keep the first `capacity` commits, ignore the rest.
    Head,
    /// Ring buffer: keep the most recent `capacity` commits.
    Tail,
}

/// A bounded log of committed-instruction lifecycles.
#[derive(Debug, Clone)]
pub struct Trace {
    records: VecDeque<InstTrace>,
    capacity: usize,
    mode: TraceMode,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new(0)
    }
}

impl Trace {
    /// A trace that keeps the first `capacity` committed instructions.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::new(),
            capacity,
            mode: TraceMode::Head,
            dropped: 0,
        }
    }

    /// A trace that keeps the *last* `capacity` committed instructions
    /// (older records are evicted as newer ones arrive).
    pub fn new_tail(capacity: usize) -> Trace {
        Trace {
            records: VecDeque::new(),
            capacity,
            mode: TraceMode::Tail,
            dropped: 0,
        }
    }

    /// Record one commit.
    pub fn push(&mut self, record: InstTrace) {
        match self.mode {
            TraceMode::Head => {
                if self.records.len() < self.capacity {
                    self.records.push_back(record);
                } else {
                    self.dropped += 1;
                }
            }
            TraceMode::Tail => {
                if self.capacity == 0 {
                    self.dropped += 1;
                    return;
                }
                if self.records.len() == self.capacity {
                    self.records.pop_front();
                    self.dropped += 1;
                }
                self.records.push_back(record);
            }
        }
    }

    /// Records collected so far, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &InstTrace> {
        self.records.iter()
    }

    /// Number of records retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// True once `capacity` records have been collected.
    pub fn is_full(&self) -> bool {
        self.records.len() >= self.capacity
    }

    /// Commits not retained (ignored in head mode, evicted in tail mode).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl fmt::Display for Trace {
    /// Render a compact timeline: one instruction per row, with the
    /// cycles of each milestone (F fetch, D dispatch, I issue, C complete,
    /// R retire) and the WIB trip count.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10}  {:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5}",
            "seq", "pc", "instruction", "F", "D", "I", "C", "R", "WIB"
        )?;
        for r in &self.records {
            writeln!(
                f,
                "{:>6} {:>#10x}  {:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5}",
                r.seq,
                r.pc,
                r.text,
                r.fetch,
                r.dispatch,
                match r.issue {
                    None => "-".to_string(),
                    Some(c) => c.to_string(),
                },
                r.complete,
                r.commit,
                if r.wib_trips == 0 {
                    "".to_string()
                } else {
                    format!("x{}", r.wib_trips)
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> InstTrace {
        InstTrace {
            seq,
            pc: 0x1000,
            text: "add r1, r2, r3".into(),
            fetch: 1,
            dispatch: 3,
            issue: Some(4),
            complete: 5,
            commit: 6,
            wib_trips: 2,
        }
    }

    #[test]
    fn head_mode_keeps_the_first_records() {
        let mut t = Trace::new(2);
        for s in 0..5 {
            t.push(record(s));
        }
        assert_eq!(t.len(), 2);
        assert!(t.is_full());
        assert_eq!(t.dropped(), 3);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn tail_mode_keeps_the_last_records() {
        let mut t = Trace::new_tail(3);
        for s in 0..10 {
            t.push(record(s));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn display_contains_milestones() {
        let mut t = Trace::new(4);
        t.push(record(7));
        let mut front_end = record(8);
        front_end.issue = None;
        front_end.wib_trips = 0;
        t.push(front_end);
        let s = t.to_string();
        assert!(s.contains("add r1, r2, r3"));
        assert!(s.contains("x2"));
        assert!(
            s.contains(" - "),
            "front-end completion renders as `-`:\n{s}"
        );
    }

    #[test]
    fn zero_capacity_is_safe() {
        let mut t = Trace::new_tail(0);
        t.push(record(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
