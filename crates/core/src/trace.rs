//! Per-instruction pipeline tracing.
//!
//! When enabled (see [`crate::Processor::run_program_traced`]), the engine
//! records the cycle at which every *committed* instruction passed each
//! pipeline milestone, plus its WIB trips — enough to render a
//! pipeview-style timeline and to see chains parking and reinserting.

use std::fmt;

/// Lifecycle of one committed instruction.
#[derive(Debug, Clone)]
pub struct InstTrace {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Fetch PC.
    pub pc: u32,
    /// Disassembled text.
    pub text: String,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle renamed/dispatched into the window.
    pub dispatch: u64,
    /// Cycle issued to a functional unit (0 = completed in the front end).
    pub issue: u64,
    /// Cycle the result was produced.
    pub complete: u64,
    /// Cycle committed.
    pub commit: u64,
    /// Trips through the WIB.
    pub wib_trips: u32,
}

/// A bounded log of committed-instruction lifecycles.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<InstTrace>,
    capacity: usize,
}

impl Trace {
    /// A trace that keeps the first `capacity` committed instructions.
    pub fn new(capacity: usize) -> Trace {
        Trace { records: Vec::new(), capacity }
    }

    /// Record one commit (ignored once full).
    pub fn push(&mut self, record: InstTrace) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        }
    }

    /// Records collected so far.
    pub fn records(&self) -> &[InstTrace] {
        &self.records
    }

    /// True once `capacity` records have been collected.
    pub fn is_full(&self) -> bool {
        self.records.len() >= self.capacity
    }
}

impl fmt::Display for Trace {
    /// Render a compact timeline: one instruction per row, with the
    /// cycles of each milestone (F fetch, D dispatch, I issue, C complete,
    /// R retire) and the WIB trip count.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10}  {:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5}",
            "seq", "pc", "instruction", "F", "D", "I", "C", "R", "WIB"
        )?;
        for r in &self.records {
            writeln!(
                f,
                "{:>6} {:>#10x}  {:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5}",
                r.seq,
                r.pc,
                r.text,
                r.fetch,
                r.dispatch,
                if r.issue == 0 { "-".to_string() } else { r.issue.to_string() },
                r.complete,
                r.commit,
                if r.wib_trips == 0 { "".to_string() } else { format!("x{}", r.wib_trips) },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> InstTrace {
        InstTrace {
            seq,
            pc: 0x1000,
            text: "add r1, r2, r3".into(),
            fetch: 1,
            dispatch: 3,
            issue: 4,
            complete: 5,
            commit: 6,
            wib_trips: 2,
        }
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Trace::new(2);
        for s in 0..5 {
            t.push(record(s));
        }
        assert_eq!(t.records().len(), 2);
        assert!(t.is_full());
        assert_eq!(t.records()[1].seq, 1);
    }

    #[test]
    fn display_contains_milestones() {
        let mut t = Trace::new(4);
        t.push(record(7));
        let s = t.to_string();
        assert!(s.contains("add r1, r2, r3"));
        assert!(s.contains("x2"));
    }
}
