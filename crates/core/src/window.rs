//! Dispatcher over the two waiting-instruction-buffer implementations:
//! the paper's bit-vector WIB (section 3.3) and the pool-of-blocks
//! alternative (section 3.5).

use crate::config::{SelectionPolicy, WibOrganization};
use crate::types::{ColumnId, Seq};
use crate::wib::{Wib, WibStats};
use crate::wib_pool::{PoolConfig, PoolWib};

/// A waiting instruction buffer of either organization.
#[derive(Debug, Clone)]
pub enum Window {
    /// Bit-vector WIB (banked / non-banked / ideal).
    BitVector(Wib),
    /// Pool-of-blocks WIB.
    Pool(PoolWib),
}

impl Window {
    /// Build the implementation matching `organization`.
    pub fn new(
        size: usize,
        organization: WibOrganization,
        policy: SelectionPolicy,
        max_columns: usize,
    ) -> Window {
        match organization {
            WibOrganization::PoolOfBlocks {
                block_slots,
                blocks,
            } => Window::Pool(PoolWib::new(PoolConfig {
                block_slots,
                blocks,
            })),
            _ => Window::BitVector(Wib::new(size, organization, policy, max_columns)),
        }
    }

    /// Track a new outstanding load miss; `None` when the budget is
    /// exhausted (bit-vector organization only).
    pub fn allocate_column(&mut self, load_seq: Seq) -> Option<ColumnId> {
        match self {
            Window::BitVector(w) => w.allocate_column(load_seq),
            Window::Pool(p) => p.allocate_column(load_seq),
        }
    }

    /// Park `(slot, seq)` against `column`. Returns false when there is
    /// no room (pool organization only) — the instruction must stay in
    /// its issue queue.
    pub fn insert(&mut self, slot: usize, seq: Seq, column: ColumnId) -> bool {
        match self {
            Window::BitVector(w) => {
                w.insert(slot, seq, column);
                true
            }
            Window::Pool(p) => p.insert(slot, seq, column),
        }
    }

    /// The tracked miss completed.
    pub fn column_completed(&mut self, column: ColumnId) {
        match self {
            Window::BitVector(w) => w.column_completed(column),
            Window::Pool(p) => p.column_completed(column),
        }
    }

    /// Squash the instruction at `slot`, if parked.
    pub fn squash_slot(&mut self, slot: usize) {
        match self {
            Window::BitVector(w) => w.squash_slot(slot),
            Window::Pool(p) => p.squash_slot(slot),
        }
    }

    /// Free a squashed load's column (owner-checked).
    pub fn squash_column(&mut self, column: ColumnId, load_seq: Seq) {
        match self {
            Window::BitVector(w) => w.squash_column(column, load_seq),
            Window::Pool(p) => p.squash_column(column, load_seq),
        }
    }

    /// Extract up to `budget` eligible instructions this cycle.
    pub fn extract<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        now: u64,
        budget: usize,
        accept: F,
    ) -> usize {
        match self {
            Window::BitVector(w) => w.extract(now, budget, accept),
            Window::Pool(p) => p.extract(budget, accept),
        }
    }

    /// True if `slot` is parked and extractable.
    pub fn eligible_slot(&self, slot: usize) -> bool {
        match self {
            Window::BitVector(w) => w.eligible_slot(slot),
            Window::Pool(p) => p.eligible_slot(slot),
        }
    }

    /// Forcibly extract `slot` (caller checked [`Window::eligible_slot`]).
    pub fn take_slot(&mut self, slot: usize) {
        match self {
            Window::BitVector(w) => w.take_slot(slot),
            Window::Pool(p) => p.take_slot(slot),
        }
    }

    /// Parked instructions.
    pub fn resident(&self) -> usize {
        match self {
            Window::BitVector(w) => w.resident(),
            Window::Pool(p) => p.resident(),
        }
    }

    /// True when extraction is a guaranteed no-op (no completed column or
    /// chain); the engine may fast-forward such cycles.
    pub fn quiescent(&self) -> bool {
        match self {
            Window::BitVector(w) => w.quiescent(),
            Window::Pool(p) => p.quiescent(),
        }
    }

    /// Bit-vector columns (or pool chains) tracking an outstanding load.
    pub fn columns_in_use(&self) -> usize {
        match self {
            Window::BitVector(w) => w.columns_in_use(),
            Window::Pool(p) => p.columns_in_use(),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> WibStats {
        match self {
            Window::BitVector(w) => w.stats(),
            Window::Pool(p) => p.stats(),
        }
    }

    /// Failed pool insertions (0 for the bit-vector organization).
    pub fn insert_failures(&self) -> u64 {
        match self {
            Window::BitVector(_) => 0,
            Window::Pool(p) => p.insert_failures,
        }
    }

    /// True if `slot` currently holds a parked instruction.
    pub fn contains(&self, slot: usize) -> bool {
        match self {
            Window::BitVector(w) => w.contains(slot),
            Window::Pool(p) => p.contains(slot),
        }
    }

    /// Machine-check helper: true while `column` tracks an outstanding
    /// load (allocated and not yet freed).
    pub fn column_live(&self, column: ColumnId) -> bool {
        match self {
            Window::BitVector(w) => w.column_live(column),
            Window::Pool(p) => p.column_live(column),
        }
    }

    /// Machine-check: run the active organization's invariant checker.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            Window::BitVector(w) => w.check_invariants(),
            Window::Pool(p) => p.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_round_trip_both_kinds() {
        for org in [
            WibOrganization::Banked { banks: 16 },
            WibOrganization::PoolOfBlocks {
                block_slots: 4,
                blocks: 8,
            },
        ] {
            let mut w = Window::new(128, org, SelectionPolicy::ProgramOrder, 8);
            let col = w.allocate_column(1).expect("column");
            assert!(w.insert(5, 6, col));
            assert_eq!(w.resident(), 1);
            w.column_completed(col);
            let mut got = Vec::new();
            for cycle in 0..4 {
                w.extract(cycle, 8, |seq, slot| {
                    got.push((seq, slot));
                    true
                });
            }
            assert_eq!(got, vec![(6, 5)]);
            assert_eq!(w.stats().insertions, 1);
            assert_eq!(w.insert_failures(), 0);
        }
    }

    #[test]
    fn pool_failure_surfaces_through_dispatch() {
        let mut w = Window::new(
            128,
            WibOrganization::PoolOfBlocks {
                block_slots: 1,
                blocks: 1,
            },
            SelectionPolicy::ProgramOrder,
            8,
        );
        let c = w.allocate_column(1).expect("column");
        assert!(w.insert(0, 10, c));
        assert!(!w.insert(1, 11, c));
        assert_eq!(w.insert_failures(), 1);
    }
}
