//! Stable content digests for configurations and results.
//!
//! The serving layer's result cache, the reproducer headers written by
//! the fuzzer, and any future artifact that needs a *stable identity for
//! a piece of text* all share one hash: 64-bit FNV-1a. It is tiny,
//! dependency-free, endian-independent, and — critically — **fixed
//! forever**: the constants below are part of the on-disk cache format,
//! so a cached result written by one build is found by every later
//! build. (FNV-1a is not collision-resistant against adversaries; cache
//! keys here always ride alongside the full human-readable spec, so a
//! collision can be detected, never silently served.)

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`fnv1a64`] rendered as the canonical 16-digit lower-case hex string
/// used in cache file names and repro headers.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Fowler/Noll/Vo).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_16_lowercase_digits() {
        let h = fnv1a64_hex(b"wib:w=2048");
        assert_eq!(h.len(), 16);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        // Stability: this exact value is baked into on-disk cache names.
        assert_eq!(h, fnv1a64_hex(b"wib:w=2048"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a64(b"base"), fnv1a64(b"wib:w=2048"));
        assert_ne!(fnv1a64(b"gcc\nbase"), fnv1a64(b"gzip\nbase"));
    }
}
