//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! party that wants a run stopped (a serving daemon, a harness with a
//! wall-clock budget) and the engine executing it. The engine polls the
//! token **once per stats epoch** — the same boundary at which it
//! samples the interval time-series — so the per-cycle hot path gains
//! no atomic traffic, no allocation, and no wall-clock reads. Warm-up
//! (the reference-interpreter fast-forward) polls every 4096
//! instructions, the same order of granularity.
//!
//! Two things can trip a token:
//!
//! * an explicit [`CancelToken::cancel`] call (a client's `cancel`
//!   request on a running job), observable via
//!   [`CancelToken::is_cancelled`];
//! * an optional deadline fixed at construction
//!   ([`CancelToken::with_deadline`]), observable via
//!   [`CancelToken::deadline_expired`].
//!
//! Callers that need to distinguish "cancelled" from "timed out" check
//! the two predicates after the run returns with
//! [`RunResult::cancelled`] set.
//!
//! Cancellation is *cooperative and best-effort*: a run that finishes
//! between two polls completes normally, and statistics of a cancelled
//! run cover only the cycles actually simulated — they must never be
//! cached or compared against a full run.
//!
//! [`RunResult::cancelled`]: crate::processor::RunResult::cancelled

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared stop-request handle polled by the engine at epoch boundaries.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; only [`CancelToken::cancel`] trips it.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally trips once `budget` wall-clock time has
    /// elapsed from *now* (token construction).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called (deadline
    /// expiry does *not* set this — see
    /// [`CancelToken::deadline_expired`]).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// True once the construction-time deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The engine's poll: stop if cancelled *or* past the deadline.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.deadline_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.should_stop() && !c.should_stop());
        c.cancel();
        assert!(t.is_cancelled() && t.should_stop());
        assert!(!t.deadline_expired(), "no deadline was set");
    }

    #[test]
    fn deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.deadline_expired() && t.should_stop());
        assert!(!t.is_cancelled(), "expiry is not an explicit cancel");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.should_stop());
    }
}
