//! Cheap, sampled self-profiling of the engine's pipeline stages.
//!
//! The docs/perf.md rule is "profile first": before the bit-parallel loop
//! work the engine must be able to say where a simulated cycle's wall
//! clock goes. Timing every stage of every cycle would double the cost of
//! the thing being measured, so [`StageProfile`] samples: one cycle in
//! every [`PROFILE_SAMPLE_PERIOD`] is timed stage by stage with monotonic
//! clock laps, everything else runs untouched. The sampled shares are
//! unbiased as long as stage costs do not correlate with `cycle %
//! PROFILE_SAMPLE_PERIOD`, which nothing in the engine does. The hot path
//! stays allocation-free (the profile is a fixed array on the engine) and
//! the alloc-gate test keeps that honest.

use crate::json::Json;

/// Pipeline stages attributed by the profiler, in `step()` order. `other`
/// absorbs bookkeeping outside the four named stages (stats sampling,
/// machine checks, the watchdog).
pub const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["commit", "events", "dispatch", "issue", "fetch", "other"];

/// Number of profiled stages.
pub const STAGE_COUNT: usize = 6;

/// One cycle in this many is stage-timed (power of two, tested below, so
/// the sampling decision is a mask, not a division).
pub const PROFILE_SAMPLE_PERIOD: u64 = 1024;

/// Sampled wall-clock attribution of engine time to pipeline stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// How many cycles were stage-timed.
    pub sampled_cycles: u64,
    /// Nanoseconds attributed to each stage across the sampled cycles,
    /// indexed like [`STAGE_NAMES`].
    pub stage_ns: [u64; STAGE_COUNT],
}

impl StageProfile {
    /// Fold another profile into this one (e.g. across a sweep's runs).
    pub fn merge(&mut self, other: &StageProfile) {
        self.sampled_cycles += other.sampled_cycles;
        for (a, b) in self.stage_ns.iter_mut().zip(other.stage_ns.iter()) {
            *a += b;
        }
    }

    /// Total sampled nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Fraction of sampled time spent in stage `i` (0 when nothing was
    /// sampled).
    pub fn share(&self, i: usize) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.stage_ns[i] as f64 / total as f64
        }
    }

    /// JSON summary: sampled cycle count plus per-stage nanoseconds.
    pub fn to_json(&self) -> Json {
        let mut stages = Json::obj();
        for (name, &ns) in STAGE_NAMES.iter().zip(self.stage_ns.iter()) {
            stages = stages.field(*name, ns);
        }
        Json::obj()
            .field("sampled_cycles", self.sampled_cycles)
            .field("stage_ns", stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_period_is_a_power_of_two() {
        assert!(PROFILE_SAMPLE_PERIOD.is_power_of_two());
    }

    #[test]
    fn merge_adds_and_shares_normalize() {
        let mut a = StageProfile {
            sampled_cycles: 2,
            stage_ns: [10, 0, 20, 30, 40, 0],
        };
        let b = StageProfile {
            sampled_cycles: 1,
            stage_ns: [0, 5, 0, 0, 0, 95],
        };
        a.merge(&b);
        assert_eq!(a.sampled_cycles, 3);
        assert_eq!(a.total_ns(), 200);
        assert!((a.share(5) - 0.475).abs() < 1e-12);
        let total: f64 = (0..STAGE_COUNT).map(|i| a.share(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = StageProfile::default();
        assert_eq!(p.total_ns(), 0);
        assert_eq!(p.share(0), 0.0);
        let j = p.to_json();
        assert_eq!(j.keys(), vec!["sampled_cycles", "stage_ns"]);
    }
}
