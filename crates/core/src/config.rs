//! Machine configuration and the paper's preset machines.

use wib_bpred::btb::BtbConfig;
use wib_bpred::dir::DirConfig;
use wib_mem::hier::HierConfig;

/// Functional-unit counts and latencies (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuConfig {
    /// 1-cycle integer ALUs.
    pub int_alu: u32,
    /// Pipelined integer multipliers.
    pub int_mul: u32,
    /// Integer multiply latency.
    pub int_mul_latency: u64,
    /// Pipelined FP adders.
    pub fp_add: u32,
    /// FP add latency.
    pub fp_add_latency: u64,
    /// Pipelined FP multipliers.
    pub fp_mul: u32,
    /// FP multiply latency.
    pub fp_mul_latency: u64,
    /// Non-pipelined FP dividers.
    pub fp_div: u32,
    /// FP divide latency.
    pub fp_div_latency: u64,
    /// Non-pipelined FP square-root units.
    pub fp_sqrt: u32,
    /// FP square-root latency.
    pub fp_sqrt_latency: u64,
    /// D-cache ports (simultaneous load/store issues per cycle).
    pub mem_ports: u32,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig {
            int_alu: 8,
            int_mul: 2,
            int_mul_latency: 7,
            fp_add: 4,
            fp_add_latency: 4,
            fp_mul: 2,
            fp_mul_latency: 4,
            fp_div: 2,
            fp_div_latency: 12,
            fp_sqrt: 2,
            fp_sqrt_latency: 24,
            mem_ports: 4,
        }
    }
}

/// Physical register file organization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegFileConfig {
    /// All registers readable in a single cycle (the conventional
    /// configurations, which would not meet cycle time at large sizes —
    /// the paper's 2K-IQ/2K comparison explicitly ignores that).
    SingleLevel,
    /// Two-level register file: a small first level backed by a larger
    /// pipelined second level (Cruz et al. / Zalamea et al., as adopted by
    /// the paper's WIB machine).
    TwoLevel {
        /// Registers cached in the first level (per class).
        l1_regs: u32,
        /// Extra cycles for an operand read that misses the first level.
        l2_latency: u64,
        /// Second-level read ports (per class, per cycle).
        l2_read_ports: u32,
    },
    /// Multi-banked register file (Cruz et al. / Balasubramonian et al.):
    /// registers are interleaved across banks with limited read ports per
    /// bank; an operand read that loses the per-cycle port race is
    /// delayed one cycle. The paper reports this alternative "shows
    /// similar results" to the two-level file (section 3.4).
    MultiBanked {
        /// Number of banks (per class, power of two).
        banks: u32,
        /// Read ports per bank per cycle.
        ports_per_bank: u32,
        /// Extra cycles for a read that exceeds a bank's ports.
        conflict_penalty: u64,
    },
}

impl RegFileConfig {
    /// The paper's WIB register file: 128 L1 registers, 4-cycle pipelined
    /// L2 with 4 read ports.
    pub fn two_level_128() -> RegFileConfig {
        RegFileConfig::TwoLevel {
            l1_regs: 128,
            l2_latency: 4,
            l2_read_ports: 4,
        }
    }

    /// A multi-banked alternative of comparable cost: 8 banks with 2 read
    /// ports each, 1-cycle conflict penalty.
    pub fn multi_banked_8x2() -> RegFileConfig {
        RegFileConfig::MultiBanked {
            banks: 8,
            ports_per_bank: 2,
            conflict_penalty: 1,
        }
    }
}

/// Which cache level's miss signal moves dependents to the WIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WibTrigger {
    /// Any L1 data-cache load miss (the 21264 "load miss" signal the
    /// paper leverages).
    L1Miss,
    /// Only misses that leave the chip (L2 misses).
    L2Miss,
}

/// Physical organization of the WIB storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WibOrganization {
    /// The paper's default: banks operating on alternate cycles, one
    /// extraction per bank per two cycles, round-robin bank priority.
    Banked {
        /// Number of banks (the paper uses 2x the reinsertion width = 16).
        banks: u32,
    },
    /// A monolithic WIB with a multi-cycle access; extraction happens in
    /// full program order once per `latency` cycles (paper section 4.5).
    NonBanked {
        /// Access latency in cycles (the paper evaluates 4 and 6).
        latency: u64,
    },
    /// Idealized single-cycle access to the whole structure (used for the
    /// selection-policy study in section 4.4).
    Ideal,
    /// The paper's section 3.5 alternative: a pool of fixed-size blocks,
    /// one chain of blocks per load miss, instructions deposited in
    /// dependence order. Insertion fails when the pool is exhausted (the
    /// instruction stalls in the issue queue) — the hazard that made the
    /// paper prefer the bit-vector design.
    PoolOfBlocks {
        /// Instruction slots per block.
        block_slots: u32,
        /// Total blocks in the pool.
        blocks: u32,
    },
}

/// Policy for choosing among eligible instructions to reinsert (paper
/// section 4.4). Only meaningful with [`WibOrganization::Ideal`];
/// the banked organization implies per-bank program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Full program order among all eligible instructions (policy 2).
    ProgramOrder,
    /// Round-robin across completed loads, each load's instructions in
    /// program order (policy 3).
    RoundRobinLoads,
    /// All instructions from the oldest completed load first (policy 4).
    OldestLoadFirst,
}

/// Which latency-tolerance engine the processor runs behind the shared
/// fetch/rename/commit spine. The paper's comparison is WIB vs. a
/// conventional window; the two classic competitors from the literature
/// ride the same config grammar so every sweep can be a head-to-head:
/// runahead execution (Mutlu et al. / Hashemi) and real-time
/// load-delay tracking (Diavastos & Carlson).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Conventional out-of-order core (no WIB, no pre-execution).
    Base,
    /// The paper's waiting-instruction-buffer machine (requires
    /// [`MachineConfig::wib`] to be set).
    Wib,
    /// Runahead execution: when a DRAM-latency load blocks the head of
    /// the window, checkpoint the architectural state and pre-execute
    /// speculatively — with an invalid-bit poison file and a runahead
    /// store cache — to prefetch into the real memory hierarchy, then
    /// restore and replay.
    Runahead {
        /// Only enter runahead if the blocking miss still has at least
        /// this many cycles of latency left (entering costs a full
        /// pipeline restart).
        min_remaining: u64,
    },
    /// Load-delay-tracking scheduler: loads with a known miss latency
    /// stamp their dependence chain with predicted-arrival counters;
    /// dependents park in a time-indexed delay queue (freeing their
    /// issue-queue slots) and are reinserted when the counter expires,
    /// in place of the WIB's wait-bit chasing.
    DelayTrack {
        /// Minimum predicted remaining latency (cycles) before a
        /// dependent is worth parking; shorter waits stay in the issue
        /// queue.
        park_threshold: u64,
    },
}

impl Backend {
    /// The canonical spec-token value (`backend=<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Base => "base",
            Backend::Wib => "wib",
            Backend::Runahead { .. } => "runahead",
            Backend::DelayTrack { .. } => "delay_track",
        }
    }
}

/// The accepted `backend=` spec values, for error messages.
pub const BACKEND_VALUES: &str = "base, wib, runahead, delay_track";

/// Default runahead entry threshold (cycles of miss latency remaining).
pub const DEFAULT_RUNAHEAD_MIN_REMAINING: u64 = 32;

/// Default delay-tracking park threshold (cycles; roughly an L2 hit).
pub const DEFAULT_DELAY_PARK_THRESHOLD: u64 = 8;

/// Waiting-instruction-buffer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WibConfig {
    /// Storage organization.
    pub organization: WibOrganization,
    /// Selection policy (used by `Ideal`; `Banked` uses per-bank program
    /// order and `NonBanked` full program order).
    pub policy: SelectionPolicy,
    /// Maximum simultaneous bit-vectors (tracked outstanding load misses).
    /// A load miss that cannot get a bit-vector leaves its dependents in
    /// the issue queue, as on a conventional machine.
    pub max_bit_vectors: u32,
    /// Which miss level diverts dependents to the WIB.
    pub trigger: WibTrigger,
    /// The paper's section 6 extension: also divert the dependence chains
    /// of long non-pipelined FP operations (divide, square root) — "we
    /// believe our technique could be extended to other types of long
    /// latency operations". Off by default (the paper evaluates load
    /// misses only).
    pub divert_long_fp_ops: bool,
}

impl WibConfig {
    /// The paper's default WIB: 16 banks, unlimited bit-vectors (bounded
    /// by the load queue), triggered by L1 load misses.
    pub fn isca2002(load_queue: u32) -> WibConfig {
        WibConfig {
            organization: WibOrganization::Banked { banks: 16 },
            policy: SelectionPolicy::ProgramOrder,
            max_bit_vectors: load_queue,
            trigger: WibTrigger::L1Miss,
            divert_long_fp_ops: false,
        }
    }
}

/// Complete machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions renamed/dispatched per cycle (shared with WIB
    /// reinsertion, which has priority).
    pub decode_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Integer issue width.
    pub issue_width_int: u32,
    /// Floating-point issue width.
    pub issue_width_fp: u32,
    /// Instruction fetch queue entries.
    pub ifq_size: u32,
    /// Integer issue queue entries.
    pub iq_int_size: u32,
    /// Floating-point issue queue entries.
    pub iq_fp_size: u32,
    /// Active list (reorder buffer) entries. The WIB, when present, has
    /// exactly this many entries.
    pub active_list: u32,
    /// Load queue entries.
    pub load_queue: u32,
    /// Store queue entries.
    pub store_queue: u32,
    /// Physical registers per class (integer and FP each).
    pub regs_per_class: u32,
    /// Register file organization.
    pub regfile: RegFileConfig,
    /// Functional units.
    pub fu: FuConfig,
    /// Memory hierarchy.
    pub mem: HierConfig,
    /// Direction predictor sizing.
    pub dir: DirConfig,
    /// BTB sizing.
    pub btb: BtbConfig,
    /// Return-address-stack entries.
    pub ras_entries: u32,
    /// Extra cycles charged on a branch misprediction redirect, on top of
    /// the natural front-end refill (calibrates to the 21264's ~7-cycle
    /// penalty).
    pub mispredict_extra_penalty: u64,
    /// Cycles between fetch and dispatch (the slot + rename stages).
    pub front_end_delay: u64,
    /// Extra fetch bubble when a taken direct jump misses the BTB.
    pub btb_miss_penalty_direct: u64,
    /// Extra fetch bubble for other control instructions missing the BTB.
    pub btb_miss_penalty_other: u64,
    /// The WIB, if this machine has one.
    pub wib: Option<WibConfig>,
    /// Which latency-tolerance engine runs behind the shared spine.
    /// Must agree with [`MachineConfig::wib`]: exactly
    /// [`Backend::Wib`] machines carry a [`WibConfig`].
    pub backend: Backend,
    /// Epoch length (cycles) of the interval time-series in
    /// [`crate::SimStats::intervals`].
    pub stats_epoch: u64,
}

impl MachineConfig {
    /// The paper's base machine (Table 1): 32-entry issue queues, 128-entry
    /// active list, 128 registers per class, 64/64 LSQ, no WIB.
    pub fn base_8way() -> MachineConfig {
        MachineConfig {
            fetch_width: 8,
            decode_width: 8,
            commit_width: 8,
            issue_width_int: 8,
            issue_width_fp: 4,
            ifq_size: 8,
            iq_int_size: 32,
            iq_fp_size: 32,
            active_list: 128,
            load_queue: 64,
            store_queue: 64,
            regs_per_class: 128,
            regfile: RegFileConfig::SingleLevel,
            fu: FuConfig::default(),
            mem: HierConfig::isca2002_base(),
            dir: DirConfig::isca2002(),
            btb: BtbConfig::isca2002(),
            ras_entries: 32,
            mispredict_extra_penalty: 2,
            front_end_delay: 2,
            btb_miss_penalty_direct: 2,
            btb_miss_penalty_other: 9,
            wib: None,
            backend: Backend::Base,
            stats_epoch: crate::stats::DEFAULT_INTERVAL_EPOCH,
        }
    }

    /// A conventional (no-WIB) machine with the given issue queue size,
    /// scaled per the paper's limit study (section 2.2.2): for issue
    /// queues of 32/64/128 the active list stays at 128; beyond that the
    /// active list, register files and issue queue are all equal, and the
    /// load/store queues are half the active list.
    pub fn conventional(iq_size: u32) -> MachineConfig {
        let mut cfg = MachineConfig::base_8way();
        cfg.iq_int_size = iq_size;
        cfg.iq_fp_size = iq_size;
        if iq_size > 128 {
            cfg.active_list = iq_size;
            cfg.regs_per_class = iq_size;
            cfg.load_queue = iq_size / 2;
            cfg.store_queue = iq_size / 2;
        }
        cfg
    }

    /// The paper's headline WIB machine: 32-entry issue queues, 2K-entry
    /// active list and WIB, 2K registers per class behind a two-level
    /// register file (128 L1), 1K/1K load/store queues.
    pub fn wib_2k() -> MachineConfig {
        MachineConfig::wib_sized(2048)
    }

    /// A WIB machine with the given active-list/WIB capacity; register
    /// files scale with it and the LSQ is half its size (paper section
    /// 4.3). Capacities of 128..=2048 reproduce Figure 6.
    pub fn wib_sized(window: u32) -> MachineConfig {
        let mut cfg = MachineConfig::base_8way();
        cfg.active_list = window;
        cfg.regs_per_class = window.max(128);
        cfg.load_queue = (window / 2).max(64);
        cfg.store_queue = (window / 2).max(64);
        cfg.regfile = RegFileConfig::two_level_128();
        cfg.wib = Some(WibConfig::isca2002(cfg.load_queue));
        cfg.backend = Backend::Wib;
        cfg
    }

    /// The base machine driven by runahead execution: same Table 1
    /// resources, but a DRAM miss at the head of the window triggers a
    /// checkpointed pre-execution episode instead of a stall.
    pub fn runahead_8way() -> MachineConfig {
        let mut cfg = MachineConfig::base_8way();
        cfg.backend = Backend::Runahead {
            min_remaining: DEFAULT_RUNAHEAD_MIN_REMAINING,
        };
        cfg
    }

    /// A load-delay-tracking machine with the given active-list capacity:
    /// the WIB machine's sizing (large active list, scaled registers
    /// behind a two-level file, half-sized LSQ) but dependents of known
    /// misses park in a time-indexed delay queue instead of a WIB.
    pub fn delay_track_sized(window: u32) -> MachineConfig {
        let mut cfg = MachineConfig::wib_sized(window);
        cfg.wib = None;
        cfg.backend = Backend::DelayTrack {
            park_threshold: DEFAULT_DELAY_PARK_THRESHOLD,
        };
        cfg
    }

    /// The delay-tracking counterpart of [`MachineConfig::wib_2k`].
    pub fn delay_track_2k() -> MachineConfig {
        MachineConfig::delay_track_sized(2048)
    }

    /// The section 3.5 alternative: the WIB machine with a pool-of-blocks
    /// buffer (`blocks` blocks of `block_slots` instructions) instead of
    /// the bit-vector organization.
    pub fn wib_pool(block_slots: u32, blocks: u32) -> MachineConfig {
        MachineConfig::wib_2k().with_wib_organization(WibOrganization::PoolOfBlocks {
            block_slots,
            blocks,
        })
    }

    /// Cap the number of WIB bit-vectors (paper Figure 5).
    ///
    /// # Panics
    /// Panics if this machine has no WIB.
    pub fn with_bit_vectors(mut self, n: u32) -> MachineConfig {
        self.wib
            .as_mut()
            .expect("machine has no WIB")
            .max_bit_vectors = n;
        self
    }

    /// Replace the WIB organization (paper sections 4.4/4.5).
    ///
    /// # Panics
    /// Panics if this machine has no WIB.
    pub fn with_wib_organization(mut self, org: WibOrganization) -> MachineConfig {
        self.wib.as_mut().expect("machine has no WIB").organization = org;
        self
    }

    /// Replace the WIB selection policy (paper section 4.4).
    ///
    /// # Panics
    /// Panics if this machine has no WIB.
    pub fn with_wib_policy(mut self, policy: SelectionPolicy) -> MachineConfig {
        self.wib.as_mut().expect("machine has no WIB").policy = policy;
        self
    }

    /// Enable the section 6 extension: chains of long non-pipelined FP
    /// operations also park in the WIB.
    ///
    /// # Panics
    /// Panics if this machine has no WIB.
    pub fn with_long_fp_divert(mut self) -> MachineConfig {
        self.wib
            .as_mut()
            .expect("machine has no WIB")
            .divert_long_fp_ops = true;
        self
    }

    /// Set the DRAM latency (the paper's 100-cycle sensitivity study).
    pub fn with_memory_latency(mut self, cycles: u64) -> MachineConfig {
        self.mem.mem_latency = cycles;
        self
    }

    /// Set the interval time-series epoch (cycles per sample).
    pub fn with_stats_epoch(mut self, cycles: u64) -> MachineConfig {
        self.stats_epoch = cycles;
        self
    }

    /// Serialize this configuration as a compact, human-readable spec
    /// string: `base`, `conv:iq=256`, or `wib:w=2048` followed by
    /// comma-separated overrides (`backend=runahead|delay_track`,
    /// `rathresh=N`, `dtthresh=N`, `org=banked16` / `org=nonbanked4` /
    /// `org=ideal` / `org=pool8x256`, `bv=64`, `policy=po|rrl|olf`,
    /// `trigger=l1|l2`, `fpdivert`, `epoch=4096`, `memlat=100`).
    ///
    /// The `base` and `wib:w=N` heads imply their backends, so those
    /// machines serialize exactly as before the backend axis existed (the
    /// content-addressed cache digests are pinned). A delay-tracking
    /// machine uses the `wib:w=N` head (it shares that sizing) plus
    /// `backend=delay_track`; a runahead machine is its base/conv head
    /// plus `backend=runahead`.
    ///
    /// The encoding covers the preset-derived family the differential
    /// fuzzer explores ([`MachineConfig::base_8way`],
    /// [`MachineConfig::conventional`], [`MachineConfig::wib_sized`] plus
    /// the overrides above); fields mutated outside that family are not
    /// represented. [`MachineConfig::from_spec`] inverts it, which is what
    /// lets a shrunk reproducer name its machine in one header line.
    pub fn to_spec(&self) -> String {
        let (mut out, reference) = if let Backend::DelayTrack { .. } = self.backend {
            (
                format!("wib:w={}", self.active_list),
                MachineConfig::delay_track_sized(self.active_list),
            )
        } else if self.wib.is_some() {
            (
                format!("wib:w={}", self.active_list),
                MachineConfig::wib_sized(self.active_list),
            )
        } else if (self.iq_int_size, self.active_list) != (32, 128) || self.regs_per_class != 128 {
            (
                format!("conv:iq={}", self.iq_int_size),
                MachineConfig::conventional(self.iq_int_size),
            )
        } else {
            ("base".to_string(), MachineConfig::base_8way())
        };
        let mut push = |tok: String| {
            out.push(',');
            out.push_str(&tok);
        };
        match self.backend {
            // Implied by the head: emitting nothing keeps the pre-backend
            // spec (and its pinned digests) byte-identical.
            Backend::Base | Backend::Wib => {}
            Backend::Runahead { min_remaining } => {
                push("backend=runahead".to_string());
                if min_remaining != DEFAULT_RUNAHEAD_MIN_REMAINING {
                    push(format!("rathresh={min_remaining}"));
                }
            }
            Backend::DelayTrack { park_threshold } => {
                push("backend=delay_track".to_string());
                if park_threshold != DEFAULT_DELAY_PARK_THRESHOLD {
                    push(format!("dtthresh={park_threshold}"));
                }
            }
        }
        if let (Some(w), Some(rw)) = (&self.wib, &reference.wib) {
            if w.organization != rw.organization {
                let org = match w.organization {
                    WibOrganization::Banked { banks } => format!("banked{banks}"),
                    WibOrganization::NonBanked { latency } => format!("nonbanked{latency}"),
                    WibOrganization::Ideal => "ideal".to_string(),
                    WibOrganization::PoolOfBlocks {
                        block_slots,
                        blocks,
                    } => format!("pool{block_slots}x{blocks}"),
                };
                push(format!("org={org}"));
            }
            if w.max_bit_vectors != rw.max_bit_vectors {
                push(format!("bv={}", w.max_bit_vectors));
            }
            if w.policy != rw.policy {
                let p = match w.policy {
                    SelectionPolicy::ProgramOrder => "po",
                    SelectionPolicy::RoundRobinLoads => "rrl",
                    SelectionPolicy::OldestLoadFirst => "olf",
                };
                push(format!("policy={p}"));
            }
            if w.trigger != rw.trigger {
                let t = match w.trigger {
                    WibTrigger::L1Miss => "l1",
                    WibTrigger::L2Miss => "l2",
                };
                push(format!("trigger={t}"));
            }
            if w.divert_long_fp_ops {
                push("fpdivert".to_string());
            }
        }
        if self.stats_epoch != reference.stats_epoch {
            push(format!("epoch={}", self.stats_epoch));
        }
        if self.mem.mem_latency != reference.mem.mem_latency {
            push(format!("memlat={}", self.mem.mem_latency));
        }
        out
    }

    /// Stable 64-bit digest of this machine's canonical spec string,
    /// rendered as 16 lower-case hex digits.
    ///
    /// This is FNV-1a over [`MachineConfig::to_spec`] output, so two
    /// configurations share a digest exactly when they serialize to the
    /// same spec. The serving layer's content-addressed result cache and
    /// the fuzzer's reproducer headers both use it as the config half of
    /// their identity; the constants are fixed forever (see
    /// [`crate::digest`]).
    pub fn spec_digest(&self) -> String {
        crate::digest::fnv1a64_hex(self.to_spec().as_bytes())
    }

    /// Parse a spec string produced by [`MachineConfig::to_spec`] (or
    /// written by hand at the top of a repro file).
    ///
    /// # Errors
    /// Returns a description of the first malformed token, or the
    /// [`MachineConfig::validate`] failure of the resulting machine.
    pub fn from_spec(spec: &str) -> Result<MachineConfig, String> {
        fn num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
            tok.parse()
                .map_err(|_| format!("spec: bad {what} in {tok:?}"))
        }
        let mut parts = spec.trim().split(',');
        let head = parts.next().unwrap_or_default();
        let mut cfg = match head.split_once(':') {
            None if head == "base" => MachineConfig::base_8way(),
            Some(("conv", arg)) => match arg.split_once('=') {
                Some(("iq", n)) => MachineConfig::conventional(num(n, "issue queue size")?),
                _ => return Err(format!("spec: expected conv:iq=N, got {head:?}")),
            },
            Some(("wib", arg)) => match arg.split_once('=') {
                Some(("w", n)) => MachineConfig::wib_sized(num(n, "window size")?),
                _ => return Err(format!("spec: expected wib:w=N, got {head:?}")),
            },
            _ => return Err(format!("spec: unknown machine {head:?}")),
        };
        // The backend token reshapes the machine the head built (e.g.
        // delay_track strips the WIB but keeps its sizing), so resolve it
        // before the remaining overrides apply.
        let rest: Vec<&str> = parts.map(str::trim).collect();
        let mut backend_seen = false;
        for tok in &rest {
            let Some(val) = tok.strip_prefix("backend=") else {
                continue;
            };
            if backend_seen {
                return Err("spec: duplicate backend key".to_string());
            }
            backend_seen = true;
            match val {
                "base" if cfg.wib.is_none() => {}
                "wib" if cfg.wib.is_some() => {}
                "base" => {
                    return Err("spec: backend=base needs a base or conv machine".to_string());
                }
                "wib" => return Err("spec: backend=wib needs a wib:w=N machine".to_string()),
                "runahead" => {
                    if cfg.wib.is_some() {
                        return Err(
                            "spec: backend=runahead needs a base or conv machine".to_string()
                        );
                    }
                    cfg.backend = Backend::Runahead {
                        min_remaining: DEFAULT_RUNAHEAD_MIN_REMAINING,
                    };
                }
                "delay_track" => {
                    if cfg.wib.is_none() {
                        return Err(
                            "spec: backend=delay_track needs a wib:w=N machine (it borrows \
                             that sizing)"
                                .to_string(),
                        );
                    }
                    cfg.wib = None;
                    cfg.backend = Backend::DelayTrack {
                        park_threshold: DEFAULT_DELAY_PARK_THRESHOLD,
                    };
                }
                _ => {
                    return Err(format!(
                        "spec: unknown backend {val:?} (accepted: {BACKEND_VALUES})"
                    ));
                }
            }
        }
        for tok in rest {
            if tok.starts_with("backend=") {
                continue;
            }
            if tok == "fpdivert" {
                cfg.wib
                    .as_mut()
                    .ok_or("spec: fpdivert needs a WIB machine")?
                    .divert_long_fp_ops = true;
                continue;
            }
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("spec: malformed token {tok:?}"))?;
            match key {
                "epoch" => cfg.stats_epoch = num(val, "epoch")?,
                "memlat" => cfg.mem.mem_latency = num(val, "memory latency")?,
                "rathresh" => match &mut cfg.backend {
                    Backend::Runahead { min_remaining } => {
                        *min_remaining = num(val, "runahead threshold")?;
                    }
                    _ => return Err("spec: rathresh needs backend=runahead".to_string()),
                },
                "dtthresh" => match &mut cfg.backend {
                    Backend::DelayTrack { park_threshold } => {
                        *park_threshold = num(val, "park threshold")?;
                    }
                    _ => return Err("spec: dtthresh needs backend=delay_track".to_string()),
                },
                "org" | "bv" | "policy" | "trigger" => {
                    let wib = cfg
                        .wib
                        .as_mut()
                        .ok_or_else(|| format!("spec: {key} needs a WIB machine"))?;
                    match key {
                        "bv" => wib.max_bit_vectors = num(val, "bit-vector budget")?,
                        "policy" => {
                            wib.policy = match val {
                                "po" => SelectionPolicy::ProgramOrder,
                                "rrl" => SelectionPolicy::RoundRobinLoads,
                                "olf" => SelectionPolicy::OldestLoadFirst,
                                _ => return Err(format!("spec: unknown policy {val:?}")),
                            }
                        }
                        "trigger" => {
                            wib.trigger = match val {
                                "l1" => WibTrigger::L1Miss,
                                "l2" => WibTrigger::L2Miss,
                                _ => return Err(format!("spec: unknown trigger {val:?}")),
                            }
                        }
                        _ => {
                            wib.organization = if val == "ideal" {
                                WibOrganization::Ideal
                            } else if let Some(n) = val.strip_prefix("banked") {
                                WibOrganization::Banked {
                                    banks: num(n, "bank count")?,
                                }
                            } else if let Some(n) = val.strip_prefix("nonbanked") {
                                WibOrganization::NonBanked {
                                    latency: num(n, "access latency")?,
                                }
                            } else if let Some(geom) = val.strip_prefix("pool") {
                                let (s, b) = geom.split_once('x').ok_or_else(|| {
                                    format!("spec: expected poolSxB, got {val:?}")
                                })?;
                                WibOrganization::PoolOfBlocks {
                                    block_slots: num(s, "block slots")?,
                                    blocks: num(b, "block count")?,
                                }
                            } else {
                                return Err(format!("spec: unknown organization {val:?}"));
                            }
                        }
                    }
                }
                _ => return Err(format!("spec: unknown key {key:?}")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.active_list == 0 || !self.active_list.is_power_of_two() {
            return Err(format!(
                "active list must be a power of two, got {}",
                self.active_list
            ));
        }
        if self.regs_per_class < 64 {
            return Err("need at least 64 physical registers per class".to_string());
        }
        match self.backend {
            Backend::Wib if self.wib.is_none() => {
                return Err("backend=wib requires a WIB configuration".to_string());
            }
            Backend::Base | Backend::Runahead { .. } | Backend::DelayTrack { .. }
                if self.wib.is_some() =>
            {
                return Err(format!(
                    "backend={} cannot carry a WIB configuration",
                    self.backend.name()
                ));
            }
            _ => {}
        }
        if let Backend::Runahead { min_remaining } = self.backend {
            if min_remaining == 0 {
                return Err("runahead threshold must be at least one cycle".to_string());
            }
        }
        if self.stats_epoch == 0 {
            return Err("stats_epoch must be at least one cycle".to_string());
        }
        if let RegFileConfig::TwoLevel { l1_regs, .. } = self.regfile {
            if l1_regs == 0 {
                return Err("two-level register file needs a nonzero L1".to_string());
            }
        }
        if let Some(wib) = &self.wib {
            if wib.max_bit_vectors == 0 {
                return Err("WIB needs at least one bit-vector".to_string());
            }
            match wib.organization {
                WibOrganization::Banked { banks }
                    if (banks == 0 || !self.active_list.is_multiple_of(banks)) =>
                {
                    return Err(format!(
                        "WIB banks ({banks}) must divide the active list ({})",
                        self.active_list
                    ));
                }
                WibOrganization::PoolOfBlocks {
                    block_slots,
                    blocks,
                } if (block_slots == 0 || blocks == 0) => {
                    return Err("pool-of-blocks WIB needs nonzero geometry".to_string());
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        MachineConfig::base_8way().validate().unwrap();
        MachineConfig::wib_2k().validate().unwrap();
        for iq in [32, 64, 128, 256, 512, 1024, 2048, 4096] {
            MachineConfig::conventional(iq).validate().unwrap();
        }
        for w in [128, 256, 512, 1024, 2048] {
            MachineConfig::wib_sized(w).validate().unwrap();
        }
    }

    #[test]
    fn limit_study_scaling_rules() {
        let small = MachineConfig::conventional(64);
        assert_eq!(small.active_list, 128);
        assert_eq!(small.load_queue, 64);
        let big = MachineConfig::conventional(1024);
        assert_eq!(big.active_list, 1024);
        assert_eq!(big.regs_per_class, 1024);
        assert_eq!(big.load_queue, 512);
    }

    #[test]
    fn wib_preset_matches_paper() {
        let cfg = MachineConfig::wib_2k();
        assert_eq!(cfg.active_list, 2048);
        assert_eq!(cfg.iq_int_size, 32);
        assert_eq!(cfg.load_queue, 1024);
        assert_eq!(cfg.regfile, RegFileConfig::two_level_128());
        let wib = cfg.wib.unwrap();
        assert_eq!(wib.organization, WibOrganization::Banked { banks: 16 });
        assert_eq!(wib.max_bit_vectors, 1024);
    }

    #[test]
    fn builders_modify_wib() {
        let cfg = MachineConfig::wib_2k().with_bit_vectors(16);
        assert_eq!(cfg.wib.as_ref().unwrap().max_bit_vectors, 16);
        let cfg = cfg.with_wib_organization(WibOrganization::NonBanked { latency: 4 });
        assert_eq!(
            cfg.wib.as_ref().unwrap().organization,
            WibOrganization::NonBanked { latency: 4 }
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = MachineConfig::base_8way();
        cfg.active_list = 100; // not a power of two
        assert!(cfg.validate().is_err());
        let cfg = MachineConfig::wib_2k().with_bit_vectors(0);
        assert!(cfg.validate().is_err());
        let mut cfg = MachineConfig::wib_2k();
        cfg.wib.as_mut().unwrap().organization = WibOrganization::Banked { banks: 24 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn memory_latency_override() {
        let cfg = MachineConfig::base_8way().with_memory_latency(100);
        assert_eq!(cfg.mem.mem_latency, 100);
    }

    #[test]
    fn spec_round_trips_the_fuzzed_family() {
        let samples = [
            MachineConfig::base_8way(),
            MachineConfig::conventional(256),
            MachineConfig::conventional(2048),
            MachineConfig::wib_2k(),
            MachineConfig::wib_sized(512),
            MachineConfig::wib_sized(256).with_bit_vectors(8),
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::NonBanked { latency: 4 }),
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::RoundRobinLoads),
            MachineConfig::wib_2k()
                .with_wib_organization(WibOrganization::Ideal)
                .with_wib_policy(SelectionPolicy::OldestLoadFirst),
            MachineConfig::wib_pool(8, 256),
            MachineConfig::wib_2k().with_long_fp_divert(),
            MachineConfig::wib_sized(1024)
                .with_memory_latency(100)
                .with_stats_epoch(4096),
        ];
        for cfg in samples {
            let spec = cfg.to_spec();
            let parsed = MachineConfig::from_spec(&spec).unwrap_or_else(|e| {
                panic!("spec {spec:?} failed to parse: {e}");
            });
            assert_eq!(parsed, cfg, "round trip through {spec:?}");
            // The canonical form is a fixed point.
            assert_eq!(parsed.to_spec(), spec);
        }
    }

    #[test]
    fn spec_parses_handwritten_forms() {
        let cfg = MachineConfig::from_spec("wib:w=256,org=pool4x64,bv=16").unwrap();
        assert_eq!(cfg.active_list, 256);
        assert_eq!(cfg.wib.as_ref().unwrap().max_bit_vectors, 16);
        assert_eq!(
            cfg.wib.as_ref().unwrap().organization,
            WibOrganization::PoolOfBlocks {
                block_slots: 4,
                blocks: 64
            }
        );
        // Whitespace around tokens is tolerated.
        MachineConfig::from_spec(" wib:w=128, org=ideal, policy=rrl ").unwrap();
    }

    #[test]
    fn spec_digest_is_stable_and_round_trips() {
        // The digest is FNV-1a of the canonical spec, so it must survive
        // a serialize/parse round trip and differ across configs.
        let wib = MachineConfig::wib_2k();
        let reparsed = MachineConfig::from_spec(&wib.to_spec()).unwrap();
        assert_eq!(wib.spec_digest(), reparsed.spec_digest());
        assert_ne!(wib.spec_digest(), MachineConfig::base_8way().spec_digest());
        assert_ne!(
            MachineConfig::wib_sized(512).spec_digest(),
            MachineConfig::wib_sized(1024).spec_digest()
        );
        // Pinned values: these digests name on-disk cache entries, so a
        // change here is a cache-format break, not a refactor.
        assert_eq!(wib.spec_digest(), crate::digest::fnv1a64_hex(b"wib:w=2048"));
        assert_eq!(
            MachineConfig::base_8way().spec_digest(),
            crate::digest::fnv1a64_hex(b"base")
        );
        assert_eq!(wib.spec_digest().len(), 16);
    }

    #[test]
    fn backend_presets_are_valid_and_round_trip() {
        let samples = [
            MachineConfig::runahead_8way(),
            MachineConfig::delay_track_2k(),
            MachineConfig::delay_track_sized(512),
            {
                let mut cfg = MachineConfig::runahead_8way().with_memory_latency(500);
                cfg.backend = Backend::Runahead { min_remaining: 64 };
                cfg
            },
            {
                let mut cfg = MachineConfig::conventional(256);
                cfg.backend = Backend::Runahead {
                    min_remaining: DEFAULT_RUNAHEAD_MIN_REMAINING,
                };
                cfg
            },
            {
                let mut cfg = MachineConfig::delay_track_sized(1024).with_stats_epoch(4096);
                cfg.backend = Backend::DelayTrack { park_threshold: 20 };
                cfg
            },
        ];
        for cfg in samples {
            cfg.validate().unwrap();
            let spec = cfg.to_spec();
            let parsed = MachineConfig::from_spec(&spec).unwrap_or_else(|e| {
                panic!("spec {spec:?} failed to parse: {e}");
            });
            assert_eq!(parsed, cfg, "round trip through {spec:?}");
            assert_eq!(parsed.to_spec(), spec);
        }
        assert_eq!(
            MachineConfig::runahead_8way().to_spec(),
            "base,backend=runahead"
        );
        assert_eq!(
            MachineConfig::delay_track_2k().to_spec(),
            "wib:w=2048,backend=delay_track"
        );
    }

    #[test]
    fn spec_digest_differs_when_only_the_backend_differs() {
        // The content-addressed result cache keys on spec_digest(), so a
        // runahead result must never be served for a WIB job (and so on):
        // machines identical except for the backend need distinct digests.
        let base = MachineConfig::base_8way();
        let runahead = MachineConfig::runahead_8way();
        assert_eq!(
            (base.active_list, base.iq_int_size, base.mem.mem_latency),
            (
                runahead.active_list,
                runahead.iq_int_size,
                runahead.mem.mem_latency
            )
        );
        let wib = MachineConfig::wib_2k();
        let delay = MachineConfig::delay_track_2k();
        assert_eq!(
            (wib.active_list, wib.load_queue, wib.regs_per_class),
            (delay.active_list, delay.load_queue, delay.regs_per_class)
        );
        let digests = [
            base.spec_digest(),
            runahead.spec_digest(),
            wib.spec_digest(),
            delay.spec_digest(),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b, "backend change must change the digest");
            }
        }
        // Threshold knobs are part of the identity too.
        let mut tuned = MachineConfig::runahead_8way();
        tuned.backend = Backend::Runahead { min_remaining: 64 };
        assert_ne!(tuned.spec_digest(), runahead.spec_digest());
        // And the legacy machines still digest exactly as before the
        // backend axis existed (pinned cache format).
        assert_eq!(base.spec_digest(), crate::digest::fnv1a64_hex(b"base"));
        assert_eq!(wib.spec_digest(), crate::digest::fnv1a64_hex(b"wib:w=2048"));
    }

    #[test]
    fn unknown_backend_names_the_accepted_values() {
        let err = MachineConfig::from_spec("base,backend=turbo").unwrap_err();
        assert!(
            err.contains("accepted: base, wib, runahead, delay_track"),
            "error should name the accepted backends, got: {err}"
        );
    }

    #[test]
    fn backend_spec_rejects_inconsistent_forms() {
        for bad in [
            "base,backend=wib",                       // wib backend needs a wib head
            "wib:w=2048,backend=base",                // and vice versa
            "wib:w=2048,backend=runahead",            // runahead is a base/conv machine
            "base,backend=delay_track",               // delay_track borrows wib sizing
            "base,backend=runahead,backend=runahead", // duplicate key
            "base,rathresh=16",                       // threshold without its backend
            "wib:w=2048,dtthresh=4",
            "base,backend=runahead,dtthresh=4",
            "wib:w=2048,backend=delay_track,org=ideal", // org needs a live WIB
            "base,backend=runahead,rathresh=0",         // validate(): zero threshold
        ] {
            assert!(
                MachineConfig::from_spec(bad).is_err(),
                "spec {bad:?} should be rejected"
            );
        }
        // backend=base / backend=wib are accepted as explicit no-ops on
        // matching heads (they normalize away in the canonical form).
        let cfg = MachineConfig::from_spec("base,backend=base").unwrap();
        assert_eq!(cfg, MachineConfig::base_8way());
        assert_eq!(cfg.to_spec(), "base");
        let cfg = MachineConfig::from_spec("wib:w=2048,backend=wib").unwrap();
        assert_eq!(cfg, MachineConfig::wib_2k());
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "",
            "bogus",
            "conv:iq=",
            "wib:w=abc",
            "base,org=banked16",       // org needs a WIB machine
            "wib:w=2048,org=banked24", // banks must divide the window
            "wib:w=2048,policy=zigzag",
            "wib:w=2048,unknown=1",
            "wib:w=100", // not a power of two
        ] {
            assert!(
                MachineConfig::from_spec(bad).is_err(),
                "spec {bad:?} should be rejected"
            );
        }
    }
}
