//! Structured pipeline event stream.
//!
//! The engine can emit a typed event at every pipeline milestone — fetch,
//! dispatch, issue, WIB insert/extract (with the bank), completion,
//! commit, squash, and the start/finish of cache misses (including MSHR
//! merges). Consumers implement [`EventSink`]; the engine holds an
//! `Option<&mut dyn EventSink>` and the emission path is a single
//! `is_some` test when no sink is installed, so observability is free
//! when disabled.
//!
//! Three sinks are provided:
//! - [`CountingSink`] — per-kind (and per-WIB-bank) counters, cheap
//!   enough for full-length runs and cross-checkable against
//!   [`crate::SimStats`];
//! - [`BoundedSink`] — an in-memory ring that keeps the most recent
//!   `capacity` events, for post-mortem inspection;
//! - [`TextSink`] — a pipeview-style text log (one line per event,
//!   cycle-stamped), the `--events <path>` format of the CLI.

use crate::json::Json;
use std::collections::VecDeque;
use std::fmt::Write as _;
use wib_isa::inst::Inst;

/// One pipeline event. All payloads are `Copy` so emission never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipeEvent {
    /// An instruction word was fetched.
    Fetch {
        /// Fetch PC.
        pc: u32,
    },
    /// An instruction was renamed and entered the active list.
    Dispatch {
        /// Dynamic sequence number.
        seq: u64,
        /// Fetch PC.
        pc: u32,
        /// The decoded instruction (disassemble via `Display`).
        inst: Inst,
    },
    /// An instruction was selected and sent to a functional unit.
    Issue {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A pretend-ready instruction was parked in the WIB.
    WibInsert {
        /// Dynamic sequence number.
        seq: u64,
        /// WIB bank (0 for non-banked organizations).
        bank: u32,
    },
    /// A parked instruction was reinserted into its issue queue.
    WibExtract {
        /// Dynamic sequence number.
        seq: u64,
        /// WIB bank (0 for non-banked organizations).
        bank: u32,
    },
    /// An instruction produced its result.
    Complete {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// An instruction retired architecturally.
    Commit {
        /// Dynamic sequence number.
        seq: u64,
        /// Fetch PC.
        pc: u32,
    },
    /// Every instruction with `seq >= from_seq` was squashed.
    Squash {
        /// First squashed sequence number.
        from_seq: u64,
        /// How many in-flight instructions were removed.
        count: u64,
    },
    /// A load's data is not in the L1D: a miss begins.
    MissStart {
        /// The load's sequence number.
        seq: u64,
        /// Effective address.
        addr: u32,
        /// True when the line comes from DRAM (L2 miss), false for an L2
        /// hit.
        to_dram: bool,
    },
    /// A missed load's data arrived.
    MissFinish {
        /// The load's sequence number.
        seq: u64,
    },
    /// A miss merged into an already outstanding line fill (MSHR hit).
    MshrMerge {
        /// Effective address.
        addr: u32,
    },
}

/// The event kinds, for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// [`PipeEvent::Fetch`].
    Fetch,
    /// [`PipeEvent::Dispatch`].
    Dispatch,
    /// [`PipeEvent::Issue`].
    Issue,
    /// [`PipeEvent::WibInsert`].
    WibInsert,
    /// [`PipeEvent::WibExtract`].
    WibExtract,
    /// [`PipeEvent::Complete`].
    Complete,
    /// [`PipeEvent::Commit`].
    Commit,
    /// [`PipeEvent::Squash`].
    Squash,
    /// [`PipeEvent::MissStart`].
    MissStart,
    /// [`PipeEvent::MissFinish`].
    MissFinish,
    /// [`PipeEvent::MshrMerge`].
    MshrMerge,
}

/// All event kinds, in declaration order.
pub const EVENT_KINDS: [EventKind; 11] = [
    EventKind::Fetch,
    EventKind::Dispatch,
    EventKind::Issue,
    EventKind::WibInsert,
    EventKind::WibExtract,
    EventKind::Complete,
    EventKind::Commit,
    EventKind::Squash,
    EventKind::MissStart,
    EventKind::MissFinish,
    EventKind::MshrMerge,
];

impl EventKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fetch => "fetch",
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::WibInsert => "wib_insert",
            EventKind::WibExtract => "wib_extract",
            EventKind::Complete => "complete",
            EventKind::Commit => "commit",
            EventKind::Squash => "squash",
            EventKind::MissStart => "miss_start",
            EventKind::MissFinish => "miss_finish",
            EventKind::MshrMerge => "mshr_merge",
        }
    }
}

impl PipeEvent {
    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            PipeEvent::Fetch { .. } => EventKind::Fetch,
            PipeEvent::Dispatch { .. } => EventKind::Dispatch,
            PipeEvent::Issue { .. } => EventKind::Issue,
            PipeEvent::WibInsert { .. } => EventKind::WibInsert,
            PipeEvent::WibExtract { .. } => EventKind::WibExtract,
            PipeEvent::Complete { .. } => EventKind::Complete,
            PipeEvent::Commit { .. } => EventKind::Commit,
            PipeEvent::Squash { .. } => EventKind::Squash,
            PipeEvent::MissStart { .. } => EventKind::MissStart,
            PipeEvent::MissFinish { .. } => EventKind::MissFinish,
            PipeEvent::MshrMerge { .. } => EventKind::MshrMerge,
        }
    }
}

/// A consumer of the pipeline event stream.
pub trait EventSink {
    /// Called once per event, with the cycle it occurred in.
    fn emit(&mut self, cycle: u64, ev: &PipeEvent);
}

/// Counts events per kind, and WIB traffic per bank.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    counts: [u64; EVENT_KINDS.len()],
    /// Per-bank WIB insertions (grown on demand).
    bank_inserts: Vec<u64>,
    /// Per-bank WIB extractions (grown on demand).
    bank_extracts: Vec<u64>,
}

impl CountingSink {
    /// An empty counter set.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Events of `kind` seen so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Per-bank WIB insertion counts.
    pub fn bank_inserts(&self) -> &[u64] {
        &self.bank_inserts
    }

    /// Per-bank WIB extraction counts.
    pub fn bank_extracts(&self) -> &[u64] {
        &self.bank_extracts
    }

    /// Ordered `{kind: count}` object plus per-bank WIB traffic.
    pub fn to_json(&self) -> Json {
        let mut counts = Json::obj();
        for kind in EVENT_KINDS {
            counts.set(kind.name(), self.count(kind));
        }
        Json::obj()
            .field("counts", counts)
            .field(
                "wib_bank_inserts",
                Json::Arr(self.bank_inserts.iter().map(|&n| Json::U64(n)).collect()),
            )
            .field(
                "wib_bank_extracts",
                Json::Arr(self.bank_extracts.iter().map(|&n| Json::U64(n)).collect()),
            )
    }
}

fn bump_bank(v: &mut Vec<u64>, bank: u32) {
    let i = bank as usize;
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

impl EventSink for CountingSink {
    fn emit(&mut self, _cycle: u64, ev: &PipeEvent) {
        self.counts[ev.kind() as usize] += 1;
        match *ev {
            PipeEvent::WibInsert { bank, .. } => bump_bank(&mut self.bank_inserts, bank),
            PipeEvent::WibExtract { bank, .. } => bump_bank(&mut self.bank_extracts, bank),
            _ => {}
        }
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug, Clone)]
pub struct BoundedSink {
    events: VecDeque<(u64, PipeEvent)>,
    capacity: usize,
    dropped: u64,
}

impl BoundedSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> BoundedSink {
        BoundedSink {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// The retained `(cycle, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, PipeEvent)> {
        self.events.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for BoundedSink {
    fn emit(&mut self, cycle: u64, ev: &PipeEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((cycle, *ev));
    }
}

/// Renders one event as a pipeview-style text line (no trailing newline).
pub fn format_event(cycle: u64, ev: &PipeEvent) -> String {
    match *ev {
        PipeEvent::Fetch { pc } => format!("{cycle:>10} F  pc={pc:#010x}"),
        PipeEvent::Dispatch { seq, pc, inst } => {
            format!("{cycle:>10} D  seq={seq} pc={pc:#010x} {inst}")
        }
        PipeEvent::Issue { seq } => format!("{cycle:>10} I  seq={seq}"),
        PipeEvent::WibInsert { seq, bank } => {
            format!("{cycle:>10} W+ seq={seq} bank={bank}")
        }
        PipeEvent::WibExtract { seq, bank } => {
            format!("{cycle:>10} W- seq={seq} bank={bank}")
        }
        PipeEvent::Complete { seq } => format!("{cycle:>10} C  seq={seq}"),
        PipeEvent::Commit { seq, pc } => format!("{cycle:>10} R  seq={seq} pc={pc:#010x}"),
        PipeEvent::Squash { from_seq, count } => {
            format!("{cycle:>10} X  from={from_seq} count={count}")
        }
        PipeEvent::MissStart { seq, addr, to_dram } => format!(
            "{cycle:>10} M+ seq={seq} addr={addr:#010x} {}",
            if to_dram { "dram" } else { "l2" }
        ),
        PipeEvent::MissFinish { seq } => format!("{cycle:>10} M- seq={seq}"),
        PipeEvent::MshrMerge { addr } => format!("{cycle:>10} M= addr={addr:#010x}"),
    }
}

/// Accumulates a pipeview-style text log, bounded by a line budget so a
/// long run cannot exhaust memory (lines past the budget are counted,
/// not stored).
#[derive(Debug, Clone)]
pub struct TextSink {
    text: String,
    lines: u64,
    max_lines: u64,
}

impl TextSink {
    /// A log keeping at most `max_lines` lines.
    pub fn new(max_lines: u64) -> TextSink {
        let mut text = String::new();
        let _ = writeln!(text, "# wib-sim pipeline events v1");
        let _ = writeln!(
            text,
            "# cycle kind args   (F fetch, D dispatch, I issue, W+/W- WIB insert/extract, \
             C complete, R retire, X squash, M+/M-/M= miss start/finish/merge)"
        );
        TextSink {
            text,
            lines: 0,
            max_lines,
        }
    }

    /// The rendered log. A final comment reports truncation, if any.
    pub fn into_text(mut self) -> String {
        if self.lines > self.max_lines {
            let _ = writeln!(
                self.text,
                "# truncated: {} further events not shown",
                self.lines - self.max_lines
            );
        }
        self.text
    }

    /// Events seen (stored or not).
    pub fn events_seen(&self) -> u64 {
        self.lines
    }
}

impl EventSink for TextSink {
    fn emit(&mut self, cycle: u64, ev: &PipeEvent) {
        self.lines += 1;
        if self.lines <= self.max_lines {
            let _ = writeln!(self.text, "{}", format_event(cycle, ev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts_by_kind_and_bank() {
        let mut s = CountingSink::new();
        s.emit(1, &PipeEvent::Fetch { pc: 0x1000 });
        s.emit(2, &PipeEvent::WibInsert { seq: 1, bank: 3 });
        s.emit(3, &PipeEvent::WibInsert { seq: 2, bank: 3 });
        s.emit(4, &PipeEvent::WibExtract { seq: 1, bank: 0 });
        assert_eq!(s.count(EventKind::Fetch), 1);
        assert_eq!(s.count(EventKind::WibInsert), 2);
        assert_eq!(s.count(EventKind::Commit), 0);
        assert_eq!(s.bank_inserts(), &[0, 0, 0, 2]);
        assert_eq!(s.bank_extracts(), &[1]);
        let j = s.to_json();
        assert_eq!(
            j.get("counts").unwrap().get("wib_insert"),
            Some(&Json::U64(2))
        );
    }

    #[test]
    fn bounded_sink_keeps_the_last_n() {
        let mut s = BoundedSink::new(2);
        for seq in 0..5u64 {
            s.emit(seq, &PipeEvent::Issue { seq });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let seqs: Vec<u64> = s.events().map(|(c, _)| *c).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn text_sink_formats_and_truncates() {
        let mut s = TextSink::new(2);
        s.emit(10, &PipeEvent::Issue { seq: 7 });
        s.emit(
            11,
            &PipeEvent::MissStart {
                seq: 7,
                addr: 0x80,
                to_dram: true,
            },
        );
        s.emit(12, &PipeEvent::Issue { seq: 8 });
        assert_eq!(s.events_seen(), 3);
        let text = s.into_text();
        assert!(text.contains("I  seq=7"), "{text}");
        assert!(text.contains("dram"), "{text}");
        assert!(!text.contains("seq=8"), "{text}");
        assert!(text.contains("truncated: 1"), "{text}");
    }
}
