//! Event-driven issue queue with wakeup-select and WIB pretend-ready
//! support.
//!
//! Entries do not poll their operands: the processor subscribes pending
//! operands to the producing physical register and calls
//! [`IssueQueue::satisfy`] when the register becomes ready (true wakeup)
//! or gains a wait bit (pretend-ready wakeup, which routes the consumer to
//! the WIB). Entries whose operands are all satisfied sit in an age-ordered
//! ready set that select logic walks oldest-first.

use crate::types::{PhysReg, Seq, SrcRef};
use std::collections::{BTreeSet, HashMap};
use wib_isa::reg::RegClass;

/// Per-operand wakeup status inside the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcStatus {
    /// Value available.
    Ready,
    /// Producer chain hangs off an outstanding load miss (wait bit):
    /// satisfied for *pretend-ready* selection.
    Wait,
    /// Still waiting for a broadcast.
    Pending,
}

/// One issue-queue entry.
#[derive(Debug, Clone)]
pub struct IqEntry {
    /// Source operands (None = no operand in that slot).
    pub srcs: [Option<(SrcRef, SrcStatus)>; 2],
    pending: u8,
}

impl IqEntry {
    /// Build an entry from operand references and initial statuses.
    pub fn new(srcs: [Option<(SrcRef, SrcStatus)>; 2]) -> IqEntry {
        let pending = srcs
            .iter()
            .flatten()
            .filter(|(_, s)| *s == SrcStatus::Pending)
            .count() as u8;
        IqEntry { srcs, pending }
    }

    /// True when no operand is still pending.
    pub fn is_satisfied(&self) -> bool {
        self.pending == 0
    }

    /// True when satisfied and at least one operand rides a wait bit.
    pub fn is_pretend(&self) -> bool {
        self.is_satisfied()
            && self
                .srcs
                .iter()
                .flatten()
                .any(|(_, s)| *s == SrcStatus::Wait)
    }
}

/// An age-ordered issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    entries: HashMap<Seq, IqEntry>,
    ready: BTreeSet<Seq>,
}

impl IssueQueue {
    /// An empty queue with `capacity` entries.
    pub fn new(capacity: usize) -> IssueQueue {
        IssueQueue {
            capacity,
            entries: HashMap::new(),
            ready: BTreeSet::new(),
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no instructions are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots (0 when at or beyond nominal capacity — the queue can
    /// briefly hold one overflow entry, see [`IssueQueue::insert_overflow`]).
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.entries.len())
    }

    /// True if an instruction with this sequence number is resident.
    pub fn contains(&self, seq: Seq) -> bool {
        self.entries.contains_key(&seq)
    }

    /// Insert a dispatched (or WIB-reinserted) instruction.
    ///
    /// # Panics
    /// Panics if the queue is full or `seq` is already present.
    pub fn insert(&mut self, seq: Seq, entry: IqEntry) {
        assert!(self.entries.len() < self.capacity, "issue queue overflow");
        self.insert_unchecked(seq, entry);
    }

    /// Insert past nominal capacity (at most one extra entry). Reserved
    /// for the forward-progress guarantee: the oldest in-flight
    /// instruction can always reenter the queue from the WIB — all its
    /// elders have committed, so it issues (and frees the slot) at once.
    ///
    /// # Panics
    /// Panics if the queue already holds an overflow entry or `seq` is
    /// already present.
    pub fn insert_overflow(&mut self, seq: Seq, entry: IqEntry) {
        assert!(self.entries.len() <= self.capacity, "double overflow");
        self.insert_unchecked(seq, entry);
    }

    fn insert_unchecked(&mut self, seq: Seq, entry: IqEntry) {
        if entry.is_satisfied() {
            self.ready.insert(seq);
        }
        let prev = self.entries.insert(seq, entry);
        assert!(prev.is_none(), "duplicate issue-queue entry {seq}");
    }

    /// Wake operand `preg` of instruction `seq`: a broadcast arrived
    /// (`status` = `Ready`) or the producer moved to the WIB
    /// (`status` = `Wait`). Returns true if the instruction was found.
    pub fn satisfy(&mut self, seq: Seq, preg: PhysReg, class: RegClass, status: SrcStatus) -> bool {
        let Some(entry) = self.entries.get_mut(&seq) else {
            return false;
        };
        let mut hit = false;
        for src in entry.srcs.iter_mut().flatten() {
            if src.0.preg == preg && src.0.class == class && src.1 == SrcStatus::Pending {
                src.1 = status;
                entry.pending -= 1;
                hit = true;
            }
        }
        if hit && entry.pending == 0 {
            self.ready.insert(seq);
        }
        hit
    }

    /// Ready instructions, oldest first.
    pub fn ready_seqs(&self) -> impl Iterator<Item = Seq> + '_ {
        self.ready.iter().copied()
    }

    /// Immutable view of an entry.
    pub fn entry(&self, seq: Seq) -> Option<&IqEntry> {
        self.entries.get(&seq)
    }

    /// Remove an instruction (issued, moved to the WIB, or squashed).
    /// Returns its entry if present.
    pub fn remove(&mut self, seq: Seq) -> Option<IqEntry> {
        self.ready.remove(&seq);
        self.entries.remove(&seq)
    }

    /// Diagnostic: snapshot of every entry, oldest first.
    #[doc(hidden)]
    pub fn dump(&self) -> Vec<(Seq, IqEntry)> {
        let mut v: Vec<_> = self.entries.iter().map(|(s, e)| (*s, e.clone())).collect();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Demote an operand that validation found neither ready nor waiting
    /// (its producer was reinserted from the WIB and has not executed
    /// yet). The entry leaves the ready set; the caller must re-subscribe
    /// it to the producing register.
    pub fn demote(&mut self, seq: Seq, preg: PhysReg, class: RegClass) {
        if let Some(entry) = self.entries.get_mut(&seq) {
            for src in entry.srcs.iter_mut().flatten() {
                if src.0.preg == preg && src.0.class == class && src.1 != SrcStatus::Pending {
                    src.1 = SrcStatus::Pending;
                    entry.pending += 1;
                }
            }
            if entry.pending > 0 {
                self.ready.remove(&seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(p: u16) -> SrcRef {
        SrcRef {
            class: RegClass::Int,
            preg: PhysReg(p),
        }
    }

    #[test]
    fn ready_on_insert_when_satisfied() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(5), SrcStatus::Ready)), None]));
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn wakeup_ordering_is_by_age() {
        let mut q = IssueQueue::new(4);
        q.insert(9, IqEntry::new([Some((src(1), SrcStatus::Pending)), None]));
        q.insert(3, IqEntry::new([Some((src(1), SrcStatus::Pending)), None]));
        assert!(q.ready_seqs().next().is_none());
        assert!(q.satisfy(9, PhysReg(1), RegClass::Int, SrcStatus::Ready));
        assert!(q.satisfy(3, PhysReg(1), RegClass::Int, SrcStatus::Ready));
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn both_operands_must_arrive() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(1), SrcStatus::Pending)),
                Some((src(2), SrcStatus::Pending)),
            ]),
        );
        q.satisfy(1, PhysReg(1), RegClass::Int, SrcStatus::Ready);
        assert!(q.ready_seqs().next().is_none());
        q.satisfy(1, PhysReg(2), RegClass::Int, SrcStatus::Ready);
        assert_eq!(q.ready_seqs().count(), 1);
    }

    #[test]
    fn pretend_ready_via_wait() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(1), SrcStatus::Ready)),
                Some((src(2), SrcStatus::Pending)),
            ]),
        );
        q.satisfy(1, PhysReg(2), RegClass::Int, SrcStatus::Wait);
        let e = q.entry(1).unwrap();
        assert!(e.is_satisfied() && e.is_pretend());
    }

    #[test]
    fn same_register_both_operands() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(7), SrcStatus::Pending)),
                Some((src(7), SrcStatus::Pending)),
            ]),
        );
        // One broadcast satisfies both.
        q.satisfy(1, PhysReg(7), RegClass::Int, SrcStatus::Ready);
        assert!(q.entry(1).unwrap().is_satisfied());
    }

    #[test]
    fn class_mismatch_is_not_satisfied() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(7), SrcStatus::Pending)), None]));
        assert!(!q.satisfy(1, PhysReg(7), RegClass::Fp, SrcStatus::Ready));
        assert!(!q.entry(1).unwrap().is_satisfied());
    }

    #[test]
    fn demote_returns_to_pending() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(7), SrcStatus::Wait)), None]));
        assert_eq!(q.ready_seqs().count(), 1);
        q.demote(1, PhysReg(7), RegClass::Int);
        assert_eq!(q.ready_seqs().count(), 0);
        q.satisfy(1, PhysReg(7), RegClass::Int, SrcStatus::Ready);
        assert_eq!(q.ready_seqs().count(), 1);
    }

    #[test]
    fn capacity_and_removal() {
        let mut q = IssueQueue::new(2);
        q.insert(1, IqEntry::new([None, None]));
        q.insert(2, IqEntry::new([None, None]));
        assert_eq!(q.free_slots(), 0);
        assert!(q.remove(1).is_some());
        assert!(q.remove(1).is_none());
        assert_eq!(q.free_slots(), 1);
        assert!(q.contains(2) && !q.contains(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = IssueQueue::new(1);
        q.insert(1, IqEntry::new([None, None]));
        q.insert(2, IqEntry::new([None, None]));
    }
}
