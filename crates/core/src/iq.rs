//! Event-driven issue queue with wakeup-select and WIB pretend-ready
//! support.
//!
//! Entries do not poll their operands: the processor subscribes pending
//! operands to the producing physical register and calls
//! [`IssueQueue::satisfy`] when the register becomes ready (true wakeup)
//! or gains a wait bit (pretend-ready wakeup, which routes the consumer to
//! the WIB). Entries whose operands are all satisfied sit in an age-ordered
//! ready set that select logic walks oldest-first.
//!
//! # Storage
//!
//! The queue is a fixed-capacity **slot arena**: entries live in
//! pre-allocated slots handed out from a free list, a fixed-size
//! open-addressing table maps sequence numbers to slots, and the ready set
//! is an intrusive doubly-linked list threaded through the slots in age
//! (sequence-number) order. After construction no operation allocates, so
//! the per-cycle wakeup/select loop is allocation-free in steady state
//! (see `docs/perf.md`); the selection semantics — oldest satisfied entry
//! first — are identical to the original map + ordered-set implementation.

use crate::types::{PhysReg, Seq, SrcRef};
use wib_isa::reg::RegClass;

/// Per-operand wakeup status inside the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcStatus {
    /// Value available.
    Ready,
    /// Producer chain hangs off an outstanding load miss (wait bit):
    /// satisfied for *pretend-ready* selection.
    Wait,
    /// Still waiting for a broadcast.
    Pending,
}

/// One issue-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct IqEntry {
    /// Source operands (None = no operand in that slot).
    pub srcs: [Option<(SrcRef, SrcStatus)>; 2],
    pending: u8,
}

impl IqEntry {
    /// Build an entry from operand references and initial statuses.
    pub fn new(srcs: [Option<(SrcRef, SrcStatus)>; 2]) -> IqEntry {
        let pending = srcs
            .iter()
            .flatten()
            .filter(|(_, s)| *s == SrcStatus::Pending)
            .count() as u8;
        IqEntry { srcs, pending }
    }

    /// True when no operand is still pending.
    pub fn is_satisfied(&self) -> bool {
        self.pending == 0
    }

    /// True when satisfied and at least one operand rides a wait bit.
    pub fn is_pretend(&self) -> bool {
        self.is_satisfied()
            && self
                .srcs
                .iter()
                .flatten()
                .any(|(_, s)| *s == SrcStatus::Wait)
    }
}

/// Sentinel for "no slot" in the intrusive links and the index table.
const NIL: u32 = u32::MAX;

/// One arena slot: the entry plus its intrusive ready-list links.
#[derive(Debug, Clone)]
struct Slot {
    seq: Seq,
    entry: IqEntry,
    ready_prev: u32,
    ready_next: u32,
    ready: bool,
    occupied: bool,
}

impl Slot {
    fn vacant() -> Slot {
        Slot {
            seq: 0,
            entry: IqEntry::new([None, None]),
            ready_prev: NIL,
            ready_next: NIL,
            ready: false,
            occupied: false,
        }
    }
}

/// Fixed-size open-addressing `Seq -> slot` map: linear probing with
/// backward-shift deletion (no tombstones), sized to at most 50% load so
/// probe chains stay short. Never allocates after construction.
#[derive(Debug, Clone)]
struct SeqIndex {
    /// `(seq, slot)`; `slot == NIL` marks an empty cell.
    table: Vec<(Seq, u32)>,
    mask: usize,
}

impl SeqIndex {
    fn new(slots: usize) -> SeqIndex {
        let size = (slots * 2).next_power_of_two().max(8);
        SeqIndex {
            table: vec![(0, NIL); size],
            mask: size - 1,
        }
    }

    #[inline]
    fn home(&self, seq: Seq) -> usize {
        // Fibonacci hashing: multiply spreads consecutive seqs, the high
        // bits feed the table index.
        (seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    fn insert(&mut self, seq: Seq, slot: u32) {
        let mut i = self.home(seq);
        while self.table[i].1 != NIL {
            debug_assert_ne!(self.table[i].0, seq, "duplicate key {seq}");
            i = (i + 1) & self.mask;
        }
        self.table[i] = (seq, slot);
    }

    fn get(&self, seq: Seq) -> Option<u32> {
        let mut i = self.home(seq);
        loop {
            let (s, slot) = self.table[i];
            if slot == NIL {
                return None;
            }
            if s == seq {
                return Some(slot);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, seq: Seq) -> Option<u32> {
        let mut i = self.home(seq);
        loop {
            let (s, slot) = self.table[i];
            if slot == NIL {
                return None;
            }
            if s == seq {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.table[i].1;
        // Backward-shift deletion: pull displaced entries into the hole so
        // every probe chain stays contiguous.
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.table[j].1 == NIL {
                break;
            }
            let k = self.home(self.table[j].0);
            // Move `j` into the hole unless its home lies cyclically in
            // (i, j] — in that case the entry is already on its shortest
            // reachable position.
            let stuck = if j > i {
                k > i && k <= j
            } else {
                k > i || k <= j
            };
            if !stuck {
                self.table[i] = self.table[j];
                i = j;
            }
        }
        self.table[i].1 = NIL;
        Some(removed)
    }
}

/// An age-ordered issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    len: usize,
    /// `capacity + 1` slots: one extra for the overflow entry.
    slots: Vec<Slot>,
    free: Vec<u32>,
    index: SeqIndex,
    ready_head: u32,
    ready_tail: u32,
}

impl IssueQueue {
    /// An empty queue with `capacity` entries.
    pub fn new(capacity: usize) -> IssueQueue {
        let arena = capacity + 1; // one overflow slot
        IssueQueue {
            capacity,
            len: 0,
            slots: vec![Slot::vacant(); arena],
            free: (0..arena as u32).rev().collect(),
            index: SeqIndex::new(arena),
            ready_head: NIL,
            ready_tail: NIL,
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no instructions are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots (0 when at or beyond nominal capacity — the queue can
    /// briefly hold one overflow entry, see [`IssueQueue::insert_overflow`]).
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.len)
    }

    /// True if an instruction with this sequence number is resident.
    pub fn contains(&self, seq: Seq) -> bool {
        self.index.get(seq).is_some()
    }

    /// Insert a dispatched (or WIB-reinserted) instruction.
    ///
    /// # Panics
    /// Panics if the queue is full or `seq` is already present.
    pub fn insert(&mut self, seq: Seq, entry: IqEntry) {
        assert!(self.len < self.capacity, "issue queue overflow");
        self.insert_unchecked(seq, entry);
    }

    /// Insert past nominal capacity (at most one extra entry). Reserved
    /// for the forward-progress guarantee: the oldest in-flight
    /// instruction can always reenter the queue from the WIB — all its
    /// elders have committed, so it issues (and frees the slot) at once.
    ///
    /// # Panics
    /// Panics if the queue already holds an overflow entry or `seq` is
    /// already present.
    pub fn insert_overflow(&mut self, seq: Seq, entry: IqEntry) {
        assert!(self.len <= self.capacity, "double overflow");
        self.insert_unchecked(seq, entry);
    }

    fn insert_unchecked(&mut self, seq: Seq, entry: IqEntry) {
        assert!(
            self.index.get(seq).is_none(),
            "duplicate issue-queue entry {seq}"
        );
        let id = self.free.pop().expect("arena slot available") as usize;
        let ready = entry.is_satisfied();
        let s = &mut self.slots[id];
        s.seq = seq;
        s.entry = entry;
        s.occupied = true;
        self.index.insert(seq, id as u32);
        self.len += 1;
        if ready {
            self.ready_link(id as u32);
        }
    }

    /// Link `id` into the ready list, keeping it sorted by age. Newly
    /// satisfied instructions are usually the youngest resident, so the
    /// backward walk from the tail is O(1) in the common case.
    fn ready_link(&mut self, id: u32) {
        let seq = self.slots[id as usize].seq;
        debug_assert!(!self.slots[id as usize].ready);
        let mut after = self.ready_tail;
        while after != NIL && self.slots[after as usize].seq > seq {
            after = self.slots[after as usize].ready_prev;
        }
        let next = match after {
            NIL => self.ready_head,
            a => self.slots[a as usize].ready_next,
        };
        {
            let s = &mut self.slots[id as usize];
            s.ready = true;
            s.ready_prev = after;
            s.ready_next = next;
        }
        match after {
            NIL => self.ready_head = id,
            a => self.slots[a as usize].ready_next = id,
        }
        match next {
            NIL => self.ready_tail = id,
            n => self.slots[n as usize].ready_prev = id,
        }
    }

    /// Unlink `id` from the ready list (O(1)).
    fn ready_unlink(&mut self, id: u32) {
        let (prev, next) = {
            let s = &mut self.slots[id as usize];
            debug_assert!(s.ready);
            s.ready = false;
            (s.ready_prev, s.ready_next)
        };
        match prev {
            NIL => self.ready_head = next,
            p => self.slots[p as usize].ready_next = next,
        }
        match next {
            NIL => self.ready_tail = prev,
            n => self.slots[n as usize].ready_prev = prev,
        }
    }

    /// Wake operand `preg` of instruction `seq`: a broadcast arrived
    /// (`status` = `Ready`) or the producer moved to the WIB
    /// (`status` = `Wait`). Returns true if the instruction was found.
    pub fn satisfy(&mut self, seq: Seq, preg: PhysReg, class: RegClass, status: SrcStatus) -> bool {
        let Some(id) = self.index.get(seq) else {
            return false;
        };
        let entry = &mut self.slots[id as usize].entry;
        let mut hit = false;
        for src in entry.srcs.iter_mut().flatten() {
            if src.0.preg == preg && src.0.class == class && src.1 == SrcStatus::Pending {
                src.1 = status;
                entry.pending -= 1;
                hit = true;
            }
        }
        if hit && entry.pending == 0 {
            self.ready_link(id);
        }
        hit
    }

    /// True if at least one instruction is selectable this cycle.
    pub fn has_ready(&self) -> bool {
        self.ready_head != NIL
    }

    /// Ready instructions, oldest first.
    pub fn ready_seqs(&self) -> impl Iterator<Item = Seq> + '_ {
        ReadyIter {
            q: self,
            cursor: self.ready_head,
        }
    }

    /// Immutable view of an entry.
    pub fn entry(&self, seq: Seq) -> Option<&IqEntry> {
        self.index.get(seq).map(|id| &self.slots[id as usize].entry)
    }

    /// Remove an instruction (issued, moved to the WIB, or squashed).
    /// Returns its entry if present.
    pub fn remove(&mut self, seq: Seq) -> Option<IqEntry> {
        let id = self.index.remove(seq)?;
        if self.slots[id as usize].ready {
            self.ready_unlink(id);
        }
        let s = &mut self.slots[id as usize];
        debug_assert!(s.occupied);
        s.occupied = false;
        self.free.push(id);
        self.len -= 1;
        Some(s.entry)
    }

    /// Diagnostic: borrowed snapshot of every entry, oldest first.
    #[doc(hidden)]
    pub fn dump(&self) -> Vec<(Seq, &IqEntry)> {
        let mut v: Vec<_> = self
            .slots
            .iter()
            .filter(|s| s.occupied)
            .map(|s| (s.seq, &s.entry))
            .collect();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Machine-check: verify every structural invariant of the slot
    /// arena, free list, seq index, and intrusive ready list. Returns a
    /// description of the first violation found. Always compiled (it is
    /// cheap to build and tests call it directly); the per-cycle hook in
    /// the pipeline is gated behind the `checked` cargo feature.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("iq: {msg}"));
        // Arena partition: `free` and occupied slots split the arena
        // exactly, with no duplicates on the free list.
        let occupied: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&i| self.slots[i as usize].occupied)
            .collect();
        if occupied.len() != self.len {
            return fail(format!(
                "len {} != occupied slot count {}",
                self.len,
                occupied.len()
            ));
        }
        if self.len > self.capacity + 1 {
            return fail(format!(
                "len {} exceeds capacity {} + overflow slot",
                self.len, self.capacity
            ));
        }
        let mut seen = vec![false; self.slots.len()];
        for &f in &self.free {
            if f as usize >= self.slots.len() {
                return fail(format!("free-list id {f} out of range"));
            }
            if seen[f as usize] {
                return fail(format!("free-list id {f} duplicated"));
            }
            seen[f as usize] = true;
            if self.slots[f as usize].occupied {
                return fail(format!("slot {f} both free and occupied"));
            }
        }
        if self.free.len() + self.len != self.slots.len() {
            return fail(format!(
                "free {} + occupied {} != arena {}",
                self.free.len(),
                self.len,
                self.slots.len()
            ));
        }
        // Index bijection: every occupied slot is findable by seq and maps
        // back to itself; the table holds exactly `len` live cells; no
        // duplicate seqs among occupied slots.
        let mut seqs = std::collections::HashSet::new();
        for &id in &occupied {
            let s = &self.slots[id as usize];
            if !seqs.insert(s.seq) {
                return fail(format!("seq {} occupies two slots", s.seq));
            }
            match self.index.get(s.seq) {
                Some(found) if found == id => {}
                Some(found) => {
                    return fail(format!(
                        "index maps seq {} to slot {found}, expected {id}",
                        s.seq
                    ));
                }
                None => return fail(format!("occupied seq {} missing from index", s.seq)),
            }
        }
        let live_cells = self.index.table.iter().filter(|(_, s)| *s != NIL).count();
        if live_cells != self.len {
            return fail(format!(
                "index holds {live_cells} live cells, expected {}",
                self.len
            ));
        }
        // Ready list: walk head -> tail; links consistent, strictly
        // age-sorted, members occupied + satisfied; `ready` flags agree
        // with membership and satisfaction.
        let mut cursor = self.ready_head;
        let mut prev = NIL;
        let mut last_seq: Option<Seq> = None;
        let mut on_list = vec![false; self.slots.len()];
        let mut walked = 0usize;
        while cursor != NIL {
            if walked > self.slots.len() {
                return fail("ready list cycle".into());
            }
            let s = &self.slots[cursor as usize];
            if !s.occupied {
                return fail(format!("ready list holds vacant slot {cursor}"));
            }
            if !s.ready {
                return fail(format!("slot {cursor} on ready list without ready flag"));
            }
            if s.ready_prev != prev {
                return fail(format!(
                    "slot {cursor} ready_prev {} != walk prev {prev}",
                    s.ready_prev
                ));
            }
            if !s.entry.is_satisfied() {
                return fail(format!("unsatisfied seq {} on ready list", s.seq));
            }
            if let Some(last) = last_seq {
                if s.seq <= last {
                    return fail(format!("ready list out of age order at seq {}", s.seq));
                }
            }
            last_seq = Some(s.seq);
            on_list[cursor as usize] = true;
            walked += 1;
            prev = cursor;
            cursor = s.ready_next;
        }
        if self.ready_tail != prev {
            return fail(format!(
                "ready_tail {} != last walked slot {prev}",
                self.ready_tail
            ));
        }
        for &id in &occupied {
            let s = &self.slots[id as usize];
            if s.ready != on_list[id as usize] {
                return fail(format!(
                    "slot {id} ready flag {} disagrees with list membership",
                    s.ready
                ));
            }
            if s.entry.is_satisfied() != s.ready {
                return fail(format!(
                    "seq {} satisfied={} but ready={}",
                    s.seq,
                    s.entry.is_satisfied(),
                    s.ready
                ));
            }
            // `pending` cache equals the recount.
            let pending = s
                .entry
                .srcs
                .iter()
                .flatten()
                .filter(|(_, st)| *st == SrcStatus::Pending)
                .count() as u8;
            if pending != s.entry.pending {
                return fail(format!(
                    "seq {} pending cache {} != recount {pending}",
                    s.seq, s.entry.pending
                ));
            }
        }
        Ok(())
    }

    /// Demote an operand that validation found neither ready nor waiting
    /// (its producer was reinserted from the WIB and has not executed
    /// yet). The entry leaves the ready set; the caller must re-subscribe
    /// it to the producing register.
    pub fn demote(&mut self, seq: Seq, preg: PhysReg, class: RegClass) {
        let Some(id) = self.index.get(seq) else {
            return;
        };
        let entry = &mut self.slots[id as usize].entry;
        for src in entry.srcs.iter_mut().flatten() {
            if src.0.preg == preg && src.0.class == class && src.1 != SrcStatus::Pending {
                src.1 = SrcStatus::Pending;
                entry.pending += 1;
            }
        }
        if entry.pending > 0 && self.slots[id as usize].ready {
            self.ready_unlink(id);
        }
    }
}

struct ReadyIter<'a> {
    q: &'a IssueQueue,
    cursor: u32,
}

impl Iterator for ReadyIter<'_> {
    type Item = Seq;

    fn next(&mut self) -> Option<Seq> {
        if self.cursor == NIL {
            return None;
        }
        let s = &self.q.slots[self.cursor as usize];
        self.cursor = s.ready_next;
        Some(s.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(p: u16) -> SrcRef {
        SrcRef {
            class: RegClass::Int,
            preg: PhysReg(p),
        }
    }

    #[test]
    fn ready_on_insert_when_satisfied() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(5), SrcStatus::Ready)), None]));
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn wakeup_ordering_is_by_age() {
        let mut q = IssueQueue::new(4);
        q.insert(9, IqEntry::new([Some((src(1), SrcStatus::Pending)), None]));
        q.insert(3, IqEntry::new([Some((src(1), SrcStatus::Pending)), None]));
        assert!(q.ready_seqs().next().is_none());
        assert!(q.satisfy(9, PhysReg(1), RegClass::Int, SrcStatus::Ready));
        assert!(q.satisfy(3, PhysReg(1), RegClass::Int, SrcStatus::Ready));
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![3, 9]);
    }

    #[test]
    fn both_operands_must_arrive() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(1), SrcStatus::Pending)),
                Some((src(2), SrcStatus::Pending)),
            ]),
        );
        q.satisfy(1, PhysReg(1), RegClass::Int, SrcStatus::Ready);
        assert!(q.ready_seqs().next().is_none());
        q.satisfy(1, PhysReg(2), RegClass::Int, SrcStatus::Ready);
        assert_eq!(q.ready_seqs().count(), 1);
    }

    #[test]
    fn pretend_ready_via_wait() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(1), SrcStatus::Ready)),
                Some((src(2), SrcStatus::Pending)),
            ]),
        );
        q.satisfy(1, PhysReg(2), RegClass::Int, SrcStatus::Wait);
        let e = q.entry(1).unwrap();
        assert!(e.is_satisfied() && e.is_pretend());
    }

    #[test]
    fn same_register_both_operands() {
        let mut q = IssueQueue::new(4);
        q.insert(
            1,
            IqEntry::new([
                Some((src(7), SrcStatus::Pending)),
                Some((src(7), SrcStatus::Pending)),
            ]),
        );
        // One broadcast satisfies both.
        q.satisfy(1, PhysReg(7), RegClass::Int, SrcStatus::Ready);
        assert!(q.entry(1).unwrap().is_satisfied());
    }

    #[test]
    fn class_mismatch_is_not_satisfied() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(7), SrcStatus::Pending)), None]));
        assert!(!q.satisfy(1, PhysReg(7), RegClass::Fp, SrcStatus::Ready));
        assert!(!q.entry(1).unwrap().is_satisfied());
    }

    #[test]
    fn demote_returns_to_pending() {
        let mut q = IssueQueue::new(4);
        q.insert(1, IqEntry::new([Some((src(7), SrcStatus::Wait)), None]));
        assert_eq!(q.ready_seqs().count(), 1);
        q.demote(1, PhysReg(7), RegClass::Int);
        assert_eq!(q.ready_seqs().count(), 0);
        q.satisfy(1, PhysReg(7), RegClass::Int, SrcStatus::Ready);
        assert_eq!(q.ready_seqs().count(), 1);
    }

    #[test]
    fn capacity_and_removal() {
        let mut q = IssueQueue::new(2);
        q.insert(1, IqEntry::new([None, None]));
        q.insert(2, IqEntry::new([None, None]));
        assert_eq!(q.free_slots(), 0);
        assert!(q.remove(1).is_some());
        assert!(q.remove(1).is_none());
        assert_eq!(q.free_slots(), 1);
        assert!(q.contains(2) && !q.contains(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = IssueQueue::new(1);
        q.insert(1, IqEntry::new([None, None]));
        q.insert(2, IqEntry::new([None, None]));
    }

    #[test]
    fn overflow_slot_holds_one_extra_entry() {
        let mut q = IssueQueue::new(2);
        q.insert(5, IqEntry::new([None, None]));
        q.insert(6, IqEntry::new([None, None]));
        assert_eq!(q.free_slots(), 0);
        q.insert_overflow(4, IqEntry::new([None, None]));
        assert_eq!(q.len(), 3);
        // Oldest first even though the overflow entry arrived last.
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert!(q.remove(4).is_some());
        assert_eq!(q.free_slots(), 0);
    }

    #[test]
    fn ready_order_survives_interleaved_removal() {
        let mut q = IssueQueue::new(8);
        for seq in [12, 3, 9, 7, 1] {
            q.insert(seq, IqEntry::new([None, None]));
        }
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![1, 3, 7, 9, 12]);
        q.remove(7);
        q.remove(1);
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![3, 9, 12]);
        q.insert(5, IqEntry::new([None, None]));
        assert_eq!(q.ready_seqs().collect::<Vec<_>>(), vec![3, 5, 9, 12]);
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut q = IssueQueue::new(4);
        for round in 0..100u64 {
            for k in 0..4 {
                q.insert(round * 4 + k, IqEntry::new([None, None]));
            }
            assert_eq!(q.free_slots(), 0);
            for k in 0..4 {
                assert!(q.remove(round * 4 + k).is_some());
            }
            assert!(q.is_empty());
        }
    }
}
