//! The pool-of-blocks WIB — the alternative organization of paper
//! section 3.5.
//!
//! Instead of one WIB entry per active-list slot plus per-load
//! bit-vectors, a load miss grabs a free fixed-size **block** from a pool
//! and dependent instructions are deposited into it in arrival
//! (dependence-chain) order; long chains link additional blocks. On
//! completion the whole chain reinserts.
//!
//! The paper flags this design's drawbacks, which this model reproduces:
//!
//! - blocks can run out (`insert` fails and the instruction stalls in the
//!   issue queue — the deadlock hazard the paper worries about is blunted
//!   here because wait bits clear when chains drain),
//! - squashing has no program order to lean on, so it must hunt entries
//!   down chain by chain (we keep a location index; the hardware cost is
//!   the point the paper makes against the design).

use crate::types::{ColumnId, Seq};
use crate::wib::WibStats;
use std::collections::HashMap;

/// Configuration of the block pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Instruction slots per block.
    pub block_slots: u32,
    /// Total blocks in the pool.
    pub blocks: u32,
}

impl PoolConfig {
    /// A pool with the same total capacity as a 2K-entry WIB: 256 blocks
    /// of 8 slots.
    pub fn capacity_2k() -> PoolConfig {
        PoolConfig {
            block_slots: 8,
            blocks: 256,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Block {
    /// `(seq, active-list slot)` in deposit order; `None` = extracted or
    /// squashed.
    entries: Vec<Option<(Seq, usize)>>,
    live: usize,
    next: Option<u32>,
}

#[derive(Debug, Clone)]
struct Chain {
    in_use: bool,
    completed: bool,
    load_seq: Seq,
    head: Option<u32>,
    tail: Option<u32>,
    live: usize,
}

/// The pool-of-blocks waiting instruction buffer.
#[derive(Debug, Clone)]
pub struct PoolWib {
    cfg: PoolConfig,
    blocks: Vec<Block>,
    free_blocks: Vec<u32>,
    chains: Vec<Chain>,
    free_chains: Vec<ColumnId>,
    /// Active-list slot -> (chain, block, index) for squash.
    locations: HashMap<usize, (ColumnId, u32, usize)>,
    completed_chains: Vec<ColumnId>, // drain FIFO, oldest completion first
    stats: WibStats,
    /// Times an insertion failed because the pool was exhausted.
    pub insert_failures: u64,
}

impl PoolWib {
    /// Build an empty pool.
    ///
    /// # Panics
    /// Panics on a zero-sized pool.
    pub fn new(cfg: PoolConfig) -> PoolWib {
        assert!(cfg.block_slots > 0 && cfg.blocks > 0);
        PoolWib {
            blocks: vec![Block::default(); cfg.blocks as usize],
            free_blocks: (0..cfg.blocks).rev().collect(),
            chains: Vec::new(),
            free_chains: Vec::new(),
            locations: HashMap::new(),
            completed_chains: Vec::new(),
            cfg,
            stats: WibStats::default(),
            insert_failures: 0,
        }
    }

    /// Parked instructions.
    pub fn resident(&self) -> usize {
        self.locations.len()
    }

    /// True when no parked instruction is extractable: a completed chain
    /// with live entries is always on `completed_chains` (and is freed the
    /// moment it drains), so an empty drain list makes [`PoolWib::extract`]
    /// a guaranteed no-op and [`PoolWib::eligible_slot`] false for every
    /// slot. Lets the engine fast-forward stall cycles.
    pub fn quiescent(&self) -> bool {
        self.completed_chains.is_empty()
    }

    /// Chains currently tracking an outstanding load.
    pub fn columns_in_use(&self) -> usize {
        self.chains.iter().filter(|c| c.in_use).count()
    }

    /// Aggregate statistics (shared shape with the bit-vector WIB).
    pub fn stats(&self) -> WibStats {
        self.stats
    }

    /// Start a chain for load miss `load_seq`. Chains are bookkeeping
    /// only (the scarce resource is blocks), so this always succeeds.
    pub fn allocate_column(&mut self, load_seq: Seq) -> Option<ColumnId> {
        let id = match self.free_chains.pop() {
            Some(id) => id,
            None => {
                let id = self.chains.len() as ColumnId;
                self.chains.push(Chain {
                    in_use: false,
                    completed: false,
                    load_seq: 0,
                    head: None,
                    tail: None,
                    live: 0,
                });
                id
            }
        };
        let c = &mut self.chains[id as usize];
        debug_assert!(!c.in_use);
        *c = Chain {
            in_use: true,
            completed: false,
            load_seq,
            head: None,
            tail: None,
            live: 0,
        };
        self.stats.columns_allocated += 1;
        Some(id)
    }

    /// Deposit `(slot, seq)` into `chain`. Returns false when the pool
    /// has no room (the instruction must stall in the issue queue).
    pub fn insert(&mut self, slot: usize, seq: Seq, chain: ColumnId) -> bool {
        debug_assert!(!self.locations.contains_key(&slot), "slot parked twice");
        let c = &mut self.chains[chain as usize];
        debug_assert!(c.in_use);
        // Find room in the tail block or grab a fresh block.
        let block_id = match c.tail {
            Some(b) if self.blocks[b as usize].entries.len() < self.cfg.block_slots as usize => b,
            _ => {
                let Some(b) = self.free_blocks.pop() else {
                    self.insert_failures += 1;
                    return false;
                };
                self.blocks[b as usize] = Block::default();
                match c.tail {
                    Some(t) => self.blocks[t as usize].next = Some(b),
                    None => c.head = Some(b),
                }
                c.tail = Some(b);
                b
            }
        };
        let c = &mut self.chains[chain as usize];
        c.live += 1;
        let block = &mut self.blocks[block_id as usize];
        let index = block.entries.len();
        block.entries.push(Some((seq, slot)));
        block.live += 1;
        self.locations.insert(slot, (chain, block_id, index));
        self.stats.insertions += 1;
        true
    }

    /// True if `slot` currently holds a parked instruction.
    pub fn contains(&self, slot: usize) -> bool {
        self.locations.contains_key(&slot)
    }

    /// Machine-check helper: true while `chain` tracks an outstanding
    /// load (allocated and not yet freed).
    pub fn column_live(&self, chain: ColumnId) -> bool {
        self.chains.get(chain as usize).is_some_and(|c| c.in_use)
    }

    /// The load completed: its chain becomes drainable.
    pub fn column_completed(&mut self, chain: ColumnId) {
        let c = &mut self.chains[chain as usize];
        debug_assert!(c.in_use && !c.completed);
        c.completed = true;
        if c.live == 0 {
            self.free_chain(chain);
        } else {
            self.completed_chains.push(chain);
        }
    }

    fn free_chain(&mut self, chain: ColumnId) {
        let c = &mut self.chains[chain as usize];
        debug_assert!(c.in_use && c.live == 0);
        // Release any blocks still linked.
        let mut b = c.head;
        c.head = None;
        c.tail = None;
        c.in_use = false;
        c.completed = false;
        while let Some(id) = b {
            b = self.blocks[id as usize].next;
            self.blocks[id as usize] = Block::default();
            self.free_blocks.push(id);
        }
        self.completed_chains.retain(|&x| x != chain);
        self.free_chains.push(chain);
    }

    /// Squash the instruction at `slot`, if parked.
    pub fn squash_slot(&mut self, slot: usize) {
        let Some((chain, block, index)) = self.locations.remove(&slot) else {
            return;
        };
        let blk = &mut self.blocks[block as usize];
        blk.entries[index] = None;
        blk.live -= 1;
        let c = &mut self.chains[chain as usize];
        c.live -= 1;
        if c.completed && c.live == 0 {
            self.free_chain(chain);
        }
    }

    /// Free the chain of a squashed load (no-op unless `load_seq` still
    /// owns it — mirrors [`crate::wib::Wib::squash_column`]).
    pub fn squash_column(&mut self, chain: ColumnId, load_seq: Seq) {
        let c = &self.chains[chain as usize];
        if !c.in_use || c.load_seq != load_seq {
            return;
        }
        assert_eq!(c.live, 0, "squashed load's chain still has dependents");
        self.free_chain(chain);
    }

    /// Extract up to `budget` instructions in deposit order, oldest
    /// completed chain first ("when the load completes, all the
    /// instructions in the block are reinserted").
    pub fn extract<F: FnMut(Seq, usize) -> bool>(&mut self, budget: usize, mut accept: F) -> usize {
        let mut taken = 0;
        'outer: while taken < budget {
            let Some(&chain) = self.completed_chains.first() else {
                break;
            };
            // Walk the chain's blocks for the first live entry.
            let mut b = self.chains[chain as usize].head;
            let mut found = None;
            while let Some(id) = b {
                if let Some(i) = self.blocks[id as usize]
                    .entries
                    .iter()
                    .position(Option::is_some)
                {
                    found = Some((id, i));
                    break;
                }
                b = self.blocks[id as usize].next;
            }
            let Some((block, index)) = found else {
                // Fully drained chain (entries squashed).
                if self.chains[chain as usize].live == 0 {
                    self.free_chain(chain);
                    continue;
                }
                debug_assert!(false, "live count and blocks disagree");
                break;
            };
            let (seq, slot) = self.blocks[block as usize].entries[index].expect("found live");
            if !accept(seq, slot) {
                break 'outer;
            }
            self.locations.remove(&slot);
            let blk = &mut self.blocks[block as usize];
            blk.entries[index] = None;
            blk.live -= 1;
            let c = &mut self.chains[chain as usize];
            c.live -= 1;
            taken += 1;
            self.stats.extractions += 1;
            if c.live == 0 {
                self.free_chain(chain);
            }
        }
        taken
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks.len()
    }

    /// Machine-check: verify the location index, per-block and per-chain
    /// live counts, the block partition (chain-linked vs free), and the
    /// completed-chain drain list.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("pool-wib: {msg}"));
        // Location index: every entry points at a matching live cell.
        for (&slot, &(chain, block, index)) in &self.locations {
            let c = self
                .chains
                .get(chain as usize)
                .ok_or_else(|| format!("pool-wib: slot {slot} references chain {chain} OOB"))?;
            if !c.in_use {
                return fail(format!("slot {slot} parked in free chain {chain}"));
            }
            let blk = self
                .blocks
                .get(block as usize)
                .ok_or_else(|| format!("pool-wib: slot {slot} references block {block} OOB"))?;
            match blk.entries.get(index) {
                Some(Some((_, s))) if *s == slot => {}
                other => {
                    return fail(format!(
                        "slot {slot} location ({chain}, {block}, {index}) holds {other:?}"
                    ));
                }
            }
        }
        // Per-chain walk: block live counts, chain live sum, tail
        // reachability, and the block partition.
        let mut linked = vec![false; self.blocks.len()];
        for (id, c) in self.chains.iter().enumerate() {
            if !c.in_use {
                if c.head.is_some() || c.tail.is_some() || c.live != 0 {
                    return fail(format!("free chain {id} retains blocks or live count"));
                }
                continue;
            }
            let mut live = 0usize;
            let mut b = c.head;
            let mut last = None;
            while let Some(bid) = b {
                if linked[bid as usize] {
                    return fail(format!("block {bid} linked twice"));
                }
                linked[bid as usize] = true;
                let blk = &self.blocks[bid as usize];
                let count = blk.entries.iter().filter(|e| e.is_some()).count();
                if count != blk.live {
                    return fail(format!("block {bid} live {} != recount {count}", blk.live));
                }
                if blk.entries.len() > self.cfg.block_slots as usize {
                    return fail(format!("block {bid} overfilled"));
                }
                // Every live cell must be indexed back to this position.
                for (i, e) in blk.entries.iter().enumerate() {
                    if let Some((_, slot)) = e {
                        if self.locations.get(slot) != Some(&(id as ColumnId, bid, i)) {
                            return fail(format!("slot {slot} missing from location index"));
                        }
                    }
                }
                live += blk.live;
                last = Some(bid);
                b = blk.next;
            }
            if last != c.tail {
                return fail(format!("chain {id} tail {:?} unreachable", c.tail));
            }
            if live != c.live {
                return fail(format!("chain {id} live {} != block sum {live}", c.live));
            }
            // A completed chain with live entries must be drainable.
            let listed = self
                .completed_chains
                .iter()
                .filter(|&&x| x == id as ColumnId)
                .count();
            if c.completed && c.live > 0 && listed != 1 {
                return fail(format!(
                    "completed chain {id} listed {listed} times on the drain list"
                ));
            }
            if !c.completed && listed != 0 {
                return fail(format!("incomplete chain {id} on the drain list"));
            }
        }
        // Blocks are either chain-linked or free, exactly once.
        let mut free_seen = vec![false; self.blocks.len()];
        for &f in &self.free_blocks {
            let Some(cell) = free_seen.get_mut(f as usize) else {
                return fail(format!("free block id {f} out of range"));
            };
            if *cell {
                return fail(format!("free block {f} duplicated"));
            }
            *cell = true;
            if linked[f as usize] {
                return fail(format!("block {f} both linked and free"));
            }
        }
        let linked_count = linked.iter().filter(|l| **l).count();
        if linked_count + self.free_blocks.len() != self.blocks.len() {
            return fail(format!(
                "linked {linked_count} + free {} != pool {}",
                self.free_blocks.len(),
                self.blocks.len()
            ));
        }
        // Resident count is the index size by definition; cross-check the
        // chain sums instead.
        let chain_live: usize = self
            .chains
            .iter()
            .filter(|c| c.in_use)
            .map(|c| c.live)
            .sum();
        if chain_live != self.locations.len() {
            return fail(format!(
                "chain live sum {chain_live} != location index {}",
                self.locations.len()
            ));
        }
        Ok(())
    }

    /// True if the instruction at `slot` is parked and its chain's load
    /// has completed.
    pub fn eligible_slot(&self, slot: usize) -> bool {
        self.locations
            .get(&slot)
            .is_some_and(|&(chain, _, _)| self.chains[chain as usize].completed)
    }

    /// Forcibly extract a specific slot (the forward-progress path for a
    /// parked ROB head). The caller must have checked
    /// [`PoolWib::eligible_slot`].
    pub fn take_slot(&mut self, slot: usize) {
        debug_assert!(self.eligible_slot(slot));
        let (chain, block, index) = self.locations.remove(&slot).expect("eligible");
        let blk = &mut self.blocks[block as usize];
        blk.entries[index] = None;
        blk.live -= 1;
        let c = &mut self.chains[chain as usize];
        c.live -= 1;
        self.stats.extractions += 1;
        if c.live == 0 {
            self.free_chain(chain);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(blocks: u32, slots: u32) -> PoolWib {
        PoolWib::new(PoolConfig {
            block_slots: slots,
            blocks,
        })
    }

    fn drain(p: &mut PoolWib, budget: usize) -> Vec<(Seq, usize)> {
        let mut got = Vec::new();
        p.extract(budget, |seq, slot| {
            got.push((seq, slot));
            true
        });
        got
    }

    #[test]
    fn deposit_order_extraction() {
        let mut p = pool(4, 2);
        let c = p.allocate_column(1).unwrap();
        p.insert(10, 100, c);
        p.insert(11, 101, c);
        p.insert(12, 102, c); // spills into a second block
        assert_eq!(p.resident(), 3);
        assert!(drain(&mut p, 8).is_empty()); // not completed yet
        p.column_completed(c);
        assert_eq!(drain(&mut p, 8), vec![(100, 10), (101, 11), (102, 12)]);
        assert_eq!(p.resident(), 0);
        assert_eq!(p.free_blocks(), 4);
    }

    #[test]
    fn pool_exhaustion_fails_insert() {
        let mut p = pool(2, 1);
        let c1 = p.allocate_column(1).unwrap();
        let c2 = p.allocate_column(2).unwrap();
        assert!(p.insert(0, 10, c1));
        assert!(p.insert(1, 11, c2));
        assert!(!p.insert(2, 12, c1), "pool should be exhausted");
        assert_eq!(p.insert_failures, 1);
        // Draining c1 frees its block for reuse.
        p.column_completed(c1);
        drain(&mut p, 8);
        assert!(p.insert(2, 12, c2));
    }

    #[test]
    fn chains_drain_oldest_completion_first() {
        let mut p = pool(8, 2);
        let c1 = p.allocate_column(1).unwrap();
        let c2 = p.allocate_column(2).unwrap();
        p.insert(0, 10, c1);
        p.insert(1, 20, c2);
        p.column_completed(c2); // completes first
        p.column_completed(c1);
        assert_eq!(drain(&mut p, 8), vec![(20, 1), (10, 0)]);
    }

    #[test]
    fn squash_mid_chain() {
        let mut p = pool(8, 2);
        let c = p.allocate_column(1).unwrap();
        p.insert(0, 10, c);
        p.insert(1, 11, c);
        p.insert(2, 12, c);
        p.squash_slot(1);
        p.squash_slot(7); // absent: no-op
        p.column_completed(c);
        assert_eq!(drain(&mut p, 8), vec![(10, 0), (12, 2)]);
    }

    #[test]
    fn squash_column_owner_checked() {
        let mut p = pool(8, 2);
        let c = p.allocate_column(5).unwrap();
        p.insert(0, 6, c);
        p.squash_slot(0);
        p.squash_column(c, 99); // wrong owner: no-op
        p.squash_column(c, 5); // frees
        let c2 = p.allocate_column(7).unwrap();
        assert_eq!(c2, c);
    }

    #[test]
    fn refused_extraction_stops_cleanly() {
        let mut p = pool(8, 4);
        let c = p.allocate_column(1).unwrap();
        p.insert(0, 10, c);
        p.insert(1, 11, c);
        p.column_completed(c);
        let n = p.extract(8, |_, _| false);
        assert_eq!(n, 0);
        assert_eq!(p.resident(), 2); // nothing lost
        assert_eq!(drain(&mut p, 8).len(), 2);
    }

    #[test]
    fn empty_completed_chain_frees_immediately() {
        let mut p = pool(2, 2);
        let c = p.allocate_column(1).unwrap();
        p.column_completed(c);
        let c2 = p.allocate_column(2).unwrap();
        assert_eq!(c, c2);
        assert_eq!(p.free_blocks(), 2);
    }

    #[test]
    fn checker_passes_through_lifecycle() {
        let mut p = pool(4, 2);
        p.check_invariants().unwrap();
        let c = p.allocate_column(1).unwrap();
        p.insert(10, 100, c);
        p.insert(11, 101, c);
        p.insert(12, 102, c);
        p.check_invariants().unwrap();
        p.squash_slot(11);
        p.check_invariants().unwrap();
        p.column_completed(c);
        p.check_invariants().unwrap();
        drain(&mut p, 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn checker_catches_live_drift() {
        let mut p = pool(4, 2);
        let c = p.allocate_column(1).unwrap();
        p.insert(0, 10, c);
        p.chains[c as usize].live = 0; // simulate a bookkeeping bug
        assert!(p.check_invariants().is_err());
    }

    #[test]
    fn budget_respected_across_chains() {
        let mut p = pool(8, 2);
        let c1 = p.allocate_column(1).unwrap();
        for s in 0..5usize {
            p.insert(s, 100 + s as u64, c1);
        }
        p.column_completed(c1);
        assert_eq!(drain(&mut p, 3).len(), 3);
        assert_eq!(p.resident(), 2);
        assert_eq!(drain(&mut p, 3).len(), 2);
    }
}
