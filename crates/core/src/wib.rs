//! The Waiting Instruction Buffer (paper section 3.3).
//!
//! One WIB entry per active-list entry, allocated in program order (the
//! entry index is the active-list slot). Load misses allocate **bit-vector
//! columns**; an instruction moved to the WIB sets its bit in the column
//! of the first outstanding load it waits on. When a miss completes, its
//! column becomes *eligible* and entries drain back to the issue queue:
//!
//! - [`WibOrganization::Banked`]: banks take turns by cycle parity, each
//!   extracting at most one instruction per two-cycle access, in per-bank
//!   program order, with the paper's round-robin bank priority (a bank
//!   that had a candidate but could not reinsert keeps highest priority —
//!   the livelock-avoidance rule of section 3.3.1).
//! - [`WibOrganization::NonBanked`]: one whole-structure access every
//!   `latency` cycles, full program order (section 4.5).
//! - [`WibOrganization::Ideal`]: single-cycle access, used to study the
//!   selection policies of section 4.4.

use crate::config::{SelectionPolicy, WibOrganization};
use crate::types::{ColumnId, Seq};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// A bit-vector column: the dependents of one outstanding load miss.
#[derive(Debug, Clone)]
struct Column {
    in_use: bool,
    completed: bool,
    count: usize,
    load_seq: Seq,
    bits: Vec<u64>,
    /// Eligible entries in program order (populated at completion; used
    /// by the per-column selection policies).
    eligible: BTreeSet<(Seq, usize)>,
}

impl Column {
    fn new(words: usize) -> Column {
        Column {
            in_use: false,
            completed: false,
            count: 0,
            load_seq: 0,
            bits: vec![0; words],
            eligible: BTreeSet::new(),
        }
    }

    fn set_bit(&mut self, slot: usize) {
        let (w, b) = (slot / 64, slot % 64);
        debug_assert_eq!(self.bits[w] & (1 << b), 0);
        self.bits[w] |= 1 << b;
        self.count += 1;
    }

    fn clear_bit(&mut self, slot: usize) {
        let (w, b) = (slot / 64, slot % 64);
        debug_assert_ne!(self.bits[w] & (1 << b), 0);
        self.bits[w] &= !(1 << b);
        self.count -= 1;
    }

    fn slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, bits)| {
            let mut bits = *bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// A lazy-deletion eligible queue: a binary min-heap of `(seq, slot)`.
/// Detach never removes from the heap; instead, entries are validated
/// against the live WIB state at pop/peek time and stale ones discarded.
/// Duplicates are harmless — a re-parked `(seq, slot)` pushes a copy with
/// an identical key, so selecting either is the same selection — and
/// squashed seqs are never reused, so their copies always fail the
/// validity check. This keeps the hot insert/extract path free of the
/// per-node allocation and rebalancing a `BTreeSet` would do.
type EligibleHeap = BinaryHeap<Reverse<(Seq, usize)>>;

/// Discard stale heap tops; return the oldest genuinely eligible entry.
/// An entry is live when its slot is still parked with the same seq *and*
/// its column has completed (a re-parked slot waiting on a fresh miss is
/// not eligible yet; its new copy is pushed when that column completes).
fn peek_eligible(
    heap: &mut EligibleHeap,
    entry_valid: &[bool],
    entry_seq: &[Seq],
    entry_col: &[ColumnId],
    columns: &[Column],
) -> Option<(Seq, usize)> {
    while let Some(&Reverse((seq, slot))) = heap.peek() {
        if entry_valid[slot]
            && entry_seq[slot] == seq
            && columns[entry_col[slot] as usize].completed
        {
            return Some((seq, slot));
        }
        heap.pop();
    }
    None
}

#[derive(Debug, Clone)]
enum ExtractState {
    /// Per-bank eligible queues + per-parity bank priority order.
    Banked {
        sets: Vec<EligibleHeap>,
        priority: [Vec<usize>; 2],
    },
    /// One global eligible queue in program order.
    Global { eligible: EligibleHeap },
    /// Per-column draining: `(load_seq, column)` of completed columns.
    ByColumn {
        completed: BTreeSet<(Seq, ColumnId)>,
        rr_cursor: usize,
    },
}

/// Aggregate WIB counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WibStats {
    /// Instructions inserted (one per trip).
    pub insertions: u64,
    /// Instructions reinserted into the issue queue.
    pub extractions: u64,
    /// Load misses that wanted a column when none was free.
    pub column_exhausted: u64,
    /// Columns allocated.
    pub columns_allocated: u64,
}

/// The Waiting Instruction Buffer.
#[derive(Debug, Clone)]
pub struct Wib {
    size: usize,
    banks: usize,
    organization: WibOrganization,
    policy: SelectionPolicy,
    max_columns: usize,
    entry_valid: Vec<bool>,
    entry_col: Vec<ColumnId>,
    entry_seq: Vec<Seq>,
    columns: Vec<Column>,
    free_cols: Vec<ColumnId>,
    completed_cols: usize,
    resident: usize,
    extract: ExtractState,
    stats: WibStats,
    /// Reusable scratch for [`Wib::column_completed`] (slot harvesting)
    /// and [`Wib::extract_banked`] (priority rebuild). Taken with
    /// `mem::take`, cleared, refilled and put back, so the steady-state
    /// extraction path never allocates.
    scratch_entries: Vec<(Seq, usize)>,
    scratch_kept: Vec<usize>,
    scratch_demoted: Vec<usize>,
}

impl Wib {
    /// Build an empty WIB with `size` entries (== active-list size).
    ///
    /// # Panics
    /// Panics if a banked organization's bank count does not divide
    /// `size`, or `max_columns` is zero.
    pub fn new(
        size: usize,
        organization: WibOrganization,
        policy: SelectionPolicy,
        max_columns: usize,
    ) -> Wib {
        assert!(max_columns > 0);
        let banks = match organization {
            WibOrganization::Banked { banks } => {
                assert!(banks > 0 && size.is_multiple_of(banks as usize));
                banks as usize
            }
            _ => 1,
        };
        let extract = match organization {
            WibOrganization::Banked { .. } => ExtractState::Banked {
                sets: vec![EligibleHeap::new(); banks],
                // Even banks work even cycles, odd banks odd cycles.
                priority: [
                    (0..banks).filter(|b| b % 2 == 0).collect(),
                    (0..banks).filter(|b| b % 2 == 1).collect(),
                ],
            },
            WibOrganization::NonBanked { .. } => ExtractState::Global {
                eligible: EligibleHeap::new(),
            },
            WibOrganization::Ideal => match policy {
                SelectionPolicy::ProgramOrder => ExtractState::Global {
                    eligible: EligibleHeap::new(),
                },
                _ => ExtractState::ByColumn {
                    completed: BTreeSet::new(),
                    rr_cursor: 0,
                },
            },
            WibOrganization::PoolOfBlocks { .. } => {
                panic!("pool-of-blocks organization is implemented by PoolWib, not Wib")
            }
        };
        Wib {
            size,
            banks,
            organization,
            policy,
            max_columns,
            entry_valid: vec![false; size],
            entry_col: vec![0; size],
            entry_seq: vec![0; size],
            columns: Vec::new(),
            free_cols: Vec::new(),
            completed_cols: 0,
            resident: 0,
            extract,
            stats: WibStats::default(),
            scratch_entries: Vec::with_capacity(64),
            scratch_kept: Vec::with_capacity(banks),
            scratch_demoted: Vec::with_capacity(banks),
        }
    }

    /// Entries currently parked.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// True when no parked instruction is extractable: no column has
    /// completed, so [`Wib::extract`] is a guaranteed no-op (it returns
    /// before touching bank priority) and [`Wib::eligible_slot`] is false
    /// for every slot. Lets the engine fast-forward stall cycles.
    pub fn quiescent(&self) -> bool {
        self.completed_cols == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WibStats {
        self.stats
    }

    /// Capacity (== active-list size).
    pub fn capacity(&self) -> usize {
        self.size
    }

    /// Bit-vector columns currently tracking an outstanding load.
    pub fn columns_in_use(&self) -> usize {
        self.columns.iter().filter(|c| c.in_use).count()
    }

    /// Diagnostic: the column a parked slot waits on, as
    /// `(column, completed, bits_remaining)`.
    pub fn slot_column_state(&self, slot: usize) -> Option<(ColumnId, bool, usize)> {
        if !self.entry_valid[slot] {
            return None;
        }
        let c = self.entry_col[slot];
        let col = &self.columns[c as usize];
        Some((c, col.completed, col.count))
    }

    /// True on cycles where this organization performs an access.
    pub fn access_cycle(&self, now: u64) -> bool {
        match self.organization {
            WibOrganization::Banked { .. }
            | WibOrganization::Ideal
            | WibOrganization::PoolOfBlocks { .. } => true,
            WibOrganization::NonBanked { latency } => now.is_multiple_of(latency),
        }
    }

    /// Allocate a bit-vector column for the load miss `load_seq`.
    /// Returns `None` when the configured column budget is exhausted — the
    /// load's dependents then stay in the issue queue conventionally.
    pub fn allocate_column(&mut self, load_seq: Seq) -> Option<ColumnId> {
        let id = match self.free_cols.pop() {
            Some(id) => id,
            None if self.columns.len() < self.max_columns => {
                let id = self.columns.len() as ColumnId;
                self.columns.push(Column::new(self.size.div_ceil(64)));
                id
            }
            None => {
                self.stats.column_exhausted += 1;
                return None;
            }
        };
        let col = &mut self.columns[id as usize];
        debug_assert!(!col.in_use && col.count == 0);
        col.in_use = true;
        col.completed = false;
        col.load_seq = load_seq;
        self.stats.columns_allocated += 1;
        Some(id)
    }

    /// Park instruction (`seq`, active-list `slot`) in the WIB, waiting on
    /// `column`.
    ///
    /// The column may already be completed (mid-drain): an instruction
    /// whose wait bit references a load that just finished still parks in
    /// that load's bit-vector and is picked up by a subsequent access —
    /// this is the instruction-recycling behaviour the paper measures
    /// (section 4.1's insertion counts).
    ///
    /// # Panics
    /// Panics if the slot is already occupied or the column is free.
    pub fn insert(&mut self, slot: usize, seq: Seq, column: ColumnId) {
        assert!(!self.entry_valid[slot], "WIB slot {slot} already occupied");
        let col = &mut self.columns[column as usize];
        assert!(col.in_use, "insert into a free column");
        col.set_bit(slot);
        let completed = col.completed;
        self.entry_valid[slot] = true;
        self.entry_col[slot] = column;
        self.entry_seq[slot] = seq;
        self.resident += 1;
        self.stats.insertions += 1;
        if completed {
            match &mut self.extract {
                ExtractState::Banked { sets, .. } => {
                    sets[slot % self.banks].push(Reverse((seq, slot)));
                }
                ExtractState::Global { eligible } => {
                    eligible.push(Reverse((seq, slot)));
                }
                ExtractState::ByColumn { .. } => {
                    self.columns[column as usize].eligible.insert((seq, slot));
                }
            }
        }
    }

    /// True if `slot` currently holds a parked instruction.
    pub fn contains(&self, slot: usize) -> bool {
        self.entry_valid[slot]
    }

    /// Machine-check helper: true while `column` tracks an outstanding
    /// load (allocated and not yet freed).
    pub fn column_live(&self, column: ColumnId) -> bool {
        self.columns.get(column as usize).is_some_and(|c| c.in_use)
    }

    /// The load miss completed: its dependents become eligible for
    /// reinsertion.
    pub fn column_completed(&mut self, column: ColumnId) {
        let col = &mut self.columns[column as usize];
        debug_assert!(col.in_use && !col.completed);
        col.completed = true;
        self.completed_cols += 1;
        if col.count == 0 {
            self.free_column(column);
            return;
        }
        let mut entries = std::mem::take(&mut self.scratch_entries);
        entries.clear();
        {
            let col = &self.columns[column as usize];
            entries.extend(col.slots().map(|s| (self.entry_seq[s], s)));
        }
        match &mut self.extract {
            ExtractState::Banked { sets, .. } => {
                for &(seq, slot) in &entries {
                    sets[slot % self.banks].push(Reverse((seq, slot)));
                }
            }
            ExtractState::Global { eligible } => {
                eligible.extend(entries.iter().map(|&e| Reverse(e)));
            }
            ExtractState::ByColumn { completed, .. } => {
                let col = &mut self.columns[column as usize];
                col.eligible.extend(entries.iter().copied());
                completed.insert((col.load_seq, column));
            }
        }
        self.scratch_entries = entries;
    }

    fn free_column(&mut self, column: ColumnId) {
        let col = &mut self.columns[column as usize];
        debug_assert!(col.in_use && col.count == 0);
        debug_assert!(col.bits.iter().all(|w| *w == 0));
        if col.completed {
            self.completed_cols -= 1;
            if let ExtractState::ByColumn { completed, .. } = &mut self.extract {
                completed.remove(&(col.load_seq, column));
            }
        }
        col.in_use = false;
        col.completed = false;
        col.eligible.clear();
        self.free_cols.push(column);
    }

    /// Detach the instruction at `slot` (it was reinserted or squashed).
    fn detach(&mut self, slot: usize) {
        debug_assert!(self.entry_valid[slot]);
        let column = self.entry_col[slot];
        let seq = self.entry_seq[slot];
        self.entry_valid[slot] = false;
        self.resident -= 1;
        let completed = {
            let col = &mut self.columns[column as usize];
            col.clear_bit(slot);
            col.completed
        };
        if completed {
            // Banked/Global queues use lazy deletion: the heap copy stays
            // behind and is discarded by `peek_eligible` once it surfaces.
            if let ExtractState::ByColumn { .. } = &self.extract {
                self.columns[column as usize].eligible.remove(&(seq, slot));
            }
        }
        if completed && self.columns[column as usize].count == 0 {
            self.free_column(column);
        }
    }

    /// Squash: remove the parked instruction at `slot` if present.
    pub fn squash_slot(&mut self, slot: usize) {
        if self.entry_valid[slot] {
            self.detach(slot);
        }
    }

    /// True if the instruction at `slot` is parked and its miss has
    /// completed (it could be extracted).
    pub fn eligible_slot(&self, slot: usize) -> bool {
        self.entry_valid[slot] && self.columns[self.entry_col[slot] as usize].completed
    }

    /// Forcibly extract a specific slot (the forward-progress path for a
    /// parked ROB head). The caller must have checked
    /// [`Wib::eligible_slot`].
    pub fn take_slot(&mut self, slot: usize) {
        debug_assert!(self.eligible_slot(slot));
        self.detach(slot);
        self.stats.extractions += 1;
    }

    /// Free the column of a squashed load (identified by `load_seq`). All
    /// of the column's dependents are younger than the load, so the squash
    /// has already detached them. A column that fully drained before the
    /// squash may have been freed — and even reallocated to a different
    /// load — so the call is a no-op unless `load_seq` still owns it.
    ///
    /// # Panics
    /// Panics if the owned column still has parked dependents.
    pub fn squash_column(&mut self, column: ColumnId, load_seq: Seq) {
        let col = &self.columns[column as usize];
        if !col.in_use || col.load_seq != load_seq {
            return;
        }
        assert_eq!(col.count, 0, "squashed load's column still has dependents");
        self.free_column(column);
    }

    /// Extract up to `budget` eligible instructions this cycle, oldest
    /// first per the configured organization/policy. `accept(seq, slot)`
    /// reinserts into the issue queue and returns false when it cannot
    /// (queue full / dispatch bandwidth consumed) — extraction then stops
    /// and, for the banked organization, the refused bank keeps priority.
    pub fn extract<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        now: u64,
        budget: usize,
        mut accept: F,
    ) -> usize {
        if self.completed_cols == 0 || budget == 0 || !self.access_cycle(now) {
            return 0;
        }
        let taken = match &self.extract {
            ExtractState::Banked { .. } => self.extract_banked(now, budget, &mut accept),
            ExtractState::Global { .. } => self.extract_global(budget, &mut accept),
            ExtractState::ByColumn { .. } => self.extract_by_column(budget, &mut accept),
        };
        self.stats.extractions += taken as u64;
        taken
    }

    /// Machine-check: verify column bitmaps, the resident count, the
    /// free-column list, completed-column bookkeeping, eligible-queue
    /// coverage, and the banked priority permutation (the refused-bank
    /// liveness rule depends on every bank staying in its parity's order).
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("wib: {msg}"));
        // Resident count vs the valid-entry map.
        let valid = self.entry_valid.iter().filter(|v| **v).count();
        if valid != self.resident {
            return fail(format!(
                "resident {} != valid entries {valid}",
                self.resident
            ));
        }
        // Per-column: count == popcount, bits agree with the entry map.
        for (c, col) in self.columns.iter().enumerate() {
            let pop: usize = col.bits.iter().map(|w| w.count_ones() as usize).sum();
            if pop != col.count {
                return fail(format!("column {c} count {} != popcount {pop}", col.count));
            }
            if !col.in_use {
                if col.count != 0 || col.completed {
                    return fail(format!(
                        "free column {c} has count {} completed {}",
                        col.count, col.completed
                    ));
                }
                continue;
            }
            if col.completed && col.count == 0 {
                return fail(format!("empty completed column {c} was not freed"));
            }
            for slot in col.slots() {
                if !self.entry_valid[slot] {
                    return fail(format!("column {c} bit set for vacant slot {slot}"));
                }
                if self.entry_col[slot] as usize != c {
                    return fail(format!(
                        "slot {slot} bit in column {c} but entry_col says {}",
                        self.entry_col[slot]
                    ));
                }
            }
        }
        // Every valid entry's column bit is set (set_bit/clear_bit
        // debug-assert the transitions; this re-checks the steady state).
        for slot in 0..self.size {
            if !self.entry_valid[slot] {
                continue;
            }
            let col = &self.columns[self.entry_col[slot] as usize];
            if !col.in_use {
                return fail(format!("slot {slot} waits on free column"));
            }
            let (w, b) = (slot / 64, slot % 64);
            if col.bits[w] & (1 << b) == 0 {
                return fail(format!("slot {slot} valid but column bit clear"));
            }
        }
        // Column accounting: completed_cols cache and free list.
        let completed = self
            .columns
            .iter()
            .filter(|c| c.in_use && c.completed)
            .count();
        if completed != self.completed_cols {
            return fail(format!(
                "completed_cols {} != recount {completed}",
                self.completed_cols
            ));
        }
        let mut free_seen = vec![false; self.columns.len()];
        for &f in &self.free_cols {
            let Some(slot) = free_seen.get_mut(f as usize) else {
                return fail(format!("free column id {f} out of range"));
            };
            if *slot {
                return fail(format!("free column {f} duplicated"));
            }
            *slot = true;
            if self.columns[f as usize].in_use {
                return fail(format!("column {f} both free and in use"));
            }
        }
        let in_use = self.columns.iter().filter(|c| c.in_use).count();
        if self.free_cols.len() + in_use != self.columns.len() {
            return fail(format!(
                "free {} + in-use {in_use} != allocated {}",
                self.free_cols.len(),
                self.columns.len()
            ));
        }
        // Eligible coverage: every parked entry whose column completed
        // must be reachable by extraction (lazy heaps may hold stale
        // extras, but never miss a live eligible entry).
        for slot in 0..self.size {
            if !self.eligible_slot(slot) {
                continue;
            }
            let seq = self.entry_seq[slot];
            let present = match &self.extract {
                ExtractState::Banked { sets, .. } => sets[slot % self.banks]
                    .iter()
                    .any(|&Reverse(e)| e == (seq, slot)),
                ExtractState::Global { eligible } => {
                    eligible.iter().any(|&Reverse(e)| e == (seq, slot))
                }
                ExtractState::ByColumn { .. } => self.columns[self.entry_col[slot] as usize]
                    .eligible
                    .contains(&(seq, slot)),
            };
            if !present {
                return fail(format!(
                    "eligible seq {seq} slot {slot} missing from its extraction queue"
                ));
            }
        }
        match &self.extract {
            // Priority liveness: each parity's order is a permutation of
            // that parity's banks — a dropped bank would starve forever.
            ExtractState::Banked { priority, .. } => {
                for (parity, order) in priority.iter().enumerate() {
                    let mut expect: Vec<usize> =
                        (0..self.banks).filter(|b| b % 2 == parity).collect();
                    let mut got = order.clone();
                    got.sort_unstable();
                    expect.sort_unstable();
                    if got != expect {
                        return fail(format!(
                            "parity-{parity} priority {order:?} is not a permutation of its banks"
                        ));
                    }
                }
            }
            ExtractState::Global { .. } => {}
            // ByColumn's completed set must list exactly the live
            // completed columns under their current owner seq.
            ExtractState::ByColumn { completed, .. } => {
                for &(load_seq, c) in completed {
                    let col = &self.columns[c as usize];
                    if !col.in_use || !col.completed || col.load_seq != load_seq {
                        return fail(format!(
                            "completed set lists ({load_seq}, {c}) but column state disagrees"
                        ));
                    }
                }
                if completed.len() != self.completed_cols {
                    return fail(format!(
                        "completed set len {} != completed_cols {}",
                        completed.len(),
                        self.completed_cols
                    ));
                }
            }
        }
        Ok(())
    }

    fn extract_banked<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        now: u64,
        budget: usize,
        accept: &mut F,
    ) -> usize {
        let parity = (now % 2) as usize;
        // Work on the priority order in place: take the vector out (its
        // slot in `extract` stays allocated-but-empty for the duration)
        // and rebuild it from the reusable kept/demoted scratch buffers.
        let mut order = match &mut self.extract {
            ExtractState::Banked { priority, .. } => std::mem::take(&mut priority[parity]),
            _ => unreachable!(),
        };
        let mut demoted = std::mem::take(&mut self.scratch_demoted); // inserted or empty
        let mut kept = std::mem::take(&mut self.scratch_kept); // stalled or not tried
        demoted.clear();
        kept.clear();
        let mut taken = 0;
        for (i, bank) in order.iter().copied().enumerate() {
            if taken >= budget {
                kept.extend_from_slice(&order[i..]);
                break;
            }
            let candidate = match &mut self.extract {
                ExtractState::Banked { sets, .. } => peek_eligible(
                    &mut sets[bank],
                    &self.entry_valid,
                    &self.entry_seq,
                    &self.entry_col,
                    &self.columns,
                ),
                _ => unreachable!(),
            };
            match candidate {
                None => demoted.push(bank),
                Some((seq, slot)) => {
                    if accept(seq, slot) {
                        self.detach(slot);
                        taken += 1;
                        demoted.push(bank);
                    } else {
                        // This bank's issue queue is full: the bank stalls
                        // and keeps its priority; other banks may still
                        // reinsert (e.g. into the other issue queue).
                        kept.push(bank);
                    }
                }
            }
        }
        order.clear();
        order.extend_from_slice(&kept);
        order.extend_from_slice(&demoted);
        if let ExtractState::Banked { priority, .. } = &mut self.extract {
            priority[parity] = order;
        }
        self.scratch_kept = kept;
        self.scratch_demoted = demoted;
        taken
    }

    fn extract_global<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        budget: usize,
        accept: &mut F,
    ) -> usize {
        let mut taken = 0;
        while taken < budget {
            let Some((seq, slot)) = (match &mut self.extract {
                ExtractState::Global { eligible } => peek_eligible(
                    eligible,
                    &self.entry_valid,
                    &self.entry_seq,
                    &self.entry_col,
                    &self.columns,
                ),
                _ => unreachable!(),
            }) else {
                break;
            };
            if !accept(seq, slot) {
                break;
            }
            self.detach(slot);
            taken += 1;
        }
        taken
    }

    fn extract_by_column<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        budget: usize,
        accept: &mut F,
    ) -> usize {
        let mut taken = 0;
        while taken < budget {
            // Pick straight out of the ordered `completed` set — no
            // materialized column list. Columns whose entries all drained
            // free themselves, so any listed column has at least one
            // eligible entry. The set can shrink between iterations
            // (extraction may drain a column), hence the re-read.
            let column = match self.policy {
                SelectionPolicy::OldestLoadFirst | SelectionPolicy::ProgramOrder => {
                    match &self.extract {
                        ExtractState::ByColumn { completed, .. } => match completed.iter().next() {
                            Some(&(_, c)) => c,
                            None => break,
                        },
                        _ => unreachable!(),
                    }
                }
                SelectionPolicy::RoundRobinLoads => match &mut self.extract {
                    ExtractState::ByColumn {
                        completed,
                        rr_cursor,
                    } => {
                        if completed.is_empty() {
                            break;
                        }
                        let cursor = *rr_cursor % completed.len();
                        *rr_cursor = (*rr_cursor + 1) % completed.len().max(1);
                        match completed.iter().nth(cursor) {
                            Some(&(_, c)) => c,
                            None => unreachable!("cursor bounded by len"),
                        }
                    }
                    _ => unreachable!(),
                },
            };
            let Some(&(seq, slot)) = self.columns[column as usize].eligible.iter().next() else {
                break;
            };
            if !accept(seq, slot) {
                break;
            }
            self.detach(slot);
            taken += 1;
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banked(size: usize) -> Wib {
        Wib::new(
            size,
            WibOrganization::Banked { banks: 16 },
            SelectionPolicy::ProgramOrder,
            64,
        )
    }

    fn drain(w: &mut Wib, now: u64, budget: usize) -> Vec<(Seq, usize)> {
        let mut got = Vec::new();
        w.extract(now, budget, |seq, slot| {
            got.push((seq, slot));
            true
        });
        got
    }

    #[test]
    fn insert_complete_extract_round_trip() {
        let mut w = banked(128);
        let col = w.allocate_column(10).unwrap();
        w.insert(11 % 128, 11, col);
        w.insert(12 % 128, 12, col);
        assert_eq!(w.resident(), 2);
        // Nothing eligible before completion.
        assert!(drain(&mut w, 0, 8).is_empty());
        w.column_completed(col);
        let mut got = Vec::new();
        for cycle in 0..4 {
            got.extend(drain(&mut w, cycle, 8));
        }
        got.sort();
        assert_eq!(got, vec![(11, 11), (12, 12)]);
        assert_eq!(w.resident(), 0);
        // Column was freed for reuse.
        assert!(w.allocate_column(20).is_some());
    }

    #[test]
    fn banked_extracts_one_per_bank_per_access() {
        let mut w = banked(128);
        let col = w.allocate_column(0).unwrap();
        // Two instructions in the same (even) bank 0: slots 0 and 16.
        w.insert(0, 100, col);
        w.insert(16, 116, col);
        w.column_completed(col);
        // One even-cycle access extracts only the older one from bank 0.
        let got = drain(&mut w, 0, 8);
        assert_eq!(got, vec![(100, 0)]);
        // Odd cycle: odd banks only — bank 0 is not active.
        assert!(drain(&mut w, 1, 8).is_empty());
        // Next even cycle gets the second.
        assert_eq!(drain(&mut w, 2, 8), vec![(116, 16)]);
    }

    #[test]
    fn banked_parity_separates_banks() {
        let mut w = banked(128);
        let col = w.allocate_column(0).unwrap();
        w.insert(1, 1, col); // bank 1 (odd)
        w.insert(2, 2, col); // bank 2 (even)
        w.column_completed(col);
        assert_eq!(drain(&mut w, 0, 8), vec![(2, 2)]);
        assert_eq!(drain(&mut w, 1, 8), vec![(1, 1)]);
    }

    #[test]
    fn refused_bank_keeps_priority() {
        let mut w = banked(128);
        let col = w.allocate_column(0).unwrap();
        w.insert(0, 100, col); // bank 0
        w.insert(2, 102, col); // bank 2
        w.column_completed(col);
        // Refuse everything: nothing extracted, banks unchanged.
        let n = w.extract(0, 8, |_, _| false);
        assert_eq!(n, 0);
        assert_eq!(w.resident(), 2);
        // Accept now: bank 0 (refused, highest priority) goes first.
        let got = drain(&mut w, 2, 1);
        assert_eq!(got, vec![(100, 0)]);
    }

    #[test]
    fn column_budget_enforced() {
        let mut w = Wib::new(64, WibOrganization::Ideal, SelectionPolicy::ProgramOrder, 2);
        assert!(w.allocate_column(1).is_some());
        assert!(w.allocate_column(2).is_some());
        assert!(w.allocate_column(3).is_none());
        assert_eq!(w.stats().column_exhausted, 1);
    }

    #[test]
    fn squash_clears_bits_and_frees_column() {
        let mut w = banked(128);
        let col = w.allocate_column(5).unwrap();
        w.insert(6, 6, col);
        w.insert(7, 7, col);
        w.squash_slot(6);
        w.squash_slot(7);
        w.squash_slot(8); // not resident: no-op
        assert_eq!(w.resident(), 0);
        w.squash_column(col, 5);
        // Column reusable.
        let col2 = w.allocate_column(9).unwrap();
        assert_eq!(col2, col);
    }

    #[test]
    fn squash_of_eligible_entry_removes_from_sets() {
        let mut w = banked(128);
        let col = w.allocate_column(1).unwrap();
        w.insert(3, 3, col);
        w.column_completed(col);
        w.squash_slot(3);
        assert!(drain(&mut w, 1, 8).is_empty());
        assert_eq!(w.resident(), 0);
    }

    #[test]
    fn nonbanked_access_cadence() {
        let mut w = Wib::new(
            64,
            WibOrganization::NonBanked { latency: 4 },
            SelectionPolicy::ProgramOrder,
            8,
        );
        let col = w.allocate_column(0).unwrap();
        for s in 1..=9 {
            w.insert(s as usize, s, col);
        }
        w.column_completed(col);
        // Only cycles divisible by 4 access; program order; 8 per access.
        assert!(drain(&mut w, 1, 8).is_empty());
        let got = drain(&mut w, 4, 8);
        assert_eq!(got.len(), 8);
        assert_eq!(got[0], (1, 1));
        assert_eq!(drain(&mut w, 8, 8), vec![(9, 9)]);
    }

    #[test]
    fn ideal_program_order_is_global_oldest_first() {
        let mut w = Wib::new(64, WibOrganization::Ideal, SelectionPolicy::ProgramOrder, 8);
        let c1 = w.allocate_column(1).unwrap();
        let c2 = w.allocate_column(2).unwrap();
        w.insert(10, 10, c1);
        w.insert(5, 5, c2);
        w.column_completed(c1);
        w.column_completed(c2);
        let got = drain(&mut w, 0, 8);
        assert_eq!(got, vec![(5, 5), (10, 10)]);
    }

    #[test]
    fn oldest_load_first_drains_by_column() {
        let mut w = Wib::new(
            64,
            WibOrganization::Ideal,
            SelectionPolicy::OldestLoadFirst,
            8,
        );
        let c_old = w.allocate_column(1).unwrap();
        let c_new = w.allocate_column(2).unwrap();
        // Older load's dependents are *younger* instructions here.
        w.insert(20, 20, c_old);
        w.insert(21, 21, c_old);
        w.insert(10, 10, c_new);
        w.column_completed(c_new);
        w.column_completed(c_old);
        let got = drain(&mut w, 0, 8);
        // All of the oldest load's instructions first, then the newer's.
        assert_eq!(got, vec![(20, 20), (21, 21), (10, 10)]);
    }

    #[test]
    fn round_robin_alternates_columns() {
        let mut w = Wib::new(
            64,
            WibOrganization::Ideal,
            SelectionPolicy::RoundRobinLoads,
            8,
        );
        let c1 = w.allocate_column(1).unwrap();
        let c2 = w.allocate_column(2).unwrap();
        w.insert(10, 10, c1);
        w.insert(11, 11, c1);
        w.insert(20, 20, c2);
        w.insert(21, 21, c2);
        w.column_completed(c1);
        w.column_completed(c2);
        let got = drain(&mut w, 0, 4);
        // One from each load in turn.
        assert_eq!(got, vec![(10, 10), (20, 20), (11, 11), (21, 21)]);
    }

    #[test]
    fn empty_completed_column_frees_immediately() {
        let mut w = banked(128);
        let col = w.allocate_column(3).unwrap();
        w.column_completed(col);
        let col2 = w.allocate_column(4).unwrap();
        assert_eq!(col, col2);
    }

    #[test]
    fn refused_priority_survives_same_cycle_squash() {
        // The section 3.3.1 livelock rule: a bank that had a candidate but
        // could not reinsert keeps highest priority. A squash of that very
        // candidate (and its column) in the same cycle must not reset the
        // bank's position — the next eligible entry in the bank still goes
        // first.
        let mut w = banked(128);
        let c1 = w.allocate_column(1).unwrap();
        let c2 = w.allocate_column(2).unwrap();
        w.insert(0, 100, c1); // bank 0, dependent of load 1
        w.insert(16, 116, c2); // bank 0, dependent of load 2
        w.insert(2, 102, c2); // bank 2
        w.column_completed(c1);
        // Refuse bank 0's candidate: it keeps priority ahead of bank 2.
        let n = w.extract(0, 8, |_, _| false);
        assert_eq!(n, 0);
        w.check_invariants().unwrap();
        // Same cycle: the refused candidate's path is squashed.
        w.squash_slot(0);
        w.squash_column(c1, 1);
        w.check_invariants().unwrap();
        // Load 2 completes; with budget 1, bank 0 (still highest
        // priority) extracts before bank 2 even though bank 2's entry is
        // older in no sense and bank 0's original candidate is gone.
        w.column_completed(c2);
        let got = drain(&mut w, 2, 1);
        assert_eq!(got, vec![(116, 16)]);
        w.check_invariants().unwrap();
        // Bank 0 extracted, so it rotates behind bank 2 now.
        assert_eq!(drain(&mut w, 4, 1), vec![(102, 2)]);
        w.check_invariants().unwrap();
    }

    #[test]
    fn checker_passes_through_lifecycle() {
        let mut w = banked(128);
        w.check_invariants().unwrap();
        let col = w.allocate_column(10).unwrap();
        w.insert(11, 11, col);
        w.insert(12, 12, col);
        w.check_invariants().unwrap();
        w.column_completed(col);
        w.check_invariants().unwrap();
        for cycle in 0..4 {
            drain(&mut w, cycle, 8);
            w.check_invariants().unwrap();
        }
        assert_eq!(w.resident(), 0);
    }

    #[test]
    fn checker_catches_resident_drift() {
        let mut w = banked(128);
        let col = w.allocate_column(1).unwrap();
        w.insert(2, 2, col);
        w.resident = 0; // simulate a bookkeeping bug
        let err = w.check_invariants().unwrap_err();
        assert!(err.contains("resident"), "{err}");
    }

    #[test]
    fn stats_accumulate() {
        let mut w = banked(128);
        let col = w.allocate_column(0).unwrap();
        w.insert(1, 1, col);
        w.column_completed(col);
        drain(&mut w, 1, 8);
        let s = w.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.extractions, 1);
        assert_eq!(s.columns_allocated, 1);
    }
}
