//! CPI-stack accounting: every simulated cycle is attributed to exactly
//! one mutually exclusive category, so the categories sum to the cycle
//! count and `category / committed` terms stack to the measured CPI.
//!
//! The attribution is commit-slot based, in priority order:
//!
//! 1. **base** — at least one instruction committed this cycle;
//! 2. **branch-recovery** — the active list is empty and we are inside
//!    the refetch shadow of a squash (misprediction or order violation);
//! 3. **front-end** — the active list is empty for any other reason
//!    (I-cache misses, fetch/decode delay);
//! 4. **l2-miss** / **l1d-miss** — the oldest instruction is an
//!    uncompleted load whose data is coming from DRAM (respectively the
//!    L2), the classic memory stall of the paper's motivation;
//! 5. **iq-full** / **active-list-full** / **lsq-full** / **regs-full** —
//!    nothing committed and dispatch was blocked on that resource;
//! 6. **exec** — everything else: dataflow, functional-unit and issue
//!    bandwidth latency.

use crate::json::Json;
use std::fmt;

/// Mutually exclusive cycle categories, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpiCategory {
    /// At least one commit this cycle.
    Base,
    /// Empty window: fetch/decode refill (not squash recovery).
    FrontEnd,
    /// Empty window inside a squash's refetch shadow.
    BranchRecovery,
    /// Head is a load waiting on an L1D miss that hit in the L2.
    L1dMiss,
    /// Head is a load waiting on a miss serviced by DRAM.
    L2Miss,
    /// No commit; dispatch blocked on a full issue queue.
    IqFull,
    /// No commit; dispatch blocked on a full active list.
    ActiveListFull,
    /// No commit; dispatch blocked on a full load/store queue.
    LsqFull,
    /// No commit; dispatch blocked with no free physical register.
    RegsFull,
    /// Everything else (dataflow / FU / issue-bandwidth latency).
    Exec,
}

/// All categories, in display order.
pub const CPI_CATEGORIES: [CpiCategory; 10] = [
    CpiCategory::Base,
    CpiCategory::FrontEnd,
    CpiCategory::BranchRecovery,
    CpiCategory::L1dMiss,
    CpiCategory::L2Miss,
    CpiCategory::IqFull,
    CpiCategory::ActiveListFull,
    CpiCategory::LsqFull,
    CpiCategory::RegsFull,
    CpiCategory::Exec,
];

impl CpiCategory {
    /// Stable machine-readable name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CpiCategory::Base => "base",
            CpiCategory::FrontEnd => "front_end",
            CpiCategory::BranchRecovery => "branch_recovery",
            CpiCategory::L1dMiss => "l1d_miss",
            CpiCategory::L2Miss => "l2_miss",
            CpiCategory::IqFull => "iq_full",
            CpiCategory::ActiveListFull => "active_list_full",
            CpiCategory::LsqFull => "lsq_full",
            CpiCategory::RegsFull => "regs_full",
            CpiCategory::Exec => "exec",
        }
    }
}

/// Per-category cycle counts. [`CpiStack::total`] equals the simulated
/// cycle count by construction (one attribution per cycle).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpiStack {
    counts: [u64; CPI_CATEGORIES.len()],
}

impl CpiStack {
    /// Attribute one cycle.
    pub fn add(&mut self, cat: CpiCategory) {
        self.counts[cat as usize] += 1;
    }

    /// Attribute `n` cycles at once (bulk path for fast-forwarded stall
    /// stretches that all share one category).
    pub fn add_n(&mut self, cat: CpiCategory, n: u64) {
        self.counts[cat as usize] += n;
    }

    /// Cycles attributed to `cat`.
    pub fn get(&self, cat: CpiCategory) -> u64 {
        self.counts[cat as usize]
    }

    /// Total attributed cycles (equals the simulated cycle count).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(category, cycles)` rows in display order.
    pub fn rows(&self) -> impl Iterator<Item = (CpiCategory, u64)> + '_ {
        CPI_CATEGORIES.iter().map(|&c| (c, self.get(c)))
    }

    /// Ordered `{category: cycles}` object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (cat, n) in self.rows() {
            obj.set(cat.name(), n);
        }
        obj
    }
}

impl fmt::Display for CpiStack {
    /// A table of cycles and share per category, plus per-instruction CPI
    /// contributions when `committed` is supplied via
    /// [`CpiStack::display_with`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        for (cat, n) in self.rows() {
            writeln!(
                f,
                "  {:<18} {:>12}  {:>6.2}%",
                cat.name(),
                n,
                100.0 * n as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

impl CpiStack {
    /// Render the stack with per-instruction CPI contributions.
    pub fn display_with(&self, committed: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total().max(1);
        for (cat, n) in self.rows() {
            let cpi = if committed == 0 {
                0.0
            } else {
                n as f64 / committed as f64
            };
            let _ = writeln!(
                out,
                "  {:<18} {:>12}  {:>6.2}%  cpi {:.4}",
                cat.name(),
                n,
                100.0 * n as f64 / total as f64,
                cpi
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_sum() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::Base);
        s.add(CpiCategory::Base);
        s.add(CpiCategory::L2Miss);
        assert_eq!(s.get(CpiCategory::Base), 2);
        assert_eq!(s.get(CpiCategory::L2Miss), 1);
        assert_eq!(s.get(CpiCategory::Exec), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn json_has_every_category_in_order() {
        let s = CpiStack::default();
        let j = s.to_json();
        let names: Vec<&str> = CPI_CATEGORIES.iter().map(|c| c.name()).collect();
        assert_eq!(j.keys(), names);
    }

    #[test]
    fn display_mentions_each_category() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::IqFull);
        let text = s.display_with(10);
        for cat in CPI_CATEGORIES {
            assert!(text.contains(cat.name()), "missing {}", cat.name());
        }
        assert!(s.to_string().contains("iq_full"));
    }
}
