//! Speculative pre-execution state for the runahead backend.
//!
//! When a DRAM-latency load blocks the head of the window, the engine
//! checkpoints the committed architectural state here and keeps executing
//! *runahead*: results are garbage the moment they depend on the missing
//! data, but every independent load still reaches the real memory
//! hierarchy and starts its fill early (Mutlu et al.). Correctness is
//! maintained by never touching architectural state — the poison file
//! marks invalid registers so garbage cannot steer stores or branches
//! silently, and pseudo-retired stores land in a byte-granular store
//! cache overlaying memory instead of memory itself. At the blocking
//! load's arrival cycle the engine throws everything away, restores the
//! checkpoint and replays from the load — now hitting warmed caches.

use crate::types::{PhysReg, Seq};
use std::collections::{HashMap, HashSet};
use wib_bpred::ras::RasCheckpoint;
use wib_isa::mem::{Memory, PagedMemory};
use wib_isa::reg::{RegClass, NUM_ARCH_REGS};

/// Per-physical-register invalid bits, one plane per class. A poisoned
/// register holds a value derived (directly or transitively) from the
/// blocking miss or another unavailable load; consumers propagate the
/// bit instead of trusting the value.
#[derive(Debug, Clone)]
pub struct PoisonFile {
    int: Vec<bool>,
    fp: Vec<bool>,
}

impl PoisonFile {
    /// A clean poison file for `regs` physical registers per class.
    pub fn new(regs: usize) -> PoisonFile {
        PoisonFile {
            int: vec![false; regs],
            fp: vec![false; regs],
        }
    }

    fn plane(&self, class: RegClass) -> &[bool] {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    /// True if `r` currently carries poison.
    pub fn get(&self, class: RegClass, r: PhysReg) -> bool {
        self.plane(class)[r.0 as usize]
    }

    /// Set or clear `r`'s poison bit (cleared on every fresh allocation,
    /// set by invalid loads and poisoned producers).
    pub fn set(&mut self, class: RegClass, r: PhysReg, poisoned: bool) {
        let plane = match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        };
        plane[r.0 as usize] = poisoned;
    }

    /// Poisoned registers (diagnostics).
    pub fn count(&self) -> usize {
        self.int.iter().chain(&self.fp).filter(|p| **p).count()
    }
}

/// Everything a runahead episode needs to vanish without a trace.
#[derive(Debug, Clone)]
pub struct RunaheadState {
    /// PC of the blocking load; fetch restarts here on exit.
    pub resume_pc: u32,
    /// The blocking load's data-arrival cycle: the episode ends here and
    /// the replay's demand access hits the completed fill.
    pub exit_at: u64,
    /// Committed architectural register values, indexed by flat arch
    /// register number.
    pub arch: [u64; NUM_ARCH_REGS],
    /// Branch-predictor global history at the blocking load.
    pub hist: u32,
    /// Return-address stack at the blocking load.
    pub ras: RasCheckpoint,
    /// Invalid bits over the physical registers.
    pub poison: PoisonFile,
    /// Byte-granular overlay of pseudo-retired (non-poisoned) store data;
    /// later runahead loads read through it so dependence chains keep
    /// prefetching accurately.
    pub store_cache: HashMap<u32, u8>,
    /// In-flight stores whose address or data operand was poisoned; they
    /// pseudo-retire without entering the store cache.
    pub poisoned_stores: HashSet<Seq>,
}

impl RunaheadState {
    /// Open an episode: checkpointed state plus clean speculative state.
    pub fn new(
        resume_pc: u32,
        exit_at: u64,
        arch: [u64; NUM_ARCH_REGS],
        hist: u32,
        ras: RasCheckpoint,
        regs_per_class: usize,
    ) -> RunaheadState {
        RunaheadState {
            resume_pc,
            exit_at,
            arch,
            hist,
            ras,
            poison: PoisonFile::new(regs_per_class),
            store_cache: HashMap::new(),
            poisoned_stores: HashSet::new(),
        }
    }

    /// Record a pseudo-retired store's bytes in the overlay.
    pub fn store_bytes(&mut self, addr: u32, width: u32, data: u64) {
        for i in 0..width {
            self.store_cache
                .insert(addr.wrapping_add(i), (data >> (8 * i)) as u8);
        }
    }

    /// Read `width` bytes at `addr`, overlay bytes taking precedence over
    /// real memory. Widths and byte order match [`Memory::read_bits`]
    /// (raw little-endian, zero-extended).
    pub fn overlay_read(&self, mem: &PagedMemory, addr: u32, width: u32) -> u64 {
        let mut value = mem.read_bits(addr, width);
        for i in 0..width {
            if let Some(&b) = self.store_cache.get(&addr.wrapping_add(i)) {
                value &= !(0xffu64 << (8 * i));
                value |= (b as u64) << (8 * i);
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_bpred::ras::Ras;

    fn state() -> RunaheadState {
        RunaheadState::new(
            0x1000,
            500,
            [0; NUM_ARCH_REGS],
            0,
            Ras::new(4).checkpoint(),
            8,
        )
    }

    #[test]
    fn poison_planes_are_independent() {
        let mut p = PoisonFile::new(4);
        p.set(RegClass::Int, PhysReg(2), true);
        assert!(p.get(RegClass::Int, PhysReg(2)));
        assert!(!p.get(RegClass::Fp, PhysReg(2)));
        assert_eq!(p.count(), 1);
        p.set(RegClass::Int, PhysReg(2), false);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn store_cache_overlays_memory_per_byte() {
        let mut mem = PagedMemory::new();
        mem.write_bits(0x100, 8, 0x1122_3344_5566_7788);
        let mut ra = state();
        // A 4-byte store overlays the middle of the word.
        ra.store_bytes(0x102, 4, 0xaabb_ccdd);
        assert_eq!(ra.overlay_read(&mem, 0x100, 8), 0x1122_aabb_ccdd_7788);
        // Bytes outside the overlay come from memory.
        assert_eq!(ra.overlay_read(&mem, 0x100, 1), 0x88);
        assert_eq!(ra.overlay_read(&mem, 0x104, 1), 0xbb);
        // Memory itself is untouched.
        assert_eq!(mem.read_bits(0x100, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn newer_store_bytes_win() {
        let mem = PagedMemory::new();
        let mut ra = state();
        ra.store_bytes(0x200, 4, 0x1111_1111);
        ra.store_bytes(0x201, 1, 0xff);
        assert_eq!(ra.overlay_read(&mem, 0x200, 4), 0x1111_ff11);
    }
}
