//! Small fixed-bucket histograms for occupancy and latency statistics.

use std::fmt;

/// A histogram over `0..=max` with unit-width buckets (values above `max`
/// clamp into the last bucket).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max_seen: u64,
}

impl Histogram {
    /// A histogram with buckets for `0..=max`.
    pub fn new(max: usize) -> Histogram {
        Histogram {
            buckets: vec![0; max + 1],
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
    }

    /// Record `n` identical samples (bulk path for fast-forwarded cycles,
    /// where the sampled value is provably constant).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value * n;
        self.max_seen = self.max_seen.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample observed (unclamped).
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the samples
    /// are `<= v` (clamped values report the last bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (v, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return v as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Summary plus the non-zero buckets as `[value, count]` pairs (the
    /// full bucket array is mostly zeros at these sizes).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let nonzero: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(v, &n)| Json::Arr(vec![Json::U64(v as u64), Json::U64(n)]))
            .collect();
        Json::obj()
            .field("count", self.count)
            .field("mean", self.mean())
            .field("p50", self.quantile(0.5))
            .field("p90", self.quantile(0.9))
            .field("max", self.max())
            .field("buckets", Json::Arr(nonzero))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let mut h = Histogram::new(10);
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 4.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn clamping_preserves_mean_and_max() {
        let mut h = Histogram::new(4);
        h.record(100);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.to_string().contains("n=0"));
    }
}
