//! Small fixed-bucket histograms for occupancy and latency statistics.

use std::fmt;

/// A histogram over `0..=max` with unit-width buckets (values above `max`
/// clamp into the last bucket).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max_seen: u64,
}

impl Histogram {
    /// A histogram with buckets for `0..=max`.
    pub fn new(max: usize) -> Histogram {
        Histogram {
            buckets: vec![0; max + 1],
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
    }

    /// Record `n` identical samples (bulk path for fast-forwarded cycles,
    /// where the sampled value is provably constant).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value * n;
        self.max_seen = self.max_seen.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample observed (unclamped).
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the samples
    /// are `<= v` (clamped values report the last bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold =
            ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (v, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= threshold {
                return v as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Summary plus the non-zero buckets as `[value, count]` pairs (the
    /// full bucket array is mostly zeros at these sizes).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let nonzero: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(v, &n)| Json::Arr(vec![Json::U64(v as u64), Json::U64(n)]))
            .collect();
        Json::obj()
            .field("count", self.count)
            .field("mean", self.mean())
            .field("p50", self.quantile(0.5))
            .field("p90", self.quantile(0.9))
            .field("max", self.max())
            .field("buckets", Json::Arr(nonzero))
    }
}

/// Number of power-of-two buckets in a [`Log2Snapshot`]: bucket `i` holds
/// values `<= 2^i` (bucket 0 covers 0 and 1), and the last bucket is
/// `+Inf`. 40 buckets span a trillion microseconds — plenty for latencies.
pub const LOG2_BUCKETS: usize = 40;

/// The bucket index a value lands in: smallest `i` with `value <= 2^i`,
/// clamped into the final overflow bucket.
pub fn log2_bucket(value: u64) -> usize {
    ((u64::BITS - value.saturating_sub(1).leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket — rendered as `+Inf` in exposition).
pub fn log2_bucket_bound(i: usize) -> u64 {
    if i >= LOG2_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A plain-value snapshot of a log2-bucket histogram: what a
/// [`crate::metrics::HistogramMetric`] looks like once read, and the unit
/// of merging when registries from several daemons are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Snapshot {
    /// Per-bucket sample counts (non-cumulative).
    pub buckets: [u64; LOG2_BUCKETS],
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Default for Log2Snapshot {
    fn default() -> Log2Snapshot {
        Log2Snapshot {
            buckets: [0; LOG2_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl Log2Snapshot {
    /// An empty snapshot.
    pub fn new() -> Log2Snapshot {
        Log2Snapshot::default()
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[log2_bucket(value)] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }

    /// Fold another snapshot into this one (saturating sums, so merging
    /// many long-lived registries cannot wrap).
    pub fn merge(&mut self, other: &Log2Snapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count = self.count.saturating_add(other.count);
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample: the
    /// smallest bucket bound `v` with at least `q` of the samples `<= v`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Clamp the rank into `1..=count`: for huge (saturating-merged)
        // counts the f64 round-trip can overshoot `count`, and an
        // overshot rank would fall off the end of the scan and report
        // the +Inf bucket for a histogram that never touched it.
        let threshold =
            ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut last_nonzero = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                last_nonzero = i;
            }
            seen = seen.saturating_add(n);
            if seen >= threshold {
                return log2_bucket_bound(i);
            }
        }
        // Inconsistent snapshot (bucket sum lags a saturated count):
        // answer from the highest populated bucket rather than +Inf.
        log2_bucket_bound(last_nonzero)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let mut h = Histogram::new(10);
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 4.5).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn clamping_preserves_mean_and_max() {
        let mut h = Histogram::new(4);
        h.record(100);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.to_string().contains("n=0"));
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(5), 3);
        assert_eq!(log2_bucket(8), 3);
        assert_eq!(log2_bucket(9), 4);
        // Every bucket's inclusive bound maps back into that bucket, and
        // bound+1 spills into the next.
        for i in 0..LOG2_BUCKETS - 1 {
            assert_eq!(log2_bucket(log2_bucket_bound(i)), i);
        }
        assert_eq!(log2_bucket(u64::MAX), LOG2_BUCKETS - 1);
    }

    #[test]
    fn log2_snapshot_with_zero_observations() {
        let s = Log2Snapshot::new();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn log2_snapshot_with_a_single_observation() {
        let mut s = Log2Snapshot::new();
        s.observe(100);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 100);
        // 100 lands in the bucket bounded by 128: every quantile reports
        // that bound.
        assert_eq!(s.quantile(0.0), 128);
        assert_eq!(s.quantile(0.5), 128);
        assert_eq!(s.quantile(1.0), 128);
    }

    #[test]
    fn log2_snapshot_clamps_values_above_the_top_bucket() {
        let mut s = Log2Snapshot::new();
        let huge = 1u64 << 63;
        s.observe(huge);
        s.observe(u64::MAX);
        assert_eq!(s.buckets[LOG2_BUCKETS - 1], 2);
        assert_eq!(s.count, 2);
        // The saturating sum cannot wrap.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.quantile(0.5), u64::MAX);
    }

    #[test]
    fn log2_snapshot_q1_reports_the_highest_populated_bucket() {
        let mut s = Log2Snapshot::new();
        for v in [1u64, 3, 1000] {
            s.observe(v);
        }
        // q=1.0 is the highest populated bucket's bound, never +Inf.
        assert_eq!(s.quantile(1.0), 1024);
        // q=0.0 clamps to rank 1: the lowest populated bucket.
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn log2_snapshot_quantile_survives_saturated_merges() {
        // Two snapshots whose counts saturate when merged: the old
        // unsaturated rank scan overflowed (debug) or wrapped past the
        // threshold (release) and reported the +Inf bound as "p99".
        let mut a = Log2Snapshot::new();
        a.buckets[7] = u64::MAX - 3;
        a.count = u64::MAX - 3;
        a.sum = u64::MAX;
        let mut b = Log2Snapshot::new();
        b.buckets[7] = 10;
        b.count = 10;
        b.sum = 100;
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count, u64::MAX);
        assert_eq!(m.quantile(0.99), 128);
        assert_eq!(m.quantile(1.0), 128);
    }

    #[test]
    fn log2_snapshot_quantile_with_inconsistent_saturated_count() {
        // A pathological snapshot whose bucket sum lags its saturated
        // count (possible after many saturating merges): quantiles must
        // still come from a populated bucket, not the +Inf overflow.
        let mut s = Log2Snapshot::new();
        s.buckets[3] = 1000;
        s.count = u64::MAX;
        s.sum = u64::MAX;
        assert_eq!(s.quantile(0.99), 8);
        assert_eq!(s.quantile(1.0), 8);
    }

    #[test]
    fn log2_snapshot_merge_is_commutative() {
        let mut a = Log2Snapshot::new();
        let mut b = Log2Snapshot::new();
        for v in [1u64, 7, 500, 4096] {
            a.observe(v);
        }
        for v in [2u64, 500, 1 << 40] {
            b.observe(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 7);
        assert_eq!(ab.sum, a.sum + b.sum);
    }
}
