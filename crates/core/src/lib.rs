//! The out-of-order core with the ISCA 2002 **Waiting Instruction Buffer**
//! (Lebeck, Koppanalil, Li, Patwardhan, Rotenberg: *A Large, Fast
//! Instruction Window for Tolerating Cache Misses*).
//!
//! The headline idea: keep the cycle-critical issue queue small (32
//! entries) and move every instruction that directly or transitively
//! depends on a load cache miss into a large (2K-entry) WIB, reinserting
//! the chain when the miss completes. Dependents are found by reusing the
//! issue queue's own select logic: a register whose producer chain hangs
//! off a miss carries a *wait bit*, instructions whose remaining operands
//! are ready become **pretend ready**, issue normally, and are diverted
//! into the WIB instead of a functional unit.
//!
//! # Quick start
//!
//! ```
//! use wib_core::{MachineConfig, Processor, RunLimit};
//! use wib_isa::asm::ProgramBuilder;
//! use wib_isa::reg::*;
//!
//! let mut b = ProgramBuilder::new(0x1000);
//! b.li(R1, 1000);
//! b.label("loop");
//! b.addi(R1, R1, -1);
//! b.bne(R1, R0, "loop");
//! b.halt();
//! let prog = b.finish()?;
//!
//! let base = Processor::new(MachineConfig::base_8way());
//! let result = base.run_program(&prog, RunLimit::instructions(10_000));
//! println!("IPC = {:.2}", result.ipc());
//! # Ok::<(), wib_isa::asm::AsmError>(())
//! ```
//!
//! The paper's machines are presets: [`MachineConfig::base_8way`] (Table
//! 1), [`MachineConfig::wib_2k`] (the 2K-entry WIB machine with a
//! two-level register file), [`MachineConfig::conventional`] (the limit
//! study's scaled issue queues), and [`MachineConfig::wib_sized`] (Figure
//! 6 capacities). WIB design parameters — bit-vector budget (Figure 5),
//! banked vs. multicycle non-banked organization (Figure 7), selection
//! policy (section 4.4) — are all configurable through
//! [`config::WibConfig`].

pub mod cancel;
pub mod check;
pub mod config;
pub mod cpi;
pub mod delay;
pub mod digest;
pub mod events;
pub mod fu;
pub mod hist;
pub mod iq;
pub mod json;
pub mod lsq;
pub mod metrics;
pub mod processor;
pub mod profile;
pub mod regfile;
pub mod rename;
pub mod rob;
pub mod runahead;
pub mod stats;
pub mod trace;
pub mod types;
pub mod wib;
pub mod wib_pool;
pub mod window;

pub use cancel::CancelToken;
pub use config::{
    Backend, MachineConfig, RegFileConfig, SelectionPolicy, WibConfig, WibOrganization, WibTrigger,
    BACKEND_VALUES,
};
pub use cpi::{CpiCategory, CpiStack, CPI_CATEGORIES};
pub use digest::{fnv1a64, fnv1a64_hex};
pub use events::{
    format_event, BoundedSink, CountingSink, EventKind, EventSink, PipeEvent, TextSink, EVENT_KINDS,
};
pub use hist::{Log2Snapshot, LOG2_BUCKETS};
pub use json::Json;
pub use metrics::{Counter, Exposition, Gauge, HistogramMetric, Registry};
pub use processor::{Processor, RunLimit, RunResult};
pub use profile::{StageProfile, PROFILE_SAMPLE_PERIOD, STAGE_COUNT, STAGE_NAMES};
pub use rob::MissKind;
pub use stats::{IntervalSample, SimStats};
