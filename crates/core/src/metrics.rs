//! A std-only metrics plane: named counters, gauges, and log2-bucket
//! histograms behind a process-wide [`Registry`], rendered in the
//! Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramMetric`]) are cheap clones
//! of shared atomics: the code that owns a counter updates it lock-free on
//! its hot path, and the registry only takes its lock to register new
//! series or to render. Registering the same name + label set twice
//! returns the *same* underlying cells, so a metric can be read both
//! through a stats snapshot and through exposition without a second code
//! path. [`Registry::merge_from`] folds one registry into another — the
//! primitive the distributed sweep fabric will use to aggregate
//! per-daemon planes — and [`Exposition`] parses the text format back
//! into samples (used by `wib-sim top` and the gate's metrics smoke).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{log2_bucket, log2_bucket_bound, Log2Snapshot, LOG2_BUCKETS};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one and return the new value (for "n-th occurrence"
    /// bookkeeping like restart budgets).
    pub fn inc_and_get(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (queue depth, busy
/// workers). `add`/`sub` must be paired by the caller — RAII guards at the
/// call sites keep that honest.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increase by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n` (callers pair this with a prior `add`).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared cells behind a histogram handle: per-bucket counts plus the
/// running sum and count, all updated lock-free.
struct HistogramCells {
    buckets: [AtomicU64; LOG2_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCells {
    fn new() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A log2-bucket histogram handle.
#[derive(Clone)]
pub struct HistogramMetric(Arc<HistogramCells>);

impl HistogramMetric {
    /// Record one sample.
    pub fn observe(&self, value: u64) {
        self.0.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough plain-value copy (buckets are read
    /// individually; a sample landing mid-read skews a bucket by at most
    /// one, which quantile consumers tolerate).
    pub fn snapshot(&self) -> Log2Snapshot {
        let mut s = Log2Snapshot::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.sum = self.0.sum.load(Ordering::Relaxed);
        s.count = self.0.count.load(Ordering::Relaxed);
        s
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramMetric),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: a help string, a kind, and every label combination
/// registered under the name.
struct Family {
    help: String,
    kind: &'static str,
    /// Keyed by the rendered label block (`{k="v",…}` or empty), which is
    /// deterministic because labels are sorted at registration.
    series: BTreeMap<String, Metric>,
}

/// The registry: a named, labeled set of metric families. Cloning shares
/// the underlying map, so the daemon, its cache, and the engine rollup can
/// all hold the same registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Render a label set as the canonical block: sorted by key, values
/// escaped per the exposition format.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        block: String,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut map = self.inner.lock().unwrap();
        let family = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: "",
            series: BTreeMap::new(),
        });
        let metric = family.series.entry(block).or_insert_with(make).clone();
        if family.kind.is_empty() {
            family.kind = metric.kind();
        } else {
            assert_eq!(
                family.kind,
                metric.kind(),
                "metric {name} registered as both {} and {}",
                family.kind,
                metric.kind()
            );
        }
        if family.help.is_empty() {
            family.help = help.to_string();
        }
        metric
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, label_block(labels), || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, label_block(labels), || {
            Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramMetric {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramMetric {
        match self.register(name, help, label_block(labels), || {
            Metric::Histogram(HistogramMetric(Arc::new(HistogramCells::new())))
        }) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Fold another registry's current values into this one: counters and
    /// gauges add, histograms merge bucket-wise. Families and series
    /// missing here are created. The other registry is snapshotted before
    /// this registry's lock is taken, so two registries can merge each
    /// other concurrently without deadlock.
    pub fn merge_from(&self, other: &Registry) {
        // Snapshot phase: copy names, metadata, and plain values out of
        // `other` while holding only its lock.
        enum Snap {
            Counter(u64),
            Gauge(u64),
            Histogram(Log2Snapshot),
        }
        let mut snaps: Vec<(String, String, String, Snap)> = Vec::new();
        {
            let map = other.inner.lock().unwrap();
            for (name, family) in map.iter() {
                for (block, metric) in family.series.iter() {
                    let snap = match metric {
                        Metric::Counter(c) => Snap::Counter(c.get()),
                        Metric::Gauge(g) => Snap::Gauge(g.get()),
                        Metric::Histogram(h) => Snap::Histogram(h.snapshot()),
                    };
                    snaps.push((name.clone(), family.help.clone(), block.clone(), snap));
                }
            }
        }
        // Apply phase: register-or-fetch each series here and add.
        for (name, help, block, snap) in snaps {
            match snap {
                Snap::Counter(v) => {
                    match self.register(&name, &help, block, || {
                        Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
                    }) {
                        Metric::Counter(c) => c.add(v),
                        m => panic!("metric {name} already registered as a {}", m.kind()),
                    }
                }
                Snap::Gauge(v) => {
                    match self.register(&name, &help, block, || {
                        Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
                    }) {
                        Metric::Gauge(g) => g.add(v),
                        m => panic!("metric {name} already registered as a {}", m.kind()),
                    }
                }
                Snap::Histogram(s) => {
                    match self.register(&name, &help, block, || {
                        Metric::Histogram(HistogramMetric(Arc::new(HistogramCells::new())))
                    }) {
                        Metric::Histogram(h) => {
                            for (i, &n) in s.buckets.iter().enumerate() {
                                if n > 0 {
                                    h.0.buckets[i].fetch_add(n, Ordering::Relaxed);
                                }
                            }
                            h.0.sum.fetch_add(s.sum, Ordering::Relaxed);
                            h.0.count.fetch_add(s.count, Ordering::Relaxed);
                        }
                        m => panic!("metric {name} already registered as a {}", m.kind()),
                    }
                }
            }
        }
    }

    /// Render every family in the Prometheus text exposition format.
    /// Output is deterministic: families sort by name, series by label
    /// block, histogram buckets by bound.
    pub fn render(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, family) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            for (block, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{block} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{block} {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let s = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &n) in s.buckets.iter().enumerate() {
                            cumulative = cumulative.saturating_add(n);
                            // Elide empty interior buckets to keep the
                            // exposition compact; always emit +Inf.
                            if n == 0 && i != LOG2_BUCKETS - 1 {
                                continue;
                            }
                            let le = if i == LOG2_BUCKETS - 1 {
                                "+Inf".to_string()
                            } else {
                                log2_bucket_bound(i).to_string()
                            };
                            let lb = if block.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &block[..block.len() - 1])
                            };
                            let _ = writeln!(out, "{name}_bucket{lb} {cumulative}");
                        }
                        let _ = writeln!(out, "{name}_sum{block} {}", s.sum);
                        let _ = writeln!(out, "{name}_count{block} {}", s.count);
                    }
                }
            }
        }
        out
    }
}

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text exposition — the read side of [`Registry::render`],
/// used by `wib-sim top` and by tests so the format is continuously
/// round-tripped.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    pub samples: Vec<Sample>,
    /// Family kinds from `# TYPE` lines (name → counter/gauge/histogram).
    pub types: BTreeMap<String, String>,
    /// Family help strings from `# HELP` lines.
    pub helps: BTreeMap<String, String>,
}

impl Exposition {
    /// Parse exposition text. Unparseable lines are skipped (a scraper
    /// must tolerate families it does not know); `# TYPE` and `# HELP`
    /// comments are captured so [`Exposition::to_registry`] can rebuild
    /// families with their original kinds.
    pub fn parse(text: &str) -> Exposition {
        let mut exp = Exposition::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.trim().split_once(char::is_whitespace) {
                    exp.types.insert(name.to_string(), kind.trim().to_string());
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                match rest.trim().split_once(char::is_whitespace) {
                    Some((name, help)) => {
                        exp.helps.insert(name.to_string(), help.trim().to_string());
                    }
                    None => {
                        exp.helps.insert(rest.trim().to_string(), String::new());
                    }
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            if let Some(s) = parse_sample(line) {
                exp.samples.push(s);
            }
        }
        exp
    }

    /// All samples for a family name.
    pub fn series<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The value of the first sample with this name (any labels).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.series(name).next().map(|s| s.value)
    }

    /// The value of the sample carrying every given label.
    pub fn value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.series(name)
            .find(|s| labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .map(|s| s.value)
    }

    /// Sum across every series of a family.
    pub fn sum(&self, name: &str) -> f64 {
        self.series(name).map(|s| s.value).sum()
    }

    /// Reconstruct a histogram family (all label sets merged) from its
    /// `_bucket`/`_sum`/`_count` samples. Returns `None` if no `_count`
    /// sample exists.
    pub fn histogram(&self, name: &str) -> Option<Log2Snapshot> {
        let bucket_name = format!("{name}_bucket");
        let mut snap = Log2Snapshot::new();
        let mut found = false;
        // De-cumulate per label group: group buckets by their non-`le`
        // labels, sort each group by bound, and take adjacent differences.
        let mut groups: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
        for s in self.series(&bucket_name) {
            let le = match s.label("le") {
                Some(le) => le,
                None => continue,
            };
            let bound = if le == "+Inf" {
                u64::MAX
            } else {
                le.parse::<u64>().ok()?
            };
            let key: String = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v};"))
                .collect();
            groups.entry(key).or_default().push((bound, s.value as u64));
        }
        for (_, mut buckets) in groups {
            buckets.sort();
            let mut prev = 0u64;
            for (bound, cumulative) in buckets {
                let n = cumulative.saturating_sub(prev);
                prev = cumulative;
                if n > 0 {
                    snap.buckets[log2_bucket(bound.min(u64::MAX - 1))] += n;
                }
            }
        }
        for s in self.series(&format!("{name}_sum")) {
            snap.sum = snap.sum.saturating_add(s.value as u64);
        }
        for s in self.series(&format!("{name}_count")) {
            snap.count = snap.count.saturating_add(s.value as u64);
            found = true;
        }
        if found {
            Some(snap)
        } else {
            None
        }
    }

    /// Reconstruct a [`Registry`] from the parsed samples — the write
    /// side of [`Exposition::parse`]. This is how a scraped remote
    /// exposition becomes mergeable: the coordinator parses each
    /// backend's text, rebuilds it as a registry, and folds it into one
    /// cluster view with [`Registry::merge_from`].
    ///
    /// Family kinds come from the captured `# TYPE` lines; samples with
    /// no type fall back to counter when the name ends in `_total` and
    /// gauge otherwise. Histograms are rebuilt per label set from their
    /// `_bucket`/`_sum`/`_count` components: cumulative buckets are
    /// de-cumulated and bounds snap back onto the log2 bucket grid.
    pub fn to_registry(&self) -> Registry {
        let reg = Registry::new();
        let hist_names: Vec<&str> = self
            .types
            .iter()
            .filter(|(_, k)| k.as_str() == "histogram")
            .map(|(n, _)| n.as_str())
            .collect();
        // Scalar samples owned by a histogram family must not
        // double-register as counters or gauges.
        let is_component = |name: &str| {
            hist_names.iter().any(|h| {
                name.strip_prefix(h)
                    .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count"))
            })
        };
        for s in &self.samples {
            if is_component(&s.name) {
                continue;
            }
            let labels: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let help = self.helps.get(&s.name).map(String::as_str).unwrap_or("");
            let kind = self.types.get(&s.name).map(String::as_str).unwrap_or("");
            let counter = kind == "counter" || (kind.is_empty() && s.name.ends_with("_total"));
            if counter {
                reg.counter_with(&s.name, help, &labels).add(s.value as u64);
            } else {
                reg.gauge_with(&s.name, help, &labels).add(s.value as u64);
            }
        }
        for name in hist_names {
            let help = self.helps.get(name).map(String::as_str).unwrap_or("");
            // Group `_bucket` samples by their non-`le` label set. The
            // remaining labels stay sorted (render sorts them), so the
            // joined key is canonical and matches `_sum`/`_count` label
            // sets exactly.
            type Group = (Vec<(String, String)>, Vec<(u64, u64)>);
            let mut groups: BTreeMap<String, Group> = BTreeMap::new();
            for s in self.series(&format!("{name}_bucket")) {
                let Some(le) = s.label("le") else { continue };
                let bound = if le == "+Inf" {
                    u64::MAX
                } else {
                    match le.parse::<u64>() {
                        Ok(b) => b,
                        Err(_) => continue,
                    }
                };
                let rest: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                let key: String = rest.iter().map(|(k, v)| format!("{k}={v};")).collect();
                groups
                    .entry(key)
                    .or_insert_with(|| (rest, Vec::new()))
                    .1
                    .push((bound, s.value as u64));
            }
            for (_, (owned, mut buckets)) in groups {
                buckets.sort_unstable();
                let labels: Vec<(&str, &str)> = owned
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let h = reg.histogram_with(name, help, &labels);
                let mut prev = 0u64;
                for (bound, cumulative) in buckets {
                    let n = cumulative.saturating_sub(prev);
                    prev = cumulative;
                    if n > 0 {
                        let idx = if bound == u64::MAX {
                            LOG2_BUCKETS - 1
                        } else {
                            log2_bucket(bound)
                        };
                        h.0.buckets[idx].fetch_add(n, Ordering::Relaxed);
                    }
                }
                let scalar = |suffix: &str| {
                    self.series(&format!("{name}{suffix}"))
                        .find(|s| s.labels == owned)
                        .map_or(0, |s| s.value as u64)
                };
                h.0.sum.fetch_add(scalar("_sum"), Ordering::Relaxed);
                h.0.count.fetch_add(scalar("_count"), Ordering::Relaxed);
            }
        }
        reg
    }
}

fn parse_sample(line: &str) -> Option<Sample> {
    // `name{k="v",…} value` or `name value`.
    let (head, value) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}')?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(char::is_whitespace)?;
            (&line[..sp], line[sp..].trim())
        }
    };
    let value: f64 = value.split_whitespace().next()?.parse().ok()?;
    let (name, labels) = match head.find('{') {
        Some(open) => {
            let name = &head[..open];
            let body = &head[open + 1..head.len() - 1];
            (name, parse_labels(body)?)
        }
        None => (head, Vec::new()),
    };
    if name.is_empty() {
        return None;
    }
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return None;
        }
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        labels.push((key, value));
        rest = rest[1 + end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_deterministically() {
        let r = Registry::new();
        let c = r.counter("wib_jobs_total", "Jobs accepted.");
        c.add(3);
        let g = r.gauge("wib_queue_depth", "Jobs waiting.");
        g.set(2);
        g.sub(1);
        let text = r.render();
        assert!(text.contains("# HELP wib_jobs_total Jobs accepted.\n"));
        assert!(text.contains("# TYPE wib_jobs_total counter\n"));
        assert!(text.contains("\nwib_jobs_total 3\n"));
        assert!(text.contains("wib_queue_depth 1\n"));
        // Re-registering returns the same cells, not a fresh series.
        let c2 = r.counter("wib_jobs_total", "Jobs accepted.");
        c2.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(r.render(), r.render());
    }

    #[test]
    fn labeled_series_sort_and_escape() {
        let r = Registry::new();
        r.counter_with(
            "jobs",
            "By workload.",
            &[("workload", "mst"), ("outcome", "done")],
        )
        .inc();
        r.counter_with(
            "jobs",
            "By workload.",
            &[("outcome", "done"), ("workload", "em3d")],
        )
        .add(2);
        r.counter_with("jobs", "By workload.", &[("workload", "we\"ird\\x")])
            .inc();
        let text = r.render();
        // Labels are sorted by key regardless of registration order.
        assert!(text.contains("jobs{outcome=\"done\",workload=\"em3d\"} 2\n"));
        assert!(text.contains("jobs{outcome=\"done\",workload=\"mst\"} 1\n"));
        assert!(text.contains("jobs{workload=\"we\\\"ird\\\\x\"} 1\n"));
        // And the parser round-trips the escapes.
        let exp = Exposition::parse(&text);
        assert_eq!(
            exp.value_labeled("jobs", &[("workload", "we\"ird\\x")]),
            Some(1.0)
        );
        assert_eq!(exp.sum("jobs"), 4.0);
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_round_trips() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Job latency.");
        for v in [1u64, 3, 3, 100, 5000] {
            h.observe(v);
        }
        let text = r.render();
        // Bucket lines are cumulative and end with +Inf == count.
        assert!(text.contains("latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("latency_us_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("latency_us_bucket{le=\"128\"} 4\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("latency_us_sum 5107\n"));
        assert!(text.contains("latency_us_count 5\n"));
        let parsed = Exposition::parse(&text).histogram("latency_us").unwrap();
        assert_eq!(parsed, h.snapshot());
        assert_eq!(parsed.quantile(0.5), 4);
    }

    #[test]
    fn merge_of_two_registries_is_deterministic() {
        let build_a = |r: &Registry| {
            r.counter("jobs_total", "Jobs.").add(5);
            r.gauge("depth", "Depth.").set(2);
            let h = r.histogram("lat", "Latency.");
            h.observe(10);
            h.observe(999);
        };
        let build_b = |r: &Registry| {
            r.counter("jobs_total", "Jobs.").add(7);
            r.counter("panics_total", "Panics.").inc();
            let h = r.histogram("lat", "Latency.");
            h.observe(10);
        };
        let a1 = Registry::new();
        build_a(&a1);
        let b1 = Registry::new();
        build_b(&b1);
        let merged_ab = Registry::new();
        merged_ab.merge_from(&a1);
        merged_ab.merge_from(&b1);
        let merged_ba = Registry::new();
        merged_ba.merge_from(&b1);
        merged_ba.merge_from(&a1);
        // Merge order must not matter: same families, same values, same text.
        assert_eq!(merged_ab.render(), merged_ba.render());
        let exp = Exposition::parse(&merged_ab.render());
        assert_eq!(exp.value("jobs_total"), Some(12.0));
        assert_eq!(exp.value("panics_total"), Some(1.0));
        assert_eq!(exp.value("depth"), Some(2.0));
        assert_eq!(exp.histogram("lat").unwrap().count, 3);
        // Sources are untouched by the merge.
        assert_eq!(
            Exposition::parse(&a1.render()).value("jobs_total"),
            Some(5.0)
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("thing", "A thing.");
        r.gauge("thing", "A thing.");
    }

    #[test]
    fn exposition_round_trips_to_an_identical_registry() {
        let r = Registry::new();
        r.counter("wib_jobs_total", "Jobs accepted.").add(42);
        r.gauge("wib_queue_depth", "Jobs waiting.").set(3);
        r.counter_with("jobs", "By workload.", &[("workload", "mst")])
            .add(2);
        r.counter_with("jobs", "By workload.", &[("workload", "em3d")])
            .inc();
        let h = r.histogram("latency_us", "Job latency.");
        for v in [1u64, 3, 3, 100, 5000] {
            h.observe(v);
        }
        r.histogram_with("node_us", "Per node.", &[("node", "a")])
            .observe(7);
        let text = r.render();
        let rebuilt = Exposition::parse(&text).to_registry();
        // The reconstruction is exact: same families, kinds, helps,
        // label sets, values, and bucket cells — so re-rendering is
        // byte-identical.
        assert_eq!(rebuilt.render(), text);
        // And the rebuilt registry merges like any other.
        let merged = Registry::new();
        merged.merge_from(&r);
        merged.merge_from(&rebuilt);
        let exp = Exposition::parse(&merged.render());
        assert_eq!(exp.value("wib_jobs_total"), Some(84.0));
        assert_eq!(exp.histogram("latency_us").unwrap().count, 10);
    }

    #[test]
    fn to_registry_falls_back_to_name_heuristics_without_type_lines() {
        let exp = Exposition::parse("foo_total 5\nbar 2\n");
        let text = exp.to_registry().render();
        assert!(text.contains("# TYPE foo_total counter\n"));
        assert!(text.contains("# TYPE bar gauge\n"));
    }

    #[test]
    fn parser_skips_junk_lines() {
        let exp = Exposition::parse("# a comment\n\ngarbage\nok 1.5\nbad{x=1} 2\n");
        assert_eq!(exp.samples.len(), 1);
        assert_eq!(exp.value("ok"), Some(1.5));
    }
}
