//! Load and store queues: speculative load execution, store-to-load
//! forwarding, and load-store order-violation detection.
//!
//! Loads execute as soon as their address is known (gated by the
//! store-wait predictor); a store that later resolves its address and
//! finds a younger, already-executed, overlapping load raises an order
//! violation, squashing from that load (the 21264 replay trap the paper's
//! base machine models).

use crate::types::Seq;
use std::collections::VecDeque;

/// Byte range `[addr, addr + width)` overlap test, wrap-free (kernel data
/// never straddles the top of the address space).
fn overlaps(a: u32, aw: u32, b: u32, bw: u32) -> bool {
    let (a, aw, b, bw) = (a as u64, aw as u64, b as u64, bw as u64);
    a < b + bw && b < a + aw
}

/// True if store `[sa, sa+sw)` fully covers load `[la, la+lw)`.
fn covers(sa: u32, sw: u32, la: u32, lw: u32) -> bool {
    let (sa, sw, la, lw) = (sa as u64, sw as u64, la as u64, lw as u64);
    sa <= la && la + lw <= sa + sw
}

/// A store-queue entry.
///
/// Address generation is decoupled from the data (as on the 21264): the
/// store issues as soon as its base register is ready, resolving the
/// address for dependence checking; the data may arrive much later.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Owning instruction.
    pub seq: Seq,
    /// Effective address, once the store has executed (agen).
    pub addr: Option<u32>,
    /// Access width in bytes.
    pub width: u32,
    /// Store data (valid once `data_ready`).
    pub data: u64,
    /// True once the data operand has been captured.
    pub data_ready: bool,
}

/// A load-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LoadEntry {
    /// Owning instruction.
    pub seq: Seq,
    /// Effective address, once the load has executed.
    pub addr: Option<u32>,
    /// Access width in bytes.
    pub width: u32,
}

/// What the store queue says about a load about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older overlapping store in the queue: read memory.
    FromMemory,
    /// Fully covered by this older store's data: `(store seq, value bits)`
    /// — the value is already shifted/masked for the load.
    Forward(Seq, u64),
    /// An older overlapping store exists but cannot forward (partial
    /// coverage): the load must wait until that store commits.
    BlockedOn(Seq),
}

/// The combined load/store queues.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    loads: VecDeque<LoadEntry>,
    stores: VecDeque<StoreEntry>,
    lq_capacity: usize,
    sq_capacity: usize,
}

impl LoadStoreQueue {
    /// Empty queues with the given capacities.
    pub fn new(lq_capacity: usize, sq_capacity: usize) -> LoadStoreQueue {
        LoadStoreQueue {
            loads: VecDeque::new(),
            stores: VecDeque::new(),
            lq_capacity,
            sq_capacity,
        }
    }

    /// Free load-queue slots.
    pub fn lq_free(&self) -> usize {
        self.lq_capacity - self.loads.len()
    }

    /// Free store-queue slots.
    pub fn sq_free(&self) -> usize {
        self.sq_capacity - self.stores.len()
    }

    /// Allocate a load-queue entry at dispatch (program order).
    ///
    /// # Panics
    /// Panics if the load queue is full or allocation is out of order.
    pub fn push_load(&mut self, seq: Seq, width: u32) {
        assert!(self.loads.len() < self.lq_capacity, "load queue overflow");
        debug_assert!(self.loads.back().is_none_or(|l| l.seq < seq));
        self.loads.push_back(LoadEntry {
            seq,
            addr: None,
            width,
        });
    }

    /// Allocate a store-queue entry at dispatch (program order).
    ///
    /// # Panics
    /// Panics if the store queue is full or allocation is out of order.
    pub fn push_store(&mut self, seq: Seq, width: u32) {
        assert!(self.stores.len() < self.sq_capacity, "store queue overflow");
        debug_assert!(self.stores.back().is_none_or(|s| s.seq < seq));
        self.stores.push_back(StoreEntry {
            seq,
            addr: None,
            width,
            data: 0,
            data_ready: false,
        });
    }

    /// Record a load's effective address (at execute).
    pub fn set_load_addr(&mut self, seq: Seq, addr: u32) {
        let e = self
            .loads
            .iter_mut()
            .find(|l| l.seq == seq)
            .expect("load not in queue");
        e.addr = Some(addr);
    }

    /// Record a store's effective address (at agen). Returns the oldest
    /// *younger* load that already executed and overlaps — an order
    /// violation the core must squash from.
    pub fn set_store_addr(&mut self, seq: Seq, addr: u32) -> Option<Seq> {
        let e = self
            .stores
            .iter_mut()
            .find(|s| s.seq == seq)
            .expect("store not in queue");
        e.addr = Some(addr);
        let width = e.width;
        self.loads
            .iter()
            .filter(|l| l.seq > seq)
            .filter_map(|l| l.addr.map(|la| (l.seq, la, l.width)))
            .find(|&(_, la, lw)| overlaps(addr, width, la, lw))
            .map(|(s, _, _)| s)
    }

    /// Record a store's data once the data operand is produced.
    pub fn set_store_data(&mut self, seq: Seq, data: u64) {
        let e = self
            .stores
            .iter_mut()
            .find(|s| s.seq == seq)
            .expect("store not in queue");
        e.data = data;
        e.data_ready = true;
    }

    /// Ask the store queue how the load `seq` at `addr` should obtain its
    /// value. Scans older stores youngest-first.
    pub fn forward_for_load(&self, seq: Seq, addr: u32, width: u32) -> ForwardResult {
        for s in self.stores.iter().rev().filter(|s| s.seq < seq) {
            let Some(sa) = s.addr else {
                // Unresolved older store: speculate past it (the violation
                // check catches a real conflict later).
                continue;
            };
            if !overlaps(sa, s.width, addr, width) {
                continue;
            }
            if covers(sa, s.width, addr, width) && s.data_ready {
                let shift = (addr - sa) * 8;
                let bits = s.data >> shift;
                let bits = if width >= 8 {
                    bits
                } else {
                    bits & ((1u64 << (width * 8)) - 1)
                };
                return ForwardResult::Forward(s.seq, bits);
            }
            // Partial coverage, or the data has not been produced yet.
            return ForwardResult::BlockedOn(s.seq);
        }
        ForwardResult::FromMemory
    }

    /// True if every store older than `seq` has resolved its address
    /// (store-wait gating for loads the predictor marks).
    pub fn older_stores_resolved(&self, seq: Seq) -> bool {
        self.stores.iter().all(|s| s.seq >= seq || s.addr.is_some())
    }

    /// True if the store `seq` is still in the queue (i.e. not committed).
    pub fn store_in_flight(&self, seq: Seq) -> bool {
        self.stores.iter().any(|s| s.seq == seq)
    }

    /// Release the head load at commit.
    pub fn pop_load(&mut self, seq: Seq) {
        match self.loads.front() {
            Some(l) if l.seq == seq => {
                self.loads.pop_front();
            }
            other => panic!("commit of load {seq} but LQ head is {other:?}"),
        }
    }

    /// Release the head store at commit, returning its address/data for
    /// the architectural write.
    ///
    /// # Panics
    /// Panics if `seq` is not the head store or its data never arrived
    /// (commit requires a completed store).
    pub fn pop_store(&mut self, seq: Seq) -> StoreEntry {
        match self.stores.front() {
            Some(s) if s.seq == seq => {
                assert!(s.data_ready, "committing store {seq} without data");
                self.stores.pop_front().expect("nonempty")
            }
            other => panic!("commit of store {seq} but SQ head is {other:?}"),
        }
    }

    /// Remove all entries with `seq >= from` (squash).
    pub fn squash_from(&mut self, from: Seq) {
        while self.loads.back().is_some_and(|l| l.seq >= from) {
            self.loads.pop_back();
        }
        while self.stores.back().is_some_and(|s| s.seq >= from) {
            self.stores.pop_back();
        }
    }

    /// Loads currently resident (diagnostics).
    pub fn loads(&self) -> impl Iterator<Item = &LoadEntry> {
        self.loads.iter()
    }

    /// Stores currently resident (diagnostics).
    pub fn stores(&self) -> impl Iterator<Item = &StoreEntry> {
        self.stores.iter()
    }

    /// Machine-check: both queues within capacity and in strict program
    /// (age) order — forwarding's youngest-first scan and the commit-head
    /// pops rely on it.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("lsq: {msg}"));
        if self.loads.len() > self.lq_capacity {
            return fail(format!("load queue over capacity: {}", self.loads.len()));
        }
        if self.stores.len() > self.sq_capacity {
            return fail(format!("store queue over capacity: {}", self.stores.len()));
        }
        for w in 0..self.loads.len().saturating_sub(1) {
            if self.loads[w].seq >= self.loads[w + 1].seq {
                return fail(format!(
                    "load queue out of age order at {}",
                    self.loads[w].seq
                ));
            }
        }
        for w in 0..self.stores.len().saturating_sub(1) {
            if self.stores[w].seq >= self.stores[w + 1].seq {
                return fail(format!(
                    "store queue out of age order at {}",
                    self.stores[w].seq
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_math() {
        assert!(overlaps(100, 4, 100, 4));
        assert!(overlaps(100, 4, 103, 1));
        assert!(!overlaps(100, 4, 104, 4));
        assert!(overlaps(100, 8, 104, 4));
        assert!(covers(100, 8, 104, 4));
        assert!(!covers(104, 4, 100, 8));
    }

    #[test]
    fn forwarding_full_coverage() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        assert!(q.set_store_addr(1, 0x100).is_none());
        q.set_store_data(1, 0xdead_beef);
        assert_eq!(
            q.forward_for_load(2, 0x100, 4),
            ForwardResult::Forward(1, 0xdead_beef)
        );
    }

    #[test]
    fn forwarding_subword_extract() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 8);
        q.push_load(2, 1);
        q.set_store_addr(1, 0x100);
        q.set_store_data(1, 0x0807_0605_0403_0201);
        // Byte at offset 3 of the 8-byte store.
        assert_eq!(
            q.forward_for_load(2, 0x103, 1),
            ForwardResult::Forward(1, 0x04)
        );
    }

    #[test]
    fn partial_coverage_blocks() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 1);
        q.push_load(2, 4);
        q.set_store_addr(1, 0x102);
        q.set_store_data(1, 0xff);
        assert_eq!(q.forward_for_load(2, 0x100, 4), ForwardResult::BlockedOn(1));
    }

    #[test]
    fn two_disjoint_partial_stores_block_not_forward() {
        // A wide load covered only by the *union* of two disjoint older
        // stores must not forward from either one alone: the youngest
        // overlapping store partially covers, so the load blocks on it.
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4); // low half
        q.push_store(2, 4); // high half
        q.push_load(3, 8);
        q.set_store_addr(1, 0x100);
        q.set_store_data(1, 0x1111_1111);
        q.set_store_addr(2, 0x104);
        q.set_store_data(2, 0x2222_2222);
        assert_eq!(q.forward_for_load(3, 0x100, 8), ForwardResult::BlockedOn(2));
    }

    #[test]
    fn younger_partial_shadows_older_full_coverage() {
        // An older store fully covers the load, but a younger (still
        // older-than-load) store partially overwrites part of the range:
        // forwarding from the full-coverage store would miss the younger
        // bytes, so the load must block on the partial store.
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 8); // full coverage
        q.push_store(2, 1); // one byte inside the range
        q.push_load(3, 8);
        q.set_store_addr(1, 0x100);
        q.set_store_data(1, 0xffff_ffff_ffff_ffff);
        q.set_store_addr(2, 0x103);
        q.set_store_data(2, 0xab);
        assert_eq!(q.forward_for_load(3, 0x100, 8), ForwardResult::BlockedOn(2));
    }

    #[test]
    fn disjoint_younger_store_does_not_mask_older_coverage() {
        // The youngest overlapping store is the covering one; a younger
        // store to a disjoint address must not interfere.
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_store(2, 4);
        q.push_load(3, 4);
        q.set_store_addr(1, 0x100);
        q.set_store_data(1, 0x5555_5555);
        q.set_store_addr(2, 0x200); // disjoint
        q.set_store_data(2, 0x9999_9999);
        assert_eq!(
            q.forward_for_load(3, 0x100, 4),
            ForwardResult::Forward(1, 0x5555_5555)
        );
    }

    #[test]
    fn partial_store_without_data_still_blocks() {
        // Data readiness must not matter for the block decision: an
        // overlapping partial store with unresolved data blocks too.
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 2);
        q.push_load(2, 8);
        q.set_store_addr(1, 0x104); // partial, data never set
        assert_eq!(q.forward_for_load(2, 0x100, 8), ForwardResult::BlockedOn(1));
    }

    #[test]
    fn checker_validates_age_order() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        q.push_load(4, 4);
        q.check_invariants().unwrap();
        q.loads[0].seq = 9; // simulate an ordering bug
        assert!(q.check_invariants().is_err());
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_store(2, 4);
        q.push_load(3, 4);
        q.set_store_addr(1, 0x100);
        q.set_store_data(1, 0x1111_1111);
        q.set_store_addr(2, 0x100);
        q.set_store_data(2, 0x2222_2222);
        assert_eq!(
            q.forward_for_load(3, 0x100, 4),
            ForwardResult::Forward(2, 0x2222_2222)
        );
    }

    #[test]
    fn younger_stores_ignored() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_load(1, 4);
        q.push_store(2, 4);
        q.set_store_addr(2, 0x100);
        q.set_store_data(2, 0x9999_9999);
        assert_eq!(q.forward_for_load(1, 0x100, 4), ForwardResult::FromMemory);
    }

    #[test]
    fn violation_detection_picks_oldest_younger_load() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        q.push_load(3, 4);
        q.set_load_addr(2, 0x100);
        q.set_load_addr(3, 0x100);
        assert_eq!(q.set_store_addr(1, 0x100), Some(2));
    }

    #[test]
    fn no_violation_when_loads_unexecuted_or_disjoint() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        q.push_load(3, 4);
        q.set_load_addr(3, 0x200); // disjoint
        assert_eq!(q.set_store_addr(1, 0x100), None);
    }

    #[test]
    fn store_wait_gating() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        assert!(!q.older_stores_resolved(2));
        q.set_store_addr(1, 0x500);
        q.set_store_data(1, 1);
        assert!(q.older_stores_resolved(2));
    }

    #[test]
    fn commit_and_squash() {
        let mut q = LoadStoreQueue::new(8, 8);
        q.push_store(1, 4);
        q.push_load(2, 4);
        q.push_store(3, 4);
        q.push_load(4, 4);
        q.squash_from(3);
        assert_eq!(q.lq_free(), 7);
        assert_eq!(q.sq_free(), 7);
        q.set_store_addr(1, 0x10);
        q.set_store_data(1, 7);
        let s = q.pop_store(1);
        assert_eq!((s.addr, s.data), (Some(0x10), 7));
        q.pop_load(2);
        assert_eq!(q.lq_free(), 8);
        assert!(!q.store_in_flight(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn lq_overflow_panics() {
        let mut q = LoadStoreQueue::new(1, 1);
        q.push_load(1, 4);
        q.push_load(2, 4);
    }
}
