//! Machine-check subsystem: per-structure invariant checkers plus the
//! engine's cross-structure ownership census.
//!
//! Every micro-architectural structure exposes a
//! `check_invariants(&self) -> Result<(), String>` method inside its own
//! module (where private fields are reachable and the checker can be
//! unit-tested against hand-built states):
//!
//! - [`crate::iq::IssueQueue`] — slot arena / free list / seq index
//!   agreement, intrusive ready-list integrity, pending-count caches;
//! - [`crate::wib::Wib`] — column bitmap vs. resident count, free-column
//!   partition, eligible-heap coverage, banked priority liveness;
//! - [`crate::wib_pool::PoolWib`] — block-chain linkage, location index
//!   back-pointers, completed-chain drain list, free-block partition;
//! - [`crate::rob::ActiveList`] — seq-ring monotonicity and slot layout;
//! - [`crate::lsq::LoadStoreQueue`] — queue capacity and age ordering;
//! - [`crate::regfile::RegFile`] — free-list conservation, wait-bit
//!   hygiene, two-level L1 LRU intrusive-list integrity.
//!
//! The engine composes them once per simulated cycle — together with an
//! ownership census asserting that every in-flight instruction is in
//! exactly one residence state (issue queue / WIB / functional units) and
//! that physical registers are conserved — when either the `checked`
//! cargo feature is enabled (whole test suite) or
//! `Processor::enable_machine_check` was called (fuzzer, repro replays).
//! Without either, the release cycle loop pays one predictable branch.
//!
//! Checker failures are strings, not panics, so the differential fuzzer
//! can record them, shrink the offending program, and write a minimal
//! reproducer; the engine's per-cycle hook panics with cycle context.

/// Prefix a component's failure with its name, leaving `Ok` untouched.
///
/// ```
/// use wib_core::check::component;
/// assert_eq!(
///     component("iq.int", Err("free list torn".into())),
///     Err("iq.int: free list torn".to_string()),
/// );
/// assert_eq!(component("iq.int", Ok(())), Ok(()));
/// ```
pub fn component(name: &str, r: Result<(), String>) -> Result<(), String> {
    r.map_err(|e| format!("{name}: {e}"))
}

/// Format a machine-check failure with the cycle it was detected on.
pub fn at_cycle(cycle: u64, e: &str) -> String {
    format!("machine check failed at cycle {cycle}: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_prefixes_only_failures() {
        assert_eq!(component("wib", Ok(())), Ok(()));
        assert_eq!(
            component("wib", Err("resident drift".into())),
            Err("wib: resident drift".to_string())
        );
    }

    #[test]
    fn at_cycle_carries_context() {
        let msg = at_cycle(1234, "census: seq 7 in 2 residence states");
        assert!(msg.contains("cycle 1234"));
        assert!(msg.contains("seq 7"));
    }
}
