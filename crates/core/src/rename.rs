//! Register rename map: architectural register -> physical register.
//!
//! Misprediction recovery does not checkpoint the map; the active list is
//! walked youngest-first and each squashed instruction's previous mapping
//! is reinstated (every [`crate::rob::RobEntry`] records it).

use crate::types::PhysReg;
use wib_isa::reg::{ArchReg, NUM_ARCH_REGS};

/// The speculative rename map.
#[derive(Debug, Clone)]
pub struct RenameMap {
    map: [PhysReg; NUM_ARCH_REGS],
}

impl RenameMap {
    /// Identity map: architectural register `i` of each class maps to
    /// physical register `i` of that class's file.
    pub fn new() -> RenameMap {
        let mut map = [PhysReg(0); NUM_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg((i % 32) as u16);
        }
        RenameMap { map }
    }

    /// Current physical register for `r`.
    pub fn lookup(&self, r: ArchReg) -> PhysReg {
        self.map[r.flat() as usize]
    }

    /// Redirect `r` to `p`, returning the previous mapping.
    pub fn rename(&mut self, r: ArchReg, p: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[r.flat() as usize], p)
    }

    /// Undo a rename during squash recovery.
    pub fn restore(&mut self, r: ArchReg, prev: PhysReg) {
        self.map[r.flat() as usize] = prev;
    }
}

impl Default for RenameMap {
    fn default() -> Self {
        RenameMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_isa::reg;

    #[test]
    fn identity_start() {
        let m = RenameMap::new();
        assert_eq!(m.lookup(reg::R5), PhysReg(5));
        assert_eq!(m.lookup(reg::F5), PhysReg(5)); // fp file, same index
        assert_eq!(m.lookup(reg::R31), PhysReg(31));
    }

    #[test]
    fn rename_and_restore() {
        let mut m = RenameMap::new();
        let prev = m.rename(reg::R3, PhysReg(77));
        assert_eq!(prev, PhysReg(3));
        assert_eq!(m.lookup(reg::R3), PhysReg(77));
        m.restore(reg::R3, prev);
        assert_eq!(m.lookup(reg::R3), PhysReg(3));
    }

    #[test]
    fn classes_do_not_alias() {
        let mut m = RenameMap::new();
        m.rename(reg::R4, PhysReg(90));
        assert_eq!(m.lookup(reg::F4), PhysReg(4));
    }
}
