//! The active list (reorder buffer).
//!
//! An ordered queue of in-flight instructions. Sequence numbers are
//! globally unique and never reused (stale completion events detect dead
//! instructions by lookup failure); each entry also carries a **slot**
//! index in `0..size`, allocated circularly in program order — the slot is
//! the instruction's WIB entry, mirroring the paper's rule that WIB
//! entries are allocated in lockstep with active-list entries.

use crate::types::{ColumnId, PhysReg, Seq, SrcRef};
use std::collections::VecDeque;
use wib_bpred::dir::BranchCheckpoint;
use wib_bpred::ras::RasCheckpoint;
use wib_isa::inst::Inst;
use wib_isa::reg::ArchReg;

/// Control-flow bookkeeping carried by branch/jump instructions.
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Predicted direction (true for unconditional transfers).
    pub pred_taken: bool,
    /// The PC fetch continued at after this instruction.
    pub pred_next: u32,
    /// Direction-predictor checkpoint (conditional branches only).
    pub dir_ckpt: Option<BranchCheckpoint>,
    /// RAS state *after* this instruction's own push/pop, restored when
    /// this branch itself mispredicts.
    pub ras_after: RasCheckpoint,
}

/// Where a load miss was serviced from (commit-slot CPI attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Missed the L1D, hit in the L2.
    L2Hit,
    /// Missed the L2 (or merged into an outstanding fill): DRAM latency.
    Dram,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global sequence number (unique, monotonic).
    pub seq: Seq,
    /// Active-list slot in `0..size`; also the WIB entry index.
    pub slot: usize,
    /// Fetch PC.
    pub pc: u32,
    /// Decoded instruction.
    pub inst: Inst,
    /// Source operand renames captured at dispatch.
    pub srcs: [Option<SrcRef>; 2],
    /// Destination rename: `(arch, new phys, previous phys)`.
    pub dest: Option<(ArchReg, PhysReg, PhysReg)>,
    /// Ready to commit.
    pub completed: bool,
    /// Has left the issue queue for a functional unit at least once.
    pub issued: bool,
    /// Currently parked in the WIB.
    pub in_wib: bool,
    /// Times this instruction entered the WIB (paper section 4.1 tracks
    /// the average and max of this).
    pub wib_trips: u32,
    /// For loads: the bit-vector column allocated for this load's miss.
    pub miss_column: Option<ColumnId>,
    /// For loads: the deepest hierarchy level this load's data came from
    /// (set when the access outlasted the L1D hit latency; fuels the CPI
    /// stack's memory categories).
    pub miss_kind: Option<MissKind>,
    /// For loads serviced by the memory hierarchy: the absolute cycle the
    /// data arrives (0 until known). Runahead uses the head load's value
    /// to decide whether an episode is worth the pipeline restart.
    pub data_ready_at: u64,
    /// Occupies a load-queue entry.
    pub in_lq: bool,
    /// Occupies a store-queue entry.
    pub in_sq: bool,
    /// True once this conditional branch resolved with the wrong
    /// direction (counted at commit).
    pub dir_wrong: bool,
    /// Control-flow info (control instructions only).
    pub branch: Option<BranchInfo>,
    /// Cycle fetched (pipeline tracing).
    pub cycle_fetch: u64,
    /// Cycle dispatched (pipeline tracing).
    pub cycle_dispatch: u64,
    /// Cycle issued, 0 if front-end completed (pipeline tracing).
    pub cycle_issue: u64,
    /// Cycle completed (pipeline tracing).
    pub cycle_complete: u64,
    /// Global branch history before this instruction was fetched (squash
    /// repair for replays that start at an arbitrary instruction).
    pub hist_before: u32,
    /// RAS state before this instruction was fetched.
    pub ras_before: RasCheckpoint,
}

/// The active list.
#[derive(Debug, Clone)]
pub struct ActiveList {
    entries: VecDeque<RobEntry>,
    /// Parallel ring of the entries' sequence numbers. Lookups binary
    /// search this dense 8-byte-per-entry ring instead of striding over
    /// the (much larger) `RobEntry` structs — the whole ring stays
    /// cache-resident even for a 2048-entry window.
    seqs: VecDeque<Seq>,
    size: usize,
    head_slot: usize,
    next_seq: Seq,
}

impl ActiveList {
    /// An empty active list with `size` slots.
    pub fn new(size: usize) -> ActiveList {
        ActiveList {
            entries: VecDeque::with_capacity(size),
            seqs: VecDeque::with_capacity(size),
            size,
            head_slot: 0,
            next_seq: 0,
        }
    }

    /// An empty active list that continues an interrupted sequence-number
    /// stream (runahead episode exit rebuilds the window this way: seqs
    /// stay globally unique so stale scheduled events keep missing their
    /// lookups, exactly as after a squash).
    pub fn new_resuming(size: usize, next_seq: Seq) -> ActiveList {
        ActiveList {
            next_seq,
            ..ActiveList::new(size)
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.size
    }

    /// In-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free slots.
    pub fn free_slots(&self) -> usize {
        self.size - self.entries.len()
    }

    /// Sequence number the next dispatched instruction will get.
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Slot the next dispatched instruction will occupy (its WIB entry).
    pub fn next_slot(&self) -> usize {
        (self.head_slot + self.entries.len()) % self.size
    }

    /// Append an entry at the tail. The caller must have filled `seq` and
    /// `slot` from [`ActiveList::next_seq`] / [`ActiveList::next_slot`].
    ///
    /// # Panics
    /// Panics if full or if `entry.seq`/`entry.slot` do not match.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(self.free_slots() > 0, "active list overflow");
        assert_eq!(entry.seq, self.next_seq, "out-of-order dispatch");
        assert_eq!(entry.slot, self.next_slot(), "slot mismatch");
        self.seqs.push_back(entry.seq);
        self.entries.push_back(entry);
        self.next_seq += 1;
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        // Sequence numbers are strictly increasing but *not* contiguous:
        // a squash removes a tail range while later dispatches continue
        // with fresh numbers. Gaps only ever push an entry *left* of its
        // no-squash position, so `seq - head_seq` bounds the search from
        // above.
        let &head = self.seqs.front()?;
        if seq < head {
            return None;
        }
        let hi = (((seq - head) as usize) + 1).min(self.seqs.len());
        // Common case: no squash gap in range — the entry sits exactly at
        // its dense offset.
        if self.seqs[hi - 1] == seq {
            return Some(hi - 1);
        }
        let (front, back) = self.seqs.as_slices();
        if hi <= front.len() {
            front[..hi].binary_search(&seq).ok()
        } else {
            match back[..hi - front.len()].binary_search(&seq) {
                Ok(i) => Some(front.len() + i),
                Err(_) => front[..front.len()].binary_search(&seq).ok(),
            }
        }
    }

    /// The oldest in-flight instruction.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Look up a live instruction by sequence number; `None` for
    /// squashed/committed seqs.
    pub fn get(&self, seq: Seq) -> Option<&RobEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup, same semantics as [`ActiveList::get`].
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut RobEntry> {
        self.index_of(seq).map(|i| &mut self.entries[i])
    }

    /// Remove and return the head entry (commit).
    ///
    /// # Panics
    /// Panics if empty.
    pub fn pop_head(&mut self) -> RobEntry {
        let e = self
            .entries
            .pop_front()
            .expect("pop from empty active list");
        self.seqs.pop_front();
        self.head_slot = (self.head_slot + 1) % self.size;
        e
    }

    /// Remove every entry with `seq >= from`, youngest first, yielding
    /// each to `undo` (rename rollback, resource release). Sequence
    /// numbers are *not* reused; slots are.
    pub fn squash_from<F: FnMut(RobEntry)>(&mut self, from: Seq, mut undo: F) {
        while self.entries.back().is_some_and(|e| e.seq >= from) {
            self.seqs.pop_back();
            undo(self.entries.pop_back().expect("nonempty"));
        }
    }

    /// Iterate live entries oldest-first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Machine-check: verify the seq ring mirrors the entries, sequence
    /// numbers are strictly increasing (the binary-search lookup and the
    /// dense-offset fast path both depend on it), and slots advance
    /// circularly from the head.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("active-list: {msg}"));
        if self.seqs.len() != self.entries.len() {
            return fail(format!(
                "seq ring len {} != entries {}",
                self.seqs.len(),
                self.entries.len()
            ));
        }
        if self.entries.len() > self.size {
            return fail(format!(
                "len {} exceeds size {}",
                self.entries.len(),
                self.size
            ));
        }
        let mut prev: Option<Seq> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if self.seqs[i] != e.seq {
                return fail(format!(
                    "seq ring [{i}] = {} != entry {}",
                    self.seqs[i], e.seq
                ));
            }
            if let Some(p) = prev {
                if e.seq <= p {
                    return fail(format!("seqs not strictly increasing at {}", e.seq));
                }
            }
            prev = Some(e.seq);
            let expect = (self.head_slot + i) % self.size;
            if e.slot != expect {
                return fail(format!(
                    "seq {} slot {} != circular position {expect}",
                    e.seq, e.slot
                ));
            }
        }
        if let Some(&back) = self.seqs.back() {
            if self.next_seq <= back {
                return fail(format!("next_seq {} not past tail {back}", self.next_seq));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wib_bpred::ras::Ras;

    fn entry(al: &ActiveList) -> RobEntry {
        RobEntry {
            seq: al.next_seq(),
            slot: al.next_slot(),
            pc: 0x1000 + 4 * al.next_seq() as u32,
            inst: Inst::NOP,
            srcs: [None, None],
            dest: None,
            completed: false,
            issued: false,
            in_wib: false,
            wib_trips: 0,
            miss_column: None,
            miss_kind: None,
            data_ready_at: 0,
            in_lq: false,
            in_sq: false,
            dir_wrong: false,
            branch: None,
            cycle_fetch: 0,
            cycle_dispatch: 0,
            cycle_issue: 0,
            cycle_complete: 0,
            hist_before: 0,
            ras_before: Ras::new(4).checkpoint(),
        }
    }

    #[test]
    fn fifo_commit_order() {
        let mut al = ActiveList::new(4);
        for _ in 0..3 {
            let e = entry(&al);
            al.push(e);
        }
        assert_eq!(al.len(), 3);
        assert_eq!(al.head().unwrap().seq, 0);
        assert_eq!(al.pop_head().seq, 0);
        assert_eq!(al.pop_head().seq, 1);
        assert_eq!(al.len(), 1);
    }

    #[test]
    fn slots_wrap_but_seqs_do_not() {
        let mut al = ActiveList::new(2);
        al.push(entry(&al));
        al.push(entry(&al));
        assert_eq!(al.free_slots(), 0);
        al.pop_head();
        let e = entry(&al);
        assert_eq!(e.seq, 2);
        assert_eq!(e.slot, 0); // reused slot
        al.push(e);
        assert_eq!(al.get(2).unwrap().slot, 0);
    }

    #[test]
    fn seqs_not_reused_after_squash() {
        let mut al = ActiveList::new(8);
        for _ in 0..5 {
            al.push(entry(&al));
        }
        let mut squashed = Vec::new();
        al.squash_from(2, |e| squashed.push(e.seq));
        assert_eq!(squashed, vec![4, 3, 2]);
        assert_eq!(al.next_seq(), 5); // monotonic
        assert_eq!(al.next_slot(), 2); // slots rewound
        let e = entry(&al);
        assert_eq!((e.seq, e.slot), (5, 2));
        al.push(e);
        // Stale lookups for squashed seqs fail even though slot 2 is live.
        assert!(al.get(2).is_none());
        assert!(al.get(5).is_some());
    }

    #[test]
    fn stale_seq_lookup_fails() {
        let mut al = ActiveList::new(4);
        al.push(entry(&al));
        al.pop_head();
        assert!(al.get(0).is_none());
        assert!(al.get(99).is_none());
    }

    #[test]
    fn get_mut_finds_middle_entry() {
        let mut al = ActiveList::new(8);
        for _ in 0..4 {
            al.push(entry(&al));
        }
        al.get_mut(2).unwrap().completed = true;
        assert!(al.get(2).unwrap().completed);
        assert!(!al.get(1).unwrap().completed);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut al = ActiveList::new(1);
        al.push(entry(&al));
        let mut e = entry(&al);
        e.seq = al.next_seq();
        al.push(e);
    }
}
