//! Time-indexed parking structure for the load-delay-tracking backend.
//!
//! Instead of the WIB's wait-bit chasing, the delay-tracking scheduler
//! (after Diavastos & Carlson) exploits that a load miss's service
//! latency is *known* the cycle the hierarchy accepts the access: every
//! dependent of the miss is stamped with the predicted arrival cycle and
//! parked here, freeing its issue-queue slot. A min-heap keyed by wake
//! cycle reinserts each instruction exactly when its operands are
//! predicted ready, sharing dispatch bandwidth like WIB reinsertion does.
//!
//! Entries are addressed by their active-list **slot** (like the WIB), so
//! squash is O(1) per entry via lazy heap deletion: the slot table is
//! authoritative and stale heap nodes are skipped on pop.

use crate::types::Seq;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The delay queue: one slot per active-list entry plus a wake-time heap.
#[derive(Debug, Clone)]
pub struct DelayQueue {
    /// `slots[s]` holds `(seq, wake_cycle)` for the instruction parked at
    /// active-list slot `s`.
    slots: Vec<Option<(Seq, u64)>>,
    /// Min-heap of `(wake_cycle, seq, slot)`. May contain stale entries
    /// for squashed or force-taken slots; `slots` disambiguates.
    heap: BinaryHeap<Reverse<(u64, Seq, usize)>>,
    resident: usize,
    /// Total instructions ever parked.
    pub insertions: u64,
}

impl DelayQueue {
    /// An empty delay queue covering `size` active-list slots.
    pub fn new(size: usize) -> DelayQueue {
        DelayQueue {
            slots: vec![None; size],
            heap: BinaryHeap::with_capacity(size),
            resident: 0,
            insertions: 0,
        }
    }

    /// Park `(slot, seq)` until `wake_at`.
    ///
    /// # Panics
    /// Panics if `slot` is already occupied (the engine parks an
    /// instruction at most once at a time).
    pub fn insert(&mut self, slot: usize, seq: Seq, wake_at: u64) {
        assert!(self.slots[slot].is_none(), "delay slot {slot} occupied");
        self.slots[slot] = Some((seq, wake_at));
        self.heap.push(Reverse((wake_at, seq, slot)));
        self.resident += 1;
        self.insertions += 1;
    }

    /// Squash the instruction at `slot`, if parked. The heap node is
    /// abandoned and skipped lazily.
    pub fn squash_slot(&mut self, slot: usize) {
        if self.slots[slot].take().is_some() {
            self.resident -= 1;
        }
    }

    /// True if `slot` currently holds a parked instruction.
    pub fn contains(&self, slot: usize) -> bool {
        self.slots[slot].is_some()
    }

    /// True if `slot` is parked and its wake cycle has arrived. Used for
    /// the forced head reinsert (a due head may claim the issue queue's
    /// overflow slot so commit can always make progress).
    pub fn due_slot(&self, slot: usize, now: u64) -> bool {
        self.slots[slot].is_some_and(|(_, wake)| wake <= now)
    }

    /// Forcibly extract `slot` (caller checked [`DelayQueue::due_slot`]
    /// and has already reinserted the instruction).
    pub fn take_slot(&mut self, slot: usize) {
        assert!(self.slots[slot].take().is_some(), "take of empty slot");
        self.resident -= 1;
    }

    /// Reinsert up to `budget` due instructions in wake order, oldest
    /// wake first. `accept(seq, slot)` performs the actual issue-queue
    /// insertion and may refuse (queue full); refused instructions retry
    /// next cycle. Returns the number accepted.
    pub fn extract<F: FnMut(Seq, usize) -> bool>(
        &mut self,
        now: u64,
        budget: usize,
        mut accept: F,
    ) -> usize {
        let mut taken = 0;
        let mut retry: Vec<Reverse<(u64, Seq, usize)>> = Vec::new();
        while taken < budget {
            let Some(&Reverse((wake, seq, slot))) = self.heap.peek() else {
                break;
            };
            if wake > now {
                break;
            }
            self.heap.pop();
            if self.slots[slot].map(|(s, _)| s) != Some(seq) {
                continue; // stale node: squashed or force-taken
            }
            if accept(seq, slot) {
                self.slots[slot] = None;
                self.resident -= 1;
                taken += 1;
            } else {
                // Refused (no issue-queue slot): stay parked, retry next
                // cycle. Buffer the node so this loop cannot spin on it.
                self.slots[slot] = Some((seq, now + 1));
                retry.push(Reverse((now + 1, seq, slot)));
            }
        }
        self.heap.extend(retry);
        taken
    }

    /// Parked instructions.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// The earliest wake cycle among parked instructions, purging stale
    /// heap nodes on the way. `None` when empty — the fast-forward path
    /// uses this to cap a skip at the next reinsertion.
    pub fn next_wake(&mut self) -> Option<u64> {
        while let Some(&Reverse((wake, seq, slot))) = self.heap.peek() {
            if self.slots[slot].map(|(s, _)| s) == Some(seq) {
                return Some(wake);
            }
            self.heap.pop();
        }
        None
    }

    /// Machine-check: the slot table and resident count agree, every
    /// parked slot has a live heap node no later than its recorded wake
    /// (else it would never wake), and heap nodes only ever lag behind
    /// the slot table, never lead it.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("delay-queue: {msg}"));
        let live = self.slots.iter().filter(|s| s.is_some()).count();
        if live != self.resident {
            return fail(format!("resident {} != live slots {live}", self.resident));
        }
        // Earliest live heap node per slot; a slot may transiently carry
        // several nodes (the refused-retry path re-pushes).
        for (slot, parked) in self.slots.iter().enumerate() {
            let Some((seq, wake)) = parked else { continue };
            let earliest = self
                .heap
                .iter()
                .filter(|Reverse((_, s, sl))| sl == &slot && s == seq)
                .map(|Reverse((w, _, _))| *w)
                .min();
            match earliest {
                None => return fail(format!("slot {slot} (seq {seq}) has no heap node")),
                Some(w) if w > *wake => {
                    return fail(format!(
                        "slot {slot} (seq {seq}) wakes at {wake} but earliest node is {w}"
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakes_in_time_order() {
        let mut dq = DelayQueue::new(8);
        dq.insert(0, 10, 100);
        dq.insert(1, 11, 50);
        dq.insert(2, 12, 50);
        assert_eq!(dq.resident(), 3);
        let mut got = Vec::new();
        dq.extract(49, 8, |seq, _| {
            got.push(seq);
            true
        });
        assert!(got.is_empty(), "nothing due before its wake cycle");
        dq.extract(50, 8, |seq, _| {
            got.push(seq);
            true
        });
        assert_eq!(got, vec![11, 12], "due entries in (wake, seq) order");
        dq.extract(100, 8, |seq, _| {
            got.push(seq);
            true
        });
        assert_eq!(got, vec![11, 12, 10]);
        assert_eq!(dq.resident(), 0);
        dq.check_invariants().unwrap();
    }

    #[test]
    fn refused_entries_retry_next_cycle() {
        let mut dq = DelayQueue::new(4);
        dq.insert(3, 7, 10);
        let n = dq.extract(10, 8, |_, _| false);
        assert_eq!(n, 0);
        assert_eq!(dq.resident(), 1);
        dq.check_invariants().unwrap();
        // Not retried the same cycle even with budget left, but due again
        // the next cycle.
        assert_eq!(dq.next_wake(), Some(11));
        assert!(!dq.due_slot(3, 10));
        assert!(dq.due_slot(3, 11));
        let n = dq.extract(11, 8, |seq, slot| {
            assert_eq!((seq, slot), (7, 3));
            true
        });
        assert_eq!(n, 1);
        assert_eq!(dq.resident(), 0);
    }

    #[test]
    fn squash_is_lazy_but_invisible() {
        let mut dq = DelayQueue::new(4);
        dq.insert(0, 1, 5);
        dq.insert(1, 2, 6);
        dq.squash_slot(1);
        assert_eq!(dq.resident(), 1);
        assert!(!dq.contains(1));
        assert!(dq.contains(0));
        let mut got = Vec::new();
        dq.extract(100, 8, |seq, _| {
            got.push(seq);
            true
        });
        assert_eq!(got, vec![1], "squashed entry never re-emerges");
        // Slot reuse after squash works (fresh seq, same slot).
        dq.insert(1, 9, 7);
        assert_eq!(dq.next_wake(), Some(7));
        dq.check_invariants().unwrap();
    }

    #[test]
    fn budget_limits_extraction() {
        let mut dq = DelayQueue::new(8);
        for i in 0..5 {
            dq.insert(i, i as Seq, 1);
        }
        let mut got = Vec::new();
        let n = dq.extract(1, 2, |seq, _| {
            got.push(seq);
            true
        });
        assert_eq!((n, got.len()), (2, 2));
        assert_eq!(dq.resident(), 3);
    }

    #[test]
    fn forced_take_of_due_head() {
        let mut dq = DelayQueue::new(4);
        dq.insert(2, 5, 20);
        assert!(!dq.due_slot(2, 19));
        assert!(dq.due_slot(2, 20));
        dq.take_slot(2);
        assert_eq!(dq.resident(), 0);
        // The abandoned heap node is skipped silently.
        let n = dq.extract(30, 8, |_, _| true);
        assert_eq!(n, 0);
        dq.check_invariants().unwrap();
    }

    #[test]
    fn head_due_uses_its_own_wake_not_the_global_minimum() {
        let mut dq = DelayQueue::new(4);
        dq.insert(0, 1, 500); // the head: long miss
        dq.insert(1, 2, 100); // younger dependent of a faster miss
        assert!(dq.due_slot(1, 100));
        assert!(!dq.due_slot(0, 100), "head not due until its own wake");
        assert!(dq.due_slot(0, 500));
    }
}
