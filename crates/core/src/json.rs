//! A tiny, dependency-free JSON document builder and parser.
//!
//! The workspace builds fully offline, so there is no serde; this module
//! provides the small subset the observability and serving layers need: a
//! [`Json`] value type with **insertion-ordered object keys** (so exported
//! documents have a stable, golden-testable schema), correct string
//! escaping, compact or pretty rendering, and a strict recursive-descent
//! parser ([`Json::parse`]) for the NDJSON wire protocol. Non-finite
//! floats render as `null` (JSON has no NaN/inf).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (builder style).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Append `key: value` to an object in place.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Look up a key in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Parse one JSON document from `text` (surrounding whitespace
    /// allowed, trailing garbage rejected). Integers without a fraction
    /// or exponent parse as [`Json::U64`] / [`Json::I64`]; everything
    /// else numeric parses as [`Json::F64`]. Duplicate object keys are
    /// kept in order (lookups see the first), matching the writer.
    ///
    /// # Errors
    /// Returns `json: <what> at byte <offset>` for the first violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Borrow a string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric value widened to `u64` (`None` for non-numbers, negative
    /// numbers, and non-integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) if n >= 0 => Some(n as u64),
            Json::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap for [`Json::parse`]: deep enough for any document
/// this workspace produces, shallow enough that hostile input cannot
/// overflow the stack.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json: {what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a low surrogate must
                                // follow immediately.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')
                                    .map_err(|_| self.err("unpaired high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("unpaired low surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // boundary math is always valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("json: bad number {text:?} at byte {start}"))
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let doc = Json::obj()
            .field("a", 1u64)
            .field("b", true)
            .field("c", Json::Arr(vec![Json::U64(1), Json::Null]))
            .field("d", "x\"y");
        assert_eq!(
            doc.to_string(),
            r#"{"a":1,"b":true,"c":[1,null],"d":"x\"y"}"#
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = Json::obj()
            .field("zulu", 1u64)
            .field("alpha", 2u64)
            .field("mike", 3u64);
        assert_eq!(doc.keys(), vec!["zulu", "alpha", "mike"]);
        assert_eq!(doc.get("alpha"), Some(&Json::U64(2)));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::F64(2.5).to_string(), "2.5");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("a\nb\u{1}".into()).to_string(), r#""a\nb\u0001""#);
    }

    #[test]
    fn string_escaping_covers_the_wire_cases() {
        // Client-supplied job names travel over the NDJSON wire, so the
        // writer must escape everything that could break a one-line
        // protocol frame or a JSON consumer.
        let cases: &[(&str, &str)] = &[
            // Quotes and backslashes.
            (r#"say "hi""#, r#""say \"hi\"""#),
            (r"back\slash", r#""back\\slash""#),
            (r"\\", r#""\\\\""#),
            // Newlines must never produce a literal line break.
            ("a\nb", r#""a\nb""#),
            ("a\rb", r#""a\rb""#),
            ("a\tb", r#""a\tb""#),
            // Other C0 control characters use \uXXXX.
            ("\u{0}", "\"\\u0000\""),
            ("\u{1b}[31m", "\"\\u001b[31m\""),
            ("\u{7}\u{8}\u{c}", "\"\\u0007\\u0008\\u000c\""),
            // Non-ASCII passes through as UTF-8, unescaped.
            ("héllo", "\"héllo\""),
            ("日本語", "\"日本語\""),
            ("emoji \u{1f600}", "\"emoji \u{1f600}\""),
            // DEL (0x7f) is not a C0 control; JSON allows it raw.
            ("\u{7f}", "\"\u{7f}\""),
        ];
        for (input, expected) in cases {
            let rendered = Json::Str((*input).to_string()).to_string();
            assert_eq!(&rendered, expected, "escaping {input:?}");
            assert!(
                !rendered.contains('\n') && !rendered.contains('\r'),
                "rendered frame must stay on one line: {input:?}"
            );
            // And the parser inverts it exactly.
            assert_eq!(
                Json::parse(&rendered).unwrap(),
                Json::Str((*input).to_string()),
                "round trip of {input:?}"
            );
        }
    }

    #[test]
    fn escaping_round_trips_every_boundary_codepoint() {
        // One string holding every C0 control, the quote/backslash pair,
        // the BMP boundary and an astral plane character.
        let mut s = String::new();
        for c in 0u32..0x20 {
            s.push(char::from_u32(c).unwrap());
        }
        s.push_str("\"\\ \u{80} \u{7ff} \u{800} \u{fffd} \u{10348}");
        let doc = Json::obj().field("name", s.as_str());
        let round = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(round.get("name").unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parser_accepts_documents_and_scalars() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(
            Json::parse(r#"{"a":[1,{"b":null}],"c":"d"}"#).unwrap(),
            Json::obj()
                .field("a", vec![Json::U64(1), Json::obj().field("b", Json::Null)])
                .field("c", "d")
        );
        // \u escapes, including a surrogate pair.
        assert_eq!(
            Json::parse(r#""A𝄞""#).unwrap(),
            Json::Str("A\u{1d11e}".into())
        );
        // Keys keep insertion order through a parse.
        let doc = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(doc.keys(), vec!["z", "a"]);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "0x10",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\u{1}\"",         // raw control character
            "\"\\ud800 alone\"", // unpaired surrogate
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Depth bomb: fails cleanly instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let doc = Json::obj()
            .field("u", u64::MAX)
            .field("i", -42i64)
            .field("f", 0.125)
            .field("s", "line\nbreak \"q\" \\ \u{1f680}")
            .field("arr", vec![Json::Bool(false), Json::Null])
            .field("nested", Json::obj().field("k", "v"));
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn accessor_helpers() {
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::U64(3).as_str(), None);
        assert_eq!(Json::U64(3).as_u64(), Some(3));
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::F64(4.0).as_u64(), Some(4));
        assert_eq!(Json::F64(4.5).as_u64(), None);
        assert_eq!(
            Json::Arr(vec![Json::Null]).as_arr().map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn pretty_rendering_nests() {
        let doc = Json::obj()
            .field("xs", Json::Arr(vec![Json::U64(1)]))
            .field("e", Json::obj());
        let p = doc.pretty();
        assert!(p.contains("\"xs\": [\n    1\n  ]"), "{p}");
        assert!(p.contains("\"e\": {}"), "{p}");
        assert!(p.ends_with('\n'));
    }
}
