//! A tiny, dependency-free JSON document builder.
//!
//! The workspace builds fully offline, so there is no serde; this module
//! provides the small subset the observability layer needs: a [`Json`]
//! value type with **insertion-ordered object keys** (so exported
//! documents have a stable, golden-testable schema), correct string
//! escaping, and compact or pretty rendering. Non-finite floats render as
//! `null` (JSON has no NaN/inf).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (builder style).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Append `key: value` to an object in place.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Look up a key in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let doc = Json::obj()
            .field("a", 1u64)
            .field("b", true)
            .field("c", Json::Arr(vec![Json::U64(1), Json::Null]))
            .field("d", "x\"y");
        assert_eq!(
            doc.to_string(),
            r#"{"a":1,"b":true,"c":[1,null],"d":"x\"y"}"#
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = Json::obj()
            .field("zulu", 1u64)
            .field("alpha", 2u64)
            .field("mike", 3u64);
        assert_eq!(doc.keys(), vec!["zulu", "alpha", "mike"]);
        assert_eq!(doc.get("alpha"), Some(&Json::U64(2)));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::F64(2.5).to_string(), "2.5");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("a\nb\u{1}".into()).to_string(), r#""a\nb\u0001""#);
    }

    #[test]
    fn pretty_rendering_nests() {
        let doc = Json::obj()
            .field("xs", Json::Arr(vec![Json::U64(1)]))
            .field("e", Json::obj());
        let p = doc.pretty();
        assert!(p.contains("\"xs\": [\n    1\n  ]"), "{p}");
        assert!(p.contains("\"e\": {}"), "{p}");
        assert!(p.ends_with('\n'));
    }
}
