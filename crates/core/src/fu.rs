//! Functional-unit pool: per-cycle issue slots for pipelined units and
//! busy tracking for the non-pipelined FP divide / square-root units.

use crate::config::FuConfig;
use wib_isa::inst::FuKind;

/// Tracks functional-unit availability cycle by cycle.
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: FuConfig,
    // Per-cycle issue counters (pipelined units accept one op per cycle).
    int_alu_used: u32,
    int_mul_used: u32,
    fp_add_used: u32,
    fp_mul_used: u32,
    mem_used: u32,
    // Non-pipelined units: busy-until cycle per unit instance.
    fp_div_busy: Vec<u64>,
    fp_sqrt_busy: Vec<u64>,
}

impl FuPool {
    /// Build a pool from the configuration.
    pub fn new(cfg: FuConfig) -> FuPool {
        FuPool {
            fp_div_busy: vec![0; cfg.fp_div as usize],
            fp_sqrt_busy: vec![0; cfg.fp_sqrt as usize],
            cfg,
            int_alu_used: 0,
            int_mul_used: 0,
            fp_add_used: 0,
            fp_mul_used: 0,
            mem_used: 0,
        }
    }

    /// Reset the per-cycle issue counters. Call once at the start of each
    /// cycle's select phase.
    pub fn begin_cycle(&mut self) {
        self.int_alu_used = 0;
        self.int_mul_used = 0;
        self.fp_add_used = 0;
        self.fp_mul_used = 0;
        self.mem_used = 0;
    }

    /// Try to claim a unit of `kind` at cycle `now`; returns the execute
    /// latency on success. Memory operations claim a D-cache port and the
    /// returned latency covers address generation only (the cache access
    /// is modeled separately).
    pub fn try_issue(&mut self, kind: FuKind, now: u64) -> Option<u64> {
        match kind {
            FuKind::IntAlu => claim(&mut self.int_alu_used, self.cfg.int_alu).then_some(1),
            FuKind::IntMul => {
                claim(&mut self.int_mul_used, self.cfg.int_mul).then_some(self.cfg.int_mul_latency)
            }
            FuKind::FpAdd => {
                claim(&mut self.fp_add_used, self.cfg.fp_add).then_some(self.cfg.fp_add_latency)
            }
            FuKind::FpMul => {
                claim(&mut self.fp_mul_used, self.cfg.fp_mul).then_some(self.cfg.fp_mul_latency)
            }
            FuKind::FpDiv => {
                claim_nonpipelined(&mut self.fp_div_busy, now, self.cfg.fp_div_latency)
            }
            FuKind::FpSqrt => {
                claim_nonpipelined(&mut self.fp_sqrt_busy, now, self.cfg.fp_sqrt_latency)
            }
            FuKind::Mem => claim(&mut self.mem_used, self.cfg.mem_ports).then_some(1),
        }
    }
}

fn claim(used: &mut u32, limit: u32) -> bool {
    if *used < limit {
        *used += 1;
        true
    } else {
        false
    }
}

fn claim_nonpipelined(busy: &mut [u64], now: u64, latency: u64) -> Option<u64> {
    let unit = busy.iter_mut().find(|b| **b <= now)?;
    *unit = now + latency;
    Some(latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(FuConfig::default())
    }

    #[test]
    fn pipelined_per_cycle_limits() {
        let mut p = pool();
        p.begin_cycle();
        for _ in 0..8 {
            assert_eq!(p.try_issue(FuKind::IntAlu, 0), Some(1));
        }
        assert_eq!(p.try_issue(FuKind::IntAlu, 0), None);
        p.begin_cycle();
        assert_eq!(p.try_issue(FuKind::IntAlu, 1), Some(1));
    }

    #[test]
    fn latencies_match_table1() {
        let mut p = pool();
        p.begin_cycle();
        assert_eq!(p.try_issue(FuKind::IntMul, 0), Some(7));
        assert_eq!(p.try_issue(FuKind::FpAdd, 0), Some(4));
        assert_eq!(p.try_issue(FuKind::FpMul, 0), Some(4));
        assert_eq!(p.try_issue(FuKind::FpDiv, 0), Some(12));
        assert_eq!(p.try_issue(FuKind::FpSqrt, 0), Some(24));
        assert_eq!(p.try_issue(FuKind::Mem, 0), Some(1));
    }

    #[test]
    fn nonpipelined_units_stay_busy() {
        let mut p = pool();
        p.begin_cycle();
        // Two dividers: third divide in the same window must wait.
        assert!(p.try_issue(FuKind::FpDiv, 0).is_some());
        assert!(p.try_issue(FuKind::FpDiv, 0).is_some());
        assert!(p.try_issue(FuKind::FpDiv, 0).is_none());
        p.begin_cycle();
        assert!(p.try_issue(FuKind::FpDiv, 5).is_none()); // still busy
        p.begin_cycle();
        assert!(p.try_issue(FuKind::FpDiv, 12).is_some()); // freed
    }

    #[test]
    fn mem_ports_limit() {
        let mut p = pool();
        p.begin_cycle();
        for _ in 0..4 {
            assert!(p.try_issue(FuKind::Mem, 0).is_some());
        }
        assert!(p.try_issue(FuKind::Mem, 0).is_none());
    }
}
